"""Documentation build check: markdown lint + internal link check.

CI's docs job runs this over the repository's documentation set
(README.md, docs/, benchmarks/README.md and the other top-level
markdown files) so the paper-to-code map and iteration-internals docs
cannot rot silently.  Dependency-free on purpose: the checks are

* **links** — every relative markdown link and image target must exist
  on disk (anchors are stripped; external ``http(s)``/``mailto`` links
  are not fetched);
* **structure** — code fences must be balanced, headings must not skip
  levels from their predecessor (h2 after h1, not h4), and files must
  end with exactly one trailing newline;
* **hygiene** — no trailing whitespace, no tab-indented markdown, no
  lines over 200 characters (tables excepted).

Usage::

    python tools/check_docs.py [paths...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
#: Repo-authored documentation only.  CHANGES.md (a one-line-per-PR
#: log) and PAPER.md/PAPERS.md (retrieved external abstracts, not
#: edited here) are deliberately absent.
DEFAULT_DOCS = (
    "README.md",
    "ROADMAP.md",
    "docs",
    "benchmarks/README.md",
)
MAX_LINE = 200

_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_IMAGE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^(#{1,6})\s")
_EXTERNAL = ("http://", "https://", "mailto:")


def collect(paths: list[str]) -> tuple[list[Path], list[str]]:
    """Resolve tokens to markdown files; unresolved tokens are errors.

    A token that matches nothing must fail the run — otherwise a
    renamed or deleted doc silently shrinks the checked set and the CI
    gate stays green while coverage rots.
    """
    files: list[Path] = []
    errors: list[str] = []
    for token in paths:
        path = ROOT / token
        if path.is_dir():
            found = sorted(path.rglob("*.md"))
            if not found:
                errors.append(f"{token}: directory contains no markdown")
            files.extend(found)
        elif path.exists():
            files.append(path)
        else:
            errors.append(f"{token}: no such file or directory")
    return files, errors


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    rel = path.relative_to(ROOT)
    text = path.read_text(encoding="utf-8")
    lines = text.split("\n")

    if not text.endswith("\n") or text.endswith("\n\n"):
        errors.append(f"{rel}: must end with exactly one newline")

    fence_open = False
    previous_level = 0
    for lineno, line in enumerate(lines, start=1):
        if line.strip().startswith("```"):
            fence_open = not fence_open
            continue
        if fence_open:
            continue
        if line != line.rstrip():
            errors.append(f"{rel}:{lineno}: trailing whitespace")
        if line.startswith("\t"):
            errors.append(f"{rel}:{lineno}: tab indentation")
        if len(line) > MAX_LINE and "|" not in line:
            errors.append(f"{rel}:{lineno}: line exceeds {MAX_LINE} chars")
        match = _HEADING.match(line)
        if match:
            level = len(match.group(1))
            if previous_level and level > previous_level + 1:
                errors.append(
                    f"{rel}:{lineno}: heading skips from h{previous_level} "
                    f"to h{level}"
                )
            previous_level = level
        for pattern in (_LINK, _IMAGE):
            for target in pattern.findall(line):
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                resolved = (path.parent / target.split("#", 1)[0]).resolve()
                if not resolved.is_relative_to(ROOT):
                    # Escapes the checkout: a GitHub-virtual path like
                    # the CI badge's ../../actions/... — not checkable.
                    continue
                if not resolved.exists():
                    errors.append(
                        f"{rel}:{lineno}: broken link -> {target}"
                    )
    if fence_open:
        errors.append(f"{rel}: unbalanced code fence")
    return errors


def main(argv: list[str] | None = None) -> int:
    paths = (argv or sys.argv[1:]) or list(DEFAULT_DOCS)
    files, errors = collect(paths)
    if not files:
        print("check_docs: no markdown files found", file=sys.stderr)
        return 1
    for path in files:
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(
        f"check_docs: {len(files)} files checked, {len(errors)} problem(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
