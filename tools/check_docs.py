"""Documentation build check: lint, links, commands, docstrings, examples.

CI's docs job runs this over the repository's documentation set
(README.md, docs/, benchmarks/README.md and the other top-level
markdown files) so the user guide, API reference and architecture map
cannot rot silently.  Dependency-free on purpose: the checks are

* **links** — every relative markdown link and image target must exist
  on disk (anchors are stripped; external ``http(s)``/``mailto`` links
  are not fetched);
* **structure** — code fences must be balanced, headings must not skip
  levels from their predecessor (h2 after h1, not h4), and files must
  end with exactly one trailing newline;
* **hygiene** — no trailing whitespace, no tab-indented markdown, no
  lines over 200 characters (tables excepted);
* **commands** — every ``python -m repro ...`` invocation inside a
  shell code fence must parse against the real CLI parser
  (:func:`repro.__main__.build_parser`), and every
  ``python <repo-script>.py`` must name a script that exists — this is
  what keeps the user guide copy-pasteable;
* **docstrings** — every public module/class/function in
  ``src/repro/{service,faults,runner,flow,sizing}`` must carry a
  docstring,
  and the committed ``docs/API.md`` must match a fresh
  ``tools/gen_api.py`` render;
* **examples** (``--examples``) — the scripts in
  :data:`EXAMPLE_SMOKE` must run to completion, so the examples the
  guide links can never rot.

Usage::

    python tools/check_docs.py [paths...] [--examples]
"""

from __future__ import annotations

import argparse
import ast
import contextlib
import io
import os
import re
import shlex
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
#: Repo-authored documentation only.  CHANGES.md (a one-line-per-PR
#: log) and PAPER.md/PAPERS.md (retrieved external abstracts, not
#: edited here) are deliberately absent.
DEFAULT_DOCS = (
    "README.md",
    "ROADMAP.md",
    "docs",
    "benchmarks/README.md",
)
#: Example scripts exercised by ``--examples`` (and by
#: ``tests/test_examples.py``); each must finish quickly on tiny
#: circuits.
EXAMPLE_SMOKE = (
    "examples/size_one.py",
    "examples/sweep_campaign.py",
    "examples/query_service.py",
)
MAX_LINE = 200
#: Shell tokens that end the argument list of a command under check.
_SHELL_BREAKS = frozenset(("|", "||", "&&", ";", ">", ">>", "<", "2>", "&"))

_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_IMAGE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^(#{1,6})\s")
_EXTERNAL = ("http://", "https://", "mailto:")
_FENCE = re.compile(r"^\s*```(\w*)")


def collect(paths: list[str]) -> tuple[list[Path], list[str]]:
    """Resolve tokens to markdown files; unresolved tokens are errors.

    A token that matches nothing must fail the run — otherwise a
    renamed or deleted doc silently shrinks the checked set and the CI
    gate stays green while coverage rots.
    """
    files: list[Path] = []
    errors: list[str] = []
    for token in paths:
        path = ROOT / token
        if path.is_dir():
            found = sorted(path.rglob("*.md"))
            if not found:
                errors.append(f"{token}: directory contains no markdown")
            files.extend(found)
        elif path.exists():
            files.append(path)
        else:
            errors.append(f"{token}: no such file or directory")
    return files, errors


# -- shell-command verification ----------------------------------------


def _cli_parser():
    """The real ``python -m repro`` parser (imported once, lazily)."""
    src = str(ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.__main__ import build_parser

    return build_parser()


def _shell_lines(text: str) -> list[tuple[int, str]]:
    """Logical shell lines inside ``bash``/``sh``/``console`` fences.

    Backslash continuations are joined so a wrapped command verifies as
    one invocation; the reported line number is the first physical
    line.
    """
    out: list[tuple[int, str]] = []
    fence_lang: str | None = None
    logical, logical_start = "", 0
    for lineno, line in enumerate(text.split("\n"), start=1):
        fence = _FENCE.match(line)
        if fence:
            fence_lang = None if fence_lang is not None else fence.group(1)
            continue
        if fence_lang not in ("bash", "sh", "shell", "console"):
            continue
        stripped = line.strip()
        if logical:
            logical += " " + stripped.rstrip("\\").strip()
        else:
            if not stripped or stripped.startswith("#"):
                continue
            logical_start = lineno
            logical = stripped.rstrip("\\").strip()
        if stripped.endswith("\\"):
            continue
        out.append((logical_start, logical))
        logical, logical_start = "", 0
    if logical:
        out.append((logical_start, logical))
    return out


def _check_repro_invocation(args: list[str]) -> str | None:
    """Parse CLI arguments against the real parser; error text or None."""
    stderr = io.StringIO()
    try:
        with contextlib.redirect_stderr(stderr):
            _cli_parser().parse_args(args)
    except SystemExit as exc:
        if exc.code not in (0, None):
            reason = stderr.getvalue().strip().splitlines()
            return reason[-1] if reason else f"exit {exc.code}"
    return None


def check_commands(path: Path) -> list[str]:
    """Verify the shell commands documented in one markdown file."""
    errors: list[str] = []
    rel = path.relative_to(ROOT)
    for lineno, line in _shell_lines(path.read_text(encoding="utf-8")):
        try:
            tokens = shlex.split(line)
        except ValueError:
            continue  # heredocs and friends: out of scope
        tokens = [t for t in tokens if "=" not in t or not t.split("=")[0]
                  .replace("_", "").isupper()]  # drop ENV=val prefixes
        for index, token in enumerate(tokens):
            if token not in ("python", "python3"):
                continue
            rest = tokens[index + 1:]
            for stop, item in enumerate(rest):
                if item in _SHELL_BREAKS:
                    rest = rest[:stop]
                    break
            if rest[:2] == ["-m", "repro"]:
                problem = _check_repro_invocation(rest[2:])
                if problem:
                    errors.append(
                        f"{rel}:{lineno}: documented command does not "
                        f"parse ({problem}): {line}"
                    )
            elif rest and rest[0].endswith(".py") and "/" in rest[0]:
                if not (ROOT / rest[0]).exists():
                    errors.append(
                        f"{rel}:{lineno}: documented script missing "
                        f"from the repo: {rest[0]}"
                    )
            break  # one python invocation per logical line is enough
    return errors


# -- docstring gate + generated API reference --------------------------


def _iter_public_defs(tree: ast.Module):
    """Yield ``(lineno, qualified name)`` for every public definition."""
    for node in tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            continue
        if node.name.startswith("_"):
            continue
        yield node, node.name
        if isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and not sub.name.startswith("_"):
                    yield sub, f"{node.name}.{sub.name}"


def check_docstrings() -> list[str]:
    """Fail on public APIs without docstrings in the gated packages."""
    sys.path.insert(0, str(ROOT / "tools"))
    from gen_api import API_PACKAGES, SRC

    errors: list[str] = []
    for package in API_PACKAGES:
        for path in sorted((SRC / "repro" / package).rglob("*.py")):
            rel = path.relative_to(ROOT)
            tree = ast.parse(path.read_text(encoding="utf-8"))
            if ast.get_docstring(tree) is None:
                errors.append(f"{rel}:1: public module lacks a docstring")
            for node, name in _iter_public_defs(tree):
                if ast.get_docstring(node) is None:
                    errors.append(
                        f"{rel}:{node.lineno}: public API '{name}' lacks "
                        f"a docstring"
                    )
    return errors


def check_api_reference() -> list[str]:
    """Fail when ``docs/API.md`` differs from a fresh render."""
    sys.path.insert(0, str(ROOT / "tools"))
    from gen_api import OUT, render_api

    fresh = render_api()
    on_disk = OUT.read_text(encoding="utf-8") if OUT.exists() else ""
    if fresh != on_disk:
        return [
            f"{OUT.relative_to(ROOT)} is stale — regenerate with "
            f"'python tools/gen_api.py'"
        ]
    return []


# -- example smoke -----------------------------------------------------


def check_examples() -> list[str]:
    """Run every :data:`EXAMPLE_SMOKE` script to completion."""
    errors: list[str] = []
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    for script in EXAMPLE_SMOKE:
        path = ROOT / script
        if not path.exists():
            errors.append(f"{script}: example script missing")
            continue
        try:
            proc = subprocess.run(
                [sys.executable, str(path)],
                cwd=ROOT, env=env, capture_output=True, text=True,
                timeout=600,
            )
        except subprocess.TimeoutExpired:
            errors.append(f"{script}: example timed out")
            continue
        if proc.returncode != 0:
            tail = (proc.stderr or proc.stdout).strip().splitlines()[-3:]
            errors.append(
                f"{script}: exited {proc.returncode}: " + " | ".join(tail)
            )
    return errors


# -- markdown lint -----------------------------------------------------


def check_file(path: Path) -> list[str]:
    """Structure, hygiene and link checks for one markdown file."""
    errors: list[str] = []
    rel = path.relative_to(ROOT)
    text = path.read_text(encoding="utf-8")
    lines = text.split("\n")

    if not text.endswith("\n") or text.endswith("\n\n"):
        errors.append(f"{rel}: must end with exactly one newline")

    fence_open = False
    previous_level = 0
    for lineno, line in enumerate(lines, start=1):
        if line.strip().startswith("```"):
            fence_open = not fence_open
            continue
        if fence_open:
            continue
        if line != line.rstrip():
            errors.append(f"{rel}:{lineno}: trailing whitespace")
        if line.startswith("\t"):
            errors.append(f"{rel}:{lineno}: tab indentation")
        if len(line) > MAX_LINE and "|" not in line:
            errors.append(f"{rel}:{lineno}: line exceeds {MAX_LINE} chars")
        match = _HEADING.match(line)
        if match:
            level = len(match.group(1))
            if previous_level and level > previous_level + 1:
                errors.append(
                    f"{rel}:{lineno}: heading skips from h{previous_level} "
                    f"to h{level}"
                )
            previous_level = level
        for pattern in (_LINK, _IMAGE):
            for target in pattern.findall(line):
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                resolved = (path.parent / target.split("#", 1)[0]).resolve()
                if not resolved.is_relative_to(ROOT):
                    # Escapes the checkout: a GitHub-virtual path like
                    # the CI badge's ../../actions/... — not checkable.
                    continue
                if not resolved.exists():
                    errors.append(
                        f"{rel}:{lineno}: broken link -> {target}"
                    )
    if fence_open:
        errors.append(f"{rel}: unbalanced code fence")
    return errors


def main(argv: list[str] | None = None) -> int:
    """Run every documentation check; nonzero on any problem."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*",
                        help="markdown files/directories "
                             "(default: the repo documentation set)")
    parser.add_argument("--examples", action="store_true",
                        help="also run the example smoke scripts")
    args = parser.parse_args(argv)

    paths = args.paths or list(DEFAULT_DOCS)
    files, errors = collect(paths)
    if not files:
        print("check_docs: no markdown files found", file=sys.stderr)
        return 1
    for path in files:
        errors.extend(check_file(path))
        errors.extend(check_commands(path))
    errors.extend(check_docstrings())
    errors.extend(check_api_reference())
    n_examples = 0
    if args.examples:
        n_examples = len(EXAMPLE_SMOKE)
        errors.extend(check_examples())
    for error in errors:
        print(error, file=sys.stderr)
    print(
        f"check_docs: {len(files)} files checked, "
        f"{n_examples} examples run, {len(errors)} problem(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
