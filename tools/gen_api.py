"""Generate ``docs/API.md`` from the library's docstrings.

Walks the public surface of the packages listed in :data:`API_PACKAGES`
with ``ast`` (no imports, so generation cannot execute library code or
depend on optional backends) and renders one markdown reference:

* a ``##`` section per module, opened with the module docstring's first
  paragraph;
* a bullet per public class/function — signature plus the first
  paragraph of its docstring — with public methods nested beneath
  their class.

"Public" means: defined at module top level (or directly on a public
class), name not underscore-prefixed.  The companion gate in
``tools/check_docs.py`` fails CI when any such definition lacks a
docstring and when the committed ``docs/API.md`` differs from a fresh
render — so the reference regenerates or the build goes red.

Usage::

    python tools/gen_api.py            # rewrite docs/API.md
    python tools/gen_api.py --check    # exit 1 if docs/API.md is stale
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
OUT = ROOT / "docs" / "API.md"

#: Packages whose public surface is documented and docstring-gated.
API_PACKAGES = ("service", "faults", "obs", "runner", "flow", "sizing")

HEADER = """\
# API reference

Generated from docstrings by `tools/gen_api.py` — do not edit by hand
(`tools/check_docs.py` fails when this file is stale; regenerate with
`python tools/gen_api.py`).  Covers the public surface of
`repro.service`, `repro.faults`, `repro.obs`, `repro.runner`,
`repro.flow` and `repro.sizing`; see
[`USER_GUIDE.md`](USER_GUIDE.md) for task-oriented walkthroughs and
[`ARCHITECTURE.md`](ARCHITECTURE.md) for the paper-to-code map.
"""


@dataclass
class ApiEntry:
    """One public definition: kind, name, signature, docstring, members."""

    kind: str  # "class" | "function"
    name: str
    signature: str
    lineno: int
    doc: str | None
    members: list["ApiEntry"] = field(default_factory=list)


@dataclass
class ModuleApi:
    """One module's public surface."""

    name: str  # dotted module name, e.g. "repro.runner.cache"
    path: Path
    doc: str | None
    entries: list[ApiEntry]


#: Longest rendered signature before the argument list is elided; keeps
#: every bullet under check_docs' line-length gate no matter how many
#: keyword knobs an entry point grows.
MAX_SIGNATURE = 100


def _signature(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str:
    """Compact ``name(arg, ...)`` signature (annotations dropped)."""
    args = node.args
    parts: list[str] = []
    n_positional = len(args.posonlyargs) + len(args.args)
    defaults_start = n_positional - len(args.defaults)
    for index, arg in enumerate(args.posonlyargs + args.args):
        text = arg.arg
        if index >= defaults_start:
            text += "=…"
        parts.append(text)
    if args.vararg is not None:
        parts.append(f"*{args.vararg.arg}")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        parts.append(f"{arg.arg}=…" if default is not None else arg.arg)
    if args.kwarg is not None:
        parts.append(f"**{args.kwarg.arg}")
    if parts and parts[0] in ("self", "cls"):
        parts = parts[1:]
    text = f"{node.name}({', '.join(parts)})"
    if len(text) <= MAX_SIGNATURE:
        return text
    kept: list[str] = []
    for part in parts:
        candidate = f"{node.name}({', '.join(kept + [part])}, …)"
        if len(candidate) > MAX_SIGNATURE:
            break
        kept.append(part)
    return f"{node.name}({', '.join(kept)}, …)"


def _first_paragraph(doc: str | None) -> str:
    """First docstring paragraph flattened to one line."""
    if not doc:
        return ""
    paragraph = doc.strip().split("\n\n", 1)[0]
    return " ".join(line.strip() for line in paragraph.splitlines())


def _entry(node, in_class: bool = False) -> ApiEntry | None:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
        return None
    if node.name.startswith("_"):
        return None
    if isinstance(node, ast.ClassDef):
        members = []
        if not in_class:  # no nested-class recursion: keep the page flat
            members = [
                entry
                for sub in node.body
                if (entry := _entry(sub, in_class=True)) is not None
            ]
        return ApiEntry(
            kind="class",
            name=node.name,
            signature=node.name,
            lineno=node.lineno,
            doc=ast.get_docstring(node),
            members=members,
        )
    return ApiEntry(
        kind="function",
        name=node.name,
        signature=_signature(node),
        lineno=node.lineno,
        doc=ast.get_docstring(node),
    )


def module_api(path: Path) -> ModuleApi:
    """Parse one source file's public surface."""
    relative = path.relative_to(SRC).with_suffix("")
    dotted = ".".join(relative.parts)
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    tree = ast.parse(path.read_text(encoding="utf-8"))
    entries = [
        entry for node in tree.body if (entry := _entry(node)) is not None
    ]
    return ModuleApi(
        name=dotted, path=path, doc=ast.get_docstring(tree), entries=entries
    )


def iter_api(packages: tuple[str, ...] = API_PACKAGES) -> list[ModuleApi]:
    """The public surface of every module in the given repro packages."""
    modules: list[ModuleApi] = []
    for package in packages:
        for path in sorted((SRC / "repro" / package).rglob("*.py")):
            modules.append(module_api(path))
    return modules


def _render_entry(entry: ApiEntry, lines: list[str], indent: str = "") -> None:
    summary = _first_paragraph(entry.doc)
    label = f"`{entry.signature}`"
    if entry.kind == "class":
        label = f"class `{entry.name}`"
    lines.append(f"{indent}- {label} — {summary}")
    for member in entry.members:
        _render_entry(member, lines, indent + "  ")


def render_api(packages: tuple[str, ...] = API_PACKAGES) -> str:
    """The full markdown text of ``docs/API.md``."""
    lines = [HEADER]
    for module in iter_api(packages):
        if not module.entries and module.path.name == "__init__.py" and (
            not _first_paragraph(module.doc)
        ):
            continue
        relative = module.path.relative_to(ROOT).as_posix()
        lines.append(f"## `{module.name}`")
        lines.append("")
        summary = _first_paragraph(module.doc)
        lines.append(f"[{relative}](../{relative}) — {summary}")
        if module.entries:
            lines.append("")
            for entry in module.entries:
                _render_entry(entry, lines)
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def main(argv: list[str] | None = None) -> int:
    """Write (or with ``--check`` verify) ``docs/API.md``."""
    argv = sys.argv[1:] if argv is None else argv
    text = render_api()
    if "--check" in argv:
        on_disk = OUT.read_text(encoding="utf-8") if OUT.exists() else ""
        if on_disk != text:
            print(
                f"{OUT.relative_to(ROOT)} is stale — regenerate with "
                f"'python tools/gen_api.py'",
                file=sys.stderr,
            )
            return 1
        print(f"{OUT.relative_to(ROOT)} is up to date")
        return 0
    OUT.write_text(text, encoding="utf-8")
    print(f"wrote {OUT.relative_to(ROOT)} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
