#!/usr/bin/env python3
"""Quickstart: size a ripple-carry adder with TILOS and MINFLOTRANSIT.

Builds a 16-bit adder, measures the minimum-sized circuit's delay,
targets half of it, and compares the greedy TILOS baseline against the
min-cost-flow based MINFLOTRANSIT refinement.

Run:  python examples/quickstart.py [width]
"""

import sys

from repro import build_sizing_dag, default_technology, minflotransit, tilos_size
from repro.generators import ripple_carry_adder
from repro.timing import analyze


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    circuit = ripple_carry_adder(width)
    tech = default_technology()
    dag = build_sizing_dag(circuit, tech, mode="gate")
    print(f"circuit: {circuit.name} — {circuit.n_gates} gates, "
          f"{dag.n_edges} wires")

    x_min = dag.min_sizes()
    d_min = analyze(dag, x_min).critical_path_delay
    min_area = dag.area(x_min)
    print(f"minimum-sized delay Dmin = {d_min:.0f} ps, area = {min_area:.0f}")

    target = 0.5 * d_min
    print(f"\ntarget: 0.5 * Dmin = {target:.0f} ps")

    seed = tilos_size(dag, target)
    assert seed.feasible, "TILOS could not reach the target"
    print(f"TILOS:          area {seed.area:9.1f}  "
          f"({seed.area / min_area:.2f}x min)  "
          f"[{seed.iterations} bumps, {seed.runtime_seconds:.2f}s]")

    result = minflotransit(dag, target, x0=seed.x)
    print(f"MINFLOTRANSIT:  area {result.area:9.1f}  "
          f"({result.area / min_area:.2f}x min)  "
          f"[{result.n_iterations} D/W iterations, "
          f"{result.runtime_seconds:.2f}s]")
    print(f"\narea saved over TILOS: "
          f"{100 * (1 - result.area / seed.area):.2f}%")
    print(f"final delay {result.critical_path_delay:.0f} ps "
          f"(target {target:.0f} ps) — "
          f"{'meets timing' if result.meets_target else 'VIOLATES timing'}")


if __name__ == "__main__":
    main()
