#!/usr/bin/env python3
"""Gate sizing vs true transistor sizing on the same circuit.

The paper's framework handles both granularities: gate sizing models
each gate as an equivalent inverter (one variable per gate), while
transistor sizing gives every device its own variable and works on the
per-gate DAG of figure 1.  More freedom buys more area at equal delay —
this example quantifies the gap on a small mapped adder.

Run:  python examples/transistor_vs_gate_sizing.py [width]
"""

import sys

from repro import build_sizing_dag, default_technology, minflotransit
from repro.circuit import map_to_primitives
from repro.generators import ripple_carry_adder
from repro.timing import analyze


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    circuit = map_to_primitives(ripple_carry_adder(width, style="nand"))
    tech = default_technology()
    print(f"{circuit.name}: {circuit.n_gates} gates, "
          f"{circuit.device_count()} transistors\n")

    for mode in ("gate", "transistor"):
        dag = build_sizing_dag(circuit, tech, mode=mode)
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        target = 0.5 * d_min
        result = minflotransit(dag, target)
        norm = result.area / dag.area(dag.min_sizes())
        print(f"{mode:>10s} sizing: {dag.n:4d} variables, "
              f"Dmin {d_min:7.0f} ps, area at 0.5*Dmin = {norm:.3f}x min "
              f"({result.n_iterations} iterations, "
              f"{result.runtime_seconds:.1f}s)")

    print("\nTransistor sizing reaches the same target with less area: "
          "within a gate, only the devices on the critical "
          "(dis)charging path must grow.")


if __name__ == "__main__":
    main()
