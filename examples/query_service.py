#!/usr/bin/env python3
"""Query the sizing service: sync, async, events, listing, cache replay.

Self-contained: starts a :class:`repro.service.SizingService` on a
free port in this process (the same engine ``python -m repro serve``
runs), then walks the whole v1 API through the stdlib client session —
discovery, a synchronous sizing request, a repeated request served
from the content-addressed cache, an async job followed through its
server-sent events stream, the paginated job listing, and an inline
``.bench`` netlist that never touched disk on the client side.

Run:  python examples/query_service.py
      (tiny circuits only — a few seconds end to end)
"""

import tempfile
import threading

from repro.service import ServiceClient, SizingService, make_server

INLINE_BENCH = """\
# a 2-gate netlist posted as text, no file needed
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
n1 = NAND(a, b)
y = NAND(n1, c)
"""


def main() -> None:
    scratch = tempfile.mkdtemp(prefix="repro-service-demo-")
    service = SizingService(jobs=1, cache=f"{scratch}/cache",
                            run_dir=f"{scratch}/run")
    server = make_server(service, quiet=True)  # port=0: pick a free port
    host, port = server.server_address[:2]
    threading.Thread(target=server.serve_forever, daemon=True).start()

    with ServiceClient(f"http://{host}:{port}", client_id="demo") as client:
        print(f"service up at http://{host}:{port}")
        print(f"health: {client.healthz()['status']} "
              f"(mode {client.healthz()['mode']})")
        suite = client.circuits()["circuits"]
        backends = [b["name"] for b in client.backends()["backends"]]
        print(f"discovery: {len(suite)} suite circuits, backends {backends}")

        reply = client.size(circuit="c17", delay_spec=0.6)
        result = reply["payload"]["result"]
        print(f"sync: {reply['status']} area {result['area']:.2f} "
              f"in {reply['wall_seconds']:.2f}s (cached: {reply['cached']})")

        again = client.size(circuit="c17", delay_spec=0.6)
        assert again["cached"] and again["payload"] == reply["payload"]
        print(f"repeat: cache hit, byte-identical payload "
              f"(key {reply['key'][:12]}…)")

        ticket = client.submit(circuit="c17", delay_spec=0.8)
        seen = [event["status"] for event in client.events(ticket["id"])]
        done = client.job(ticket["id"])
        print(f"async: job {ticket['id']} events {seen} -> {done['status']} "
              f"area {done['summary']['area']:.2f}")

        inline = client.size(bench=INLINE_BENCH, delay_spec=0.7)
        print(f"inline bench: {inline['status']} "
              f"area {inline['summary']['area']:.2f}")

        page = client.jobs(status="ok", limit=2)
        listed = [job["id"] for job in page["jobs"]]
        print(f"listing: first ok page {listed}, "
              f"cursor {page['next_after']}, counts {page['counts']}")

        stats = client.stats()
        print(f"stats: jobs {stats['jobs']}, "
              f"cache hits {stats['cache_hits']}, flow solves "
              f"{ {k: v.get('solves') for k, v in stats['flow'].items()} }")

    server.shutdown()
    server.server_close()
    service.close()
    print("service stopped")


if __name__ == "__main__":
    main()
