#!/usr/bin/env python3
"""Run a small sizing campaign twice: compute once, replay from cache.

Demonstrates the ``repro.runner`` subsystem behind ``python -m repro
campaign``: a declarative :class:`CampaignSpec` expands into hashable
jobs, results land in a content-addressed cache, and the second run of
the identical sweep is pure cache replay (every job reports ``hit``).

Run:  python examples/sweep_campaign.py
      (c17 at three delay targets — a few seconds end to end)
"""

import tempfile
from pathlib import Path

from repro import runner
from repro.runner import CampaignSpec, format_campaign


def main() -> None:
    scratch = Path(tempfile.mkdtemp(prefix="repro-sweep-"))
    spec = CampaignSpec(
        name="demo-sweep",
        circuits=("c17",),
        delay_specs=(0.6, 0.7, 0.8),
    )

    first = runner.run(
        spec,
        jobs=1,
        cache=scratch / "cache",
        run_dir=scratch / "run",
    )
    print(format_campaign(first))
    assert first.n_failed == 0 and first.n_cached == 0

    # The identical spec again, against the same cache: no sizing runs.
    second = runner.run(spec, jobs=1, cache=scratch / "cache")
    print(format_campaign(second))
    assert second.n_cached == len(second.outcomes), "expected pure replay"

    areas_first = [o.payload["result"]["area"] for o in first.outcomes]
    areas_second = [o.payload["result"]["area"] for o in second.outcomes]
    assert areas_first == areas_second
    print(f"replay verified: {len(areas_second)} jobs served from "
          f"{scratch / 'cache'}; run log at {scratch / 'run'}")


if __name__ == "__main__":
    main()
