#!/usr/bin/env python3
"""Size one circuit end to end and persist the result as JSON.

The minimal library-level workflow behind ``python -m repro size``:
resolve a circuit token, build the sizing DAG, seed with TILOS, refine
with MINFLOTRANSIT, then write the schema-versioned result file that
``repro.sizing.serialize.load_result`` (or any downstream tool) can
read back.

Run:  python examples/size_one.py [circuit-token] [delay-spec]
      (defaults: c17 at 0.6 * Dmin — finishes in well under a second)
"""

import sys
import tempfile
from pathlib import Path

from repro import build_sizing_dag, default_technology, minflotransit, tilos_size
from repro.runner import resolve_circuit
from repro.sizing.serialize import load_result, save_result
from repro.timing import analyze


def main() -> None:
    token = sys.argv[1] if len(sys.argv) > 1 else "c17"
    spec = float(sys.argv[2]) if len(sys.argv) > 2 else 0.6

    # Any campaign/service circuit token works here: a suite name,
    # "rca:N", or a path to a .bench file.
    circuit = resolve_circuit(token)
    dag = build_sizing_dag(circuit, default_technology(), mode="gate")
    d_min = analyze(dag, dag.min_sizes()).critical_path_delay
    target = spec * d_min
    print(f"{circuit.name}: {circuit.n_gates} gates, {dag.n} variables, "
          f"Dmin = {d_min:.0f} ps, target = {target:.0f} ps")

    seed = tilos_size(dag, target)
    assert seed.feasible, "TILOS could not reach the target"
    result = minflotransit(dag, target, x0=seed.x)
    print(result.summary())

    out = Path(tempfile.mkdtemp(prefix="repro-size-one-")) / "result.json"
    save_result(result, out, dag=dag)
    reloaded = load_result(out)
    assert reloaded.area == result.area
    print(f"result written to {out} and read back intact "
          f"(area {reloaded.area:.2f}, {reloaded.n_iterations} iterations)")


if __name__ == "__main__":
    main()
