#!/usr/bin/env python3
"""Sizing under a non-Elmore delay model.

The paper stresses (section 1, point 3) that MINFLOTRANSIT only needs
the delay to decompose into *simple monotonic functionals* — any
monotone-decreasing self-size law works, not just Elmore's 1/x.  This
example sizes the same circuit under Elmore and under a velocity-
saturated power law g(x) = x^-0.8, showing the pipeline is oblivious
to the law (the D-phase works on delays; the W-phase only needs the
law's inverse).

Run:  python examples/custom_delay_model.py
"""

from repro import build_sizing_dag, default_technology, minflotransit
from repro.delay import ElmoreSizeLaw, PowerSizeLaw
from repro.generators import build_circuit
from repro.timing import analyze


def main() -> None:
    circuit = build_circuit("c432eq")
    tech = default_technology()
    laws = [
        ("Elmore  g(x) = 1/x", ElmoreSizeLaw()),
        ("power   g(x) = x^-0.8", PowerSizeLaw(exponent=0.8)),
        ("power   g(x) = x^-0.6", PowerSizeLaw(exponent=0.6)),
    ]
    print(f"{circuit.name}: {circuit.n_gates} gates; "
          f"target 0.6 * Dmin under each law\n")
    for label, law in laws:
        dag = build_sizing_dag(circuit, tech, mode="gate", law=law)
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        try:
            result = minflotransit(dag, 0.6 * d_min)
        except Exception as exc:  # weaker laws raise the delay floor
            print(f"{label:24s} Dmin {d_min:8.0f} ps  target infeasible "
                  f"({exc})")
            continue
        norm = result.area / dag.area(dag.min_sizes())
        print(f"{label:24s} Dmin {d_min:8.0f} ps  "
              f"area {norm:6.3f}x min  "
              f"({result.n_iterations} iters, "
              f"saved {100 * result.area_saving_vs_initial:.1f}% vs TILOS)")
    print("\nWeaker drive improvement (smaller exponent) makes speed "
          "more expensive: the area at the same relative target grows, "
          "and the reachable delay floor rises.")


if __name__ == "__main__":
    main()
