#!/usr/bin/env python3
"""The paper's Example 1 (figure 6): why greedy sizing over-spends.

Gate A drives gates B and C; both paths A->B and A->C are critical.
TILOS ranks candidates by per-gate sensitivity, so it keeps bumping B
and C in alternate passes — two gates pay area where one could.  The
D-phase of MINFLOTRANSIT evaluates the delay-budget trade *globally*
(as a min-cost flow), discovers that giving A a bigger share of the
path budget speeds both paths at once, and the W-phase then shrinks B
and C.

Run:  python examples/figure6_global_vs_greedy.py
"""

from repro import CircuitBuilder, build_sizing_dag, default_technology
from repro.sizing import minflotransit, tilos_size
from repro.timing import analyze


def build_figure6_dag():
    builder = CircuitBuilder("figure6")
    i0, i1, i2, i3 = builder.inputs(["i0", "i1", "i2", "i3"])
    a = builder.gate("NAND2", [i0, i1], out="a")
    b = builder.gate("NAND2", [a, i2], out="b")
    c = builder.gate("NAND2", [a, i3], out="c")
    builder.output(b)
    builder.output(c)
    circuit = builder.build()
    return build_sizing_dag(circuit, default_technology(), mode="gate")


def main() -> None:
    dag = build_figure6_dag()
    labels = {v.label.split("_")[0].replace("g0", "A")
              .replace("g1", "B").replace("g2", "C"): v.index
              for v in dag.vertices}
    d_min = analyze(dag, dag.min_sizes()).critical_path_delay
    target = 0.55 * d_min
    print(f"three-gate fanout circuit, Dmin = {d_min:.0f} ps, "
          f"target = {target:.0f} ps\n")

    greedy = tilos_size(dag, target)
    result = minflotransit(dag, target, x0=greedy.x)

    print(f"{'gate':>6s} {'TILOS size':>12s} {'MINFLO size':>12s}")
    for name in ("A", "B", "C"):
        i = labels[name]
        print(f"{name:>6s} {greedy.x[i]:12.2f} {result.x[i]:12.2f}")
    print(f"\n{'area':>6s} {greedy.area:12.1f} {result.area:12.1f}")
    print(f"\nMINFLOTRANSIT saves "
          f"{100 * (1 - result.area / greedy.area):.1f}% by shifting "
          f"delay budget: the shared driver A works harder so the two "
          f"sinks B and C can relax.")
    ratio_greedy = greedy.x[labels["A"]] / greedy.x[labels["B"]]
    ratio_minflo = result.x[labels["A"]] / result.x[labels["B"]]
    print(f"size ratio A/B: TILOS {ratio_greedy:.2f} -> "
          f"MINFLOTRANSIT {ratio_minflo:.2f}")


if __name__ == "__main__":
    main()
