#!/usr/bin/env python3
"""External-netlist workflow: .bench in, sized .bench + report out.

Shows the intended flow for a user with their own ISCAS-format
netlists: parse, lint, prune dead logic, buffer oversized fanouts, map
to primitive cells, size, and write the result (with the sizes in a
side report, since .bench has no size attribute).

Run:  python examples/bench_io_workflow.py [file.bench]
(without an argument a demo netlist is used)
"""

import sys
from pathlib import Path

from repro import build_sizing_dag, default_technology, minflotransit
from repro.circuit import (
    load_bench,
    loads_bench,
    map_to_primitives,
    prune_dangling,
    save_bench,
    validate_circuit,
)
from repro.circuit.transform import buffer_high_fanout
from repro.timing import analyze

DEMO = """
# demo: 4-bit parity with some dead logic
INPUT(a) INPUT(b)
""".strip()

DEMO = "\n".join(
    ["INPUT(a)", "INPUT(b)", "INPUT(c)", "INPUT(d)", "OUTPUT(par)",
     "t1 = XOR(a, b)", "t2 = XOR(c, d)", "par = XOR(t1, t2)",
     "dead = AND(a, b, c)"]
)


def main() -> None:
    if len(sys.argv) > 1:
        circuit = load_bench(sys.argv[1])
    else:
        circuit = loads_bench(DEMO, name="demo")
    print(f"loaded {circuit.name}: {circuit.n_gates} gates")

    for lint in validate_circuit(circuit):
        print(f"  lint: {lint.message}")
    circuit = prune_dangling(circuit)
    circuit = buffer_high_fanout(circuit, max_fanout=8)
    circuit = map_to_primitives(circuit, suffix="")
    print(f"after prune/buffer/map: {circuit.n_gates} primitive gates")

    tech = default_technology()
    dag = build_sizing_dag(circuit, tech, mode="gate")
    d_min = analyze(dag, dag.min_sizes()).critical_path_delay
    result = minflotransit(dag, 0.6 * d_min)
    print(result.summary())

    out_dir = Path("out")
    out_dir.mkdir(exist_ok=True)
    bench_path = save_bench(circuit, out_dir / f"{circuit.name}_sized.bench")
    report_path = out_dir / f"{circuit.name}_sizes.txt"
    with open(report_path, "w") as handle:
        for vertex in dag.vertices:
            handle.write(f"{vertex.label}\t{result.x[vertex.index]:.3f}\n")
    print(f"wrote {bench_path} and {report_path}")


if __name__ == "__main__":
    main()
