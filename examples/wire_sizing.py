#!/usr/bin/env python3
"""Simultaneous gate and wire sizing (paper section 2.1).

The paper's framework treats wires exactly like transistors: a wire
vertex joins the circuit DAG with a delay that is a simple monotonic
functional of its width (resistance falls, area capacitance grows).
This example sizes the same circuit with wires fixed and with wires
sizable and reports where the widths went.

Run:  python examples/wire_sizing.py [circuit] [spec]
"""

import sys


from repro import build_sizing_dag, default_technology, minflotransit
from repro.generators import build_circuit
from repro.timing import analyze


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "c17"
    spec = float(sys.argv[2]) if len(sys.argv) > 2 else 0.55
    circuit = build_circuit(name)
    tech = default_technology()

    for wires in (False, True):
        dag = build_sizing_dag(circuit, tech, mode="gate", size_wires=wires)
        d_min = analyze(dag, dag.min_sizes()).critical_path_delay
        result = minflotransit(dag, spec * d_min)
        gates = [v.index for v in dag.vertices if v.kind == "gate"]
        label = "gates+wires" if wires else "gates only "
        print(f"{label}: {dag.n:4d} vars, Dmin {d_min:8.0f} ps, "
              f"gate area {float(dag.area_weight[gates] @ result.x[gates]):8.1f}, "
              f"{result.n_iterations} iterations")
        if wires:
            widths = {
                v.label: result.x[v.index]
                for v in dag.vertices
                if v.kind == "wire" and result.x[v.index] > 1.0 + 1e-6
            }
            print(f"  widened wires ({len(widths)}):")
            for net, width in sorted(widths.items(), key=lambda kv: -kv[1])[:8]:
                print(f"    {net:24s} -> {width:.2f}x")


if __name__ == "__main__":
    main()
