#!/usr/bin/env python3
"""Area-delay trade-off curve for any suite circuit (figure 7 style).

Sweeps delay targets from aggressive to relaxed, sizes the circuit
with TILOS and MINFLOTRANSIT at each point and renders the two curves
as an ASCII plot — the reproduction of the paper's figure 7.

Run:  python examples/area_delay_tradeoff.py [circuit] [ratios...]
e.g.  python examples/area_delay_tradeoff.py c432eq 0.4 0.5 0.7 1.0
"""

import sys

from repro.analysis import area_delay_curve, ascii_plot
from repro.dag import build_sizing_dag
from repro.generators import build_circuit
from repro.tech import default_technology


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "c432eq"
    ratios = (
        [float(tok) for tok in sys.argv[2:]]
        if len(sys.argv) > 2
        else [0.45, 0.5, 0.6, 0.7, 0.85, 1.0]
    )
    circuit = build_circuit(name)
    dag = build_sizing_dag(circuit, default_technology(), mode="gate")
    print(f"{name}: {circuit.n_gates} gates; sweeping "
          f"{len(ratios)} delay targets ...")
    curve = area_delay_curve(dag, ratios)

    print()
    print(
        ascii_plot(
            [
                ("TILOS", curve.series("tilos")),
                ("MINFLOTRANSIT", curve.series("minflo")),
            ],
            x_label="(Delay of Ckt)/(Delay of minimum size Ckt)",
            y_label="(Area of Ckt)/(Area of minimum size Ckt)",
            title=f"Area-delay trade-off — {name}",
        )
    )
    print()
    for p in curve.points:
        if p.tilos_area_ratio is None:
            print(f"  T/Dmin={p.delay_ratio:.2f}: infeasible")
        else:
            print(
                f"  T/Dmin={p.delay_ratio:.2f}: TILOS "
                f"{p.tilos_area_ratio:.3f}x  MINFLO "
                f"{p.minflo_area_ratio:.3f}x  (saves "
                f"{p.saving_percent:.1f}%)"
            )


if __name__ == "__main__":
    main()
