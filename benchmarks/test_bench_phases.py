"""Micro-benchmarks of the pipeline stages (scaling evidence).

The paper claims near-linear run-time growth for both phases (section
1).  These benchmarks time one STA pass, one delay balancing, one
W-phase and one D-phase on circuits of increasing size; extra_info
carries vertex/edge counts so the scaling trend can be read off the
saved benchmark JSON.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import get_context
from repro.balancing import balance
from repro.sizing import d_phase, w_phase

_SIZES = [("c17", 0.6), ("c432eq", 0.4), ("c880eq", 0.4)]
_IDS = [name for name, _ in _SIZES]


def _prepared(name, spec):
    context = get_context(name, spec)
    x = context.seed.x
    delays = context.dag.delays(x)
    return context, x, delays


@pytest.mark.parametrize("name,spec", _SIZES, ids=_IDS)
def test_sta_pass(benchmark, name, spec):
    context, x, delays = _prepared(name, spec)
    report = benchmark(context.timer.analyze, delays, context.target)
    benchmark.extra_info["n_vertices"] = context.dag.n
    benchmark.extra_info["n_edges"] = context.dag.n_edges
    assert report.critical_path_delay <= context.target * (1 + 1e-9)


@pytest.mark.parametrize("name,spec", _SIZES, ids=_IDS)
def test_balancing_pass(benchmark, name, spec):
    context, x, delays = _prepared(name, spec)
    config = benchmark(
        balance, context.dag, delays, context.target, "asap", context.timer
    )
    benchmark.extra_info["n_vertices"] = context.dag.n
    assert config.total_fsdu >= 0


@pytest.mark.parametrize("name,spec", _SIZES, ids=_IDS)
def test_w_phase_pass(benchmark, name, spec):
    context, x, delays = _prepared(name, spec)
    budgets = delays * 1.02

    result = benchmark(w_phase, context.dag, budgets)
    benchmark.extra_info["n_vertices"] = context.dag.n
    assert result.feasible


@pytest.mark.parametrize("name,spec", _SIZES, ids=_IDS)
def test_d_phase_pass(benchmark, name, spec):
    context, x, delays = _prepared(name, spec)
    config = balance(
        context.dag, delays, horizon=context.target, timer=context.timer
    )
    load = delays - context.dag.model.intrinsic

    def run():
        return d_phase(
            context.dag, x, config, -0.25 * load, 0.25 * load
        )

    result = benchmark(run)
    benchmark.extra_info["n_vertices"] = context.dag.n
    assert result.predicted_gain >= 0
