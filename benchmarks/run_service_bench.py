"""Service-tier benchmark: latency, throughput, cache hits, admission.

Exercises the HTTP sizing service the way a fleet client does — over
real sockets, with concurrent clients — and records the signals the
regression gate (``check_regression.py``) can compare across CI
runners.  Absolute wall times are reported for humans but never gated;
the machine-independent signals are:

* **parity_ok** — warm (cached) replies are byte-identical to their
  cold originals, and a second replica on the same shared backend
  serves the same bytes.
* **cache_hit_rate** — the warm phase must replay entirely from the
  content-addressed cache (rate 1.0 by construction).
* **executed** — the cold phase executes exactly one sizing per unique
  job; growth means the dedup/caching path got structurally worse.
* **speedup_warm_vs_cold** — warm vs cold throughput measured in the
  same process on the same machine, so the ratio survives runner
  changes.
* **admission_ok** — flooding one client past its token-bucket burst
  yields exactly ``burst`` admissions and structured 429s (with
  ``Retry-After``) for the rest; every request is answered.

* **trace_overhead_ok** — warm p50 with span emission on stays within
  5% of the same workload with ``trace=False`` (absolute backstop
  0.5ms, since warm p50 is noisy on shared runners).

* **fault_overhead_ok** — warm p50 with the fault-injection harness
  armed (an injector installed, rules on an inert site, so every probe
  pays its lookup but nothing fires) stays within 5% of the same
  workload with faults off entirely (same 0.5ms backstop).

Phases: **cold** (N unique jobs over C client threads), **warm** (the
same jobs twice more, all hits), **fleet** (two in-process replicas on
one shared sqlite queue + cache: jobs computed on replica A replay on
replica B), **flood** (quota-bounded burst of async submissions),
**trace_overhead** (warm p50 with spans on vs ``trace=False``),
**fault_overhead** (warm p50 with an armed injector vs none).

Usage::

    PYTHONPATH=src python benchmarks/run_service_bench.py \
        [--out benchmarks/BENCH_service.json] [--clients 4] \
        [--unique 12] [--check]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import ServiceError  # noqa: E402
from repro.faults.injector import uninstall as uninstall_faults  # noqa: E402
from repro.service import ServiceClient, SizingService, make_server  # noqa: E402
from repro.sizing.serialize import canonical_json  # noqa: E402

SCHEMA = "repro-bench-service/1"
FLOOD_BURST = 4
FLOOD_REQUESTS = 16
TARGET_WARM_SPEEDUP = 2.0
TRACE_OVERHEAD_CEILING = 1.05
TRACE_OVERHEAD_BACKSTOP_S = 0.0005
FAULT_OVERHEAD_CEILING = 1.05
FAULT_OVERHEAD_BACKSTOP_S = 0.0005


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _latency_block(samples: list[float]) -> dict:
    return {
        "p50_ms": round(_percentile(samples, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(samples, 0.95) * 1e3, 3),
        "p99_ms": round(_percentile(samples, 0.99) * 1e3, 3),
        "mean_ms": round(sum(samples) / len(samples) * 1e3, 3),
    }


class _Box:
    """One in-process service + HTTP server, torn down cleanly."""

    def __init__(self, **service_kwargs):
        self.service = SizingService(**service_kwargs)
        self.server = make_server(self.service, quiet=True)
        host, port = self.server.server_address[:2]
        self.url = f"http://{host}:{port}"
        threading.Thread(
            target=self.server.serve_forever, daemon=True
        ).start()

    def stop(self):
        self.server.shutdown()
        self.server.server_close()
        self.service.close()


def _run_phase(client, bodies, clients: int):
    """Issue ``bodies`` concurrently; returns (replies, latencies, wall)."""
    latencies = [0.0] * len(bodies)
    replies = [None] * len(bodies)

    def _one(index):
        start = time.perf_counter()
        replies[index] = client.size(**bodies[index])
        latencies[index] = time.perf_counter() - start

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        list(pool.map(_one, range(len(bodies))))
    return replies, latencies, time.perf_counter() - start


def bench_cold_warm(scratch: Path, clients: int, unique: int) -> dict:
    """Cold then warm request rounds against one service instance."""
    box = _Box(jobs=1, cache=scratch / "cache", run_dir=scratch / "run")
    try:
        client = ServiceClient(box.url, client_id="bench")
        bodies = [
            {"circuit": "c17", "delay_spec": 0.5 + i * (0.45 / unique)}
            for i in range(unique)
        ]
        cold_replies, cold_lat, cold_wall = _run_phase(
            client, bodies, clients
        )
        warm_replies, warm_lat, warm_wall = _run_phase(
            client, bodies * 2, clients
        )
        stats = client.stats()
        parity = all(
            canonical_json(warm_replies[i % unique]["payload"])
            == canonical_json(cold_replies[i % unique]["payload"])
            for i in range(len(warm_replies))
        )
        hit_rate = sum(r["cached"] for r in warm_replies) / len(warm_replies)
        return {
            "cold": {
                "requests": len(bodies),
                "wall_seconds": round(cold_wall, 6),
                "throughput_rps": round(len(bodies) / cold_wall, 2),
                "latency": _latency_block(cold_lat),
                "executed": stats["executed"],
            },
            "warm": {
                "requests": len(warm_replies),
                "wall_seconds": round(warm_wall, 6),
                "throughput_rps": round(len(warm_replies) / warm_wall, 2),
                "latency": _latency_block(warm_lat),
                "cache_hit_rate": hit_rate,
            },
            "parity_ok": parity,
            "speedup_warm_vs_cold": round(
                (len(warm_replies) / warm_wall) / (len(bodies) / cold_wall),
                3,
            ),
        }
    finally:
        box.stop()


def bench_fleet(scratch: Path, unique: int) -> dict:
    """Two replicas on one shared sqlite queue + cache: cross-replica
    replay must be byte-identical."""
    shared_cache = f"sqlite:{scratch / 'fleet-cache.db'}"
    boxes = [
        _Box(jobs=1, cache=shared_cache, run_dir=scratch / f"fleet-{name}",
             queue=scratch / "fleet-q.db")
        for name in ("a", "b")
    ]
    try:
        client_a = ServiceClient(boxes[0].url, client_id="bench-a")
        client_b = ServiceClient(boxes[1].url, client_id="bench-b")
        bodies = [
            {"circuit": "c17", "delay_spec": 0.5 + i * (0.45 / unique)}
            for i in range(min(unique, 6))
        ]
        computed = [client_a.size(**body) for body in bodies]
        replayed = [client_b.size(**body) for body in bodies]
        cross_hits = sum(r["cached"] for r in replayed)
        parity = all(
            canonical_json(r["payload"]) == canonical_json(c["payload"])
            for r, c in zip(replayed, computed)
        )
        visible = sum(
            client_b.job(c["id"])["status"] == c["status"] for c in computed
        )
        return {
            "jobs": len(bodies),
            "cross_replica_hits": cross_hits,
            "cross_replica_visible": visible,
            "parity_ok": parity and cross_hits == len(bodies),
        }
    finally:
        for box in boxes:
            box.stop()


def bench_trace_overhead(scratch: Path, clients: int, unique: int) -> dict:
    """Warm-path p50 with span emission on vs off (``trace=False``).

    Both sides run the identical cold-then-warm workload in this
    process; only the warm (cached) round is measured, where the
    instrumentation is proportionally largest.  The gate is a ratio
    with an absolute backstop — warm p50 is sub-millisecond-noisy on
    shared CI runners, so a 5% relative ceiling alone would flap.
    """

    def warm_p50(label: str, trace: bool) -> float:
        box = _Box(
            jobs=1, cache=scratch / f"cache-{label}",
            run_dir=scratch / f"run-{label}", trace=trace,
        )
        try:
            client = ServiceClient(box.url, client_id=f"bench-{label}")
            bodies = [
                {"circuit": "c17", "delay_spec": 0.5 + i * (0.45 / unique)}
                for i in range(unique)
            ]
            _run_phase(client, bodies, clients)  # cold: populate the cache
            _, warm_lat, _ = _run_phase(client, bodies * 3, clients)
            return _percentile(warm_lat, 0.50)
        finally:
            box.stop()

    traced = warm_p50("traced", True)
    bare = warm_p50("bare", False)
    ratio = traced / bare if bare > 0 else 1.0
    return {
        "warm_p50_traced_ms": round(traced * 1e3, 3),
        "warm_p50_untraced_ms": round(bare * 1e3, 3),
        "overhead_ratio": round(ratio, 3),
        "overhead_ok": ratio <= TRACE_OVERHEAD_CEILING
        or (traced - bare) <= TRACE_OVERHEAD_BACKSTOP_S,
    }


def bench_fault_overhead(scratch: Path, clients: int, unique: int) -> dict:
    """Warm-path p50 with the fault harness armed vs fully off.

    The armed side installs a real injector whose only rule targets an
    inert site, so every wired-in probe (``cache.get``, ``queue.*``,
    ``http.response``, ...) pays the full lookup cost without ever
    firing — the worst honest case for a production service running
    with ``--faults`` unset or pointed elsewhere.  Same ratio + absolute
    backstop shape as the trace gate, for the same noisy-runner reason.
    """

    def warm_p50(label: str, faults: str | None) -> float:
        box = _Box(
            jobs=1, cache=scratch / f"cache-{label}",
            run_dir=scratch / f"run-{label}", faults=faults,
        )
        try:
            client = ServiceClient(box.url, client_id=f"bench-{label}")
            bodies = [
                {"circuit": "c17", "delay_spec": 0.5 + i * (0.45 / unique)}
                for i in range(unique)
            ]
            _run_phase(client, bodies, clients)  # cold: populate the cache
            _, warm_lat, _ = _run_phase(client, bodies * 3, clients)
            return _percentile(warm_lat, 0.50)
        finally:
            box.stop()
            uninstall_faults()

    bare = warm_p50("off", None)
    armed = warm_p50("armed", "bench.inert:error@0.5")
    ratio = armed / bare if bare > 0 else 1.0
    return {
        "warm_p50_armed_ms": round(armed * 1e3, 3),
        "warm_p50_off_ms": round(bare * 1e3, 3),
        "overhead_ratio": round(ratio, 3),
        "overhead_ok": ratio <= FAULT_OVERHEAD_CEILING
        or (armed - bare) <= FAULT_OVERHEAD_BACKSTOP_S,
    }


def bench_flood(scratch: Path) -> dict:
    """Flood one client past its admission burst; count the refusals."""
    box = _Box(
        jobs=1, cache=None, run_dir=scratch / "flood-run",
        quota_rate=1e-6, quota_burst=float(FLOOD_BURST),
    )
    try:
        client = ServiceClient(box.url, client_id="flooder", retries=0)
        admitted = rejected = 0
        retry_after_ok = True
        for i in range(FLOOD_REQUESTS):
            try:
                client.submit(circuit="c17", delay_spec=0.5 + i / 100)
                admitted += 1
            except ServiceError as exc:
                if exc.status != 429:
                    raise
                rejected += 1
                retry_after_ok &= bool(
                    exc.retry_after and exc.retry_after > 0
                )
        return {
            "requests": FLOOD_REQUESTS,
            "burst": FLOOD_BURST,
            "admitted": admitted,
            "rejected": rejected,
            "admission_ok": (
                admitted == FLOOD_BURST
                and admitted + rejected == FLOOD_REQUESTS
                and retry_after_ok
            ),
        }
    finally:
        box.stop()


def run(clients: int, unique: int, scratch: Path) -> dict:
    """Run every phase; returns the benchmark document."""
    cold_warm = bench_cold_warm(scratch / "single", clients, unique)
    fleet = bench_fleet(scratch / "fleet", unique)
    flood = bench_flood(scratch / "flood")
    trace_overhead = bench_trace_overhead(scratch / "trace", clients, unique)
    fault_overhead = bench_fault_overhead(scratch / "faults", clients, unique)
    return {
        "schema": SCHEMA,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "config": {"clients": clients, "unique_jobs": unique},
        "phases": {
            "cold": cold_warm["cold"],
            "warm": cold_warm["warm"],
            "fleet": fleet,
            "flood": flood,
            "trace_overhead": trace_overhead,
            "fault_overhead": fault_overhead,
        },
        "summary": {
            "parity_ok": cold_warm["parity_ok"] and fleet["parity_ok"],
            "cache_hit_rate": cold_warm["warm"]["cache_hit_rate"],
            "speedup_warm_vs_cold": cold_warm["speedup_warm_vs_cold"],
            "executed_cold": cold_warm["cold"]["executed"],
            "admission_ok": flood["admission_ok"],
            "trace_overhead_ratio": trace_overhead["overhead_ratio"],
            "trace_overhead_ok": trace_overhead["overhead_ok"],
            "fault_overhead_ratio": fault_overhead["overhead_ratio"],
            "fault_overhead_ok": fault_overhead["overhead_ok"],
        },
    }


def check(report: dict) -> list[str]:
    """Acceptance gate for a fresh run (independent of any baseline)."""
    failures = []
    summary = report["summary"]
    if not summary["parity_ok"]:
        failures.append("parity broken: cached replies diverge")
    if summary["cache_hit_rate"] < 1.0:
        failures.append(
            f"warm phase missed the cache "
            f"(hit rate {summary['cache_hit_rate']:.2f})"
        )
    if summary["executed_cold"] != report["config"]["unique_jobs"]:
        failures.append(
            f"cold phase executed {summary['executed_cold']} sizings "
            f"for {report['config']['unique_jobs']} unique jobs"
        )
    if not summary["admission_ok"]:
        failures.append("admission control did not bound the flood")
    if not summary.get("trace_overhead_ok", True):
        failures.append(
            f"span instrumentation overhead "
            f"{summary['trace_overhead_ratio']:.3f}x on warm p50 exceeds "
            f"{TRACE_OVERHEAD_CEILING:.2f}x (backstop "
            f"{TRACE_OVERHEAD_BACKSTOP_S * 1e3:.1f}ms)"
        )
    if not summary.get("fault_overhead_ok", True):
        failures.append(
            f"fault-probe overhead "
            f"{summary['fault_overhead_ratio']:.3f}x on warm p50 exceeds "
            f"{FAULT_OVERHEAD_CEILING:.2f}x (backstop "
            f"{FAULT_OVERHEAD_BACKSTOP_S * 1e3:.1f}ms)"
        )
    if summary["speedup_warm_vs_cold"] < TARGET_WARM_SPEEDUP:
        failures.append(
            f"warm/cold speedup {summary['speedup_warm_vs_cold']:.2f}x "
            f"below target {TARGET_WARM_SPEEDUP:.1f}x"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="write the JSON document here")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads (default 4)")
    parser.add_argument("--unique", type=int, default=12,
                        help="unique jobs in the cold phase (default 12)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless the acceptance gates hold")
    args = parser.parse_args(argv)

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as tmp:
        report = run(args.clients, args.unique, Path(tmp))

    summary = report["summary"]
    print(f"[service-bench] cold p50 "
          f"{report['phases']['cold']['latency']['p50_ms']}ms "
          f"({report['phases']['cold']['throughput_rps']} req/s), "
          f"warm p50 {report['phases']['warm']['latency']['p50_ms']}ms "
          f"({report['phases']['warm']['throughput_rps']} req/s)")
    print(f"[service-bench] warm/cold speedup "
          f"{summary['speedup_warm_vs_cold']}x, hit rate "
          f"{summary['cache_hit_rate']:.2f}, fleet parity "
          f"{report['phases']['fleet']['parity_ok']}, flood "
          f"{report['phases']['flood']['rejected']}/"
          f"{report['phases']['flood']['requests']} rejected")
    trace_phase = report["phases"]["trace_overhead"]
    print(f"[service-bench] trace overhead "
          f"{trace_phase['overhead_ratio']}x on warm p50 "
          f"({trace_phase['warm_p50_traced_ms']}ms traced vs "
          f"{trace_phase['warm_p50_untraced_ms']}ms bare)")
    fault_phase = report["phases"]["fault_overhead"]
    print(f"[service-bench] fault-probe overhead "
          f"{fault_phase['overhead_ratio']}x on warm p50 "
          f"({fault_phase['warm_p50_armed_ms']}ms armed vs "
          f"{fault_phase['warm_p50_off_ms']}ms off)")

    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"[service-bench] wrote {args.out}")
    if args.check:
        failures = check(report)
        for failure in failures:
            print(f"[service-bench] FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("[service-bench] acceptance gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
