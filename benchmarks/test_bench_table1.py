"""Benchmark: regenerate the paper's Table 1 (E-T1 in DESIGN.md).

Each suite row is one benchmark whose measured time is the full
TILOS + MINFLOTRANSIT pipeline; the printed summary holds the columns
of the paper's table (area saving %, CPU TILOS, CPU extra).  The row
set follows ``REPRO_BENCH_TIER``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.experiments.table1 import (
    Table1Row,
    format_table1,
    run_row,
    select_specs,
)

_SPECS = select_specs()
_ROWS: list[Table1Row] = []


@pytest.mark.parametrize("spec", _SPECS, ids=[s.name for s in _SPECS])
def test_table1_row(benchmark, spec):
    row = once(benchmark, run_row, spec)
    _ROWS.append(row)
    benchmark.extra_info["area_saving_percent"] = row.area_saving_percent
    benchmark.extra_info["paper_saving_percent"] = row.paper_saving_percent
    benchmark.extra_info["tilos_seconds"] = row.tilos_seconds
    benchmark.extra_info["minflo_extra_seconds"] = row.minflo_extra_seconds
    assert row.feasible, f"{spec.name}: delay spec not reachable"
    # Shape check vs the paper: MINFLOTRANSIT never loses to TILOS, and
    # wins visibly wherever the paper reports >2% savings.
    assert row.area_saving_percent >= -1e-6
    if row.paper_saving_percent >= 2.0:
        assert row.area_saving_percent >= 1.0


def test_table1_report(benchmark):
    """Prints the assembled table (measured next to paper numbers)."""

    def render() -> str:
        return format_table1(_ROWS)

    text = once(benchmark, render)
    print()
    print(text)
    assert "Table 1" in text
