"""Benchmark: regenerate the paper's Figure 7 (E-F7a / E-F7b).

Sweeps the area-delay curve for the two panel circuits and prints the
ASCII rendition plus the numeric series.  The smoke tier uses a reduced
ratio set and substitutes the light c499eq for the 16x16 multiplier;
``REPRO_BENCH_TIER=paper`` runs the real c432eq/c6288eq panels on the
full ratio sweep.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import once
from repro.experiments.figure7 import default_circuits, format_panel, run_panel

_TIER = os.environ.get("REPRO_BENCH_TIER", "smoke")
_RATIOS = (
    [0.4, 0.45, 0.5, 0.55, 0.6, 0.7, 0.8, 0.9, 1.0]
    if _TIER == "paper"
    else [0.45, 0.6, 0.8, 1.0]
)
_CIRCUITS = default_circuits(_TIER)


@pytest.mark.parametrize("name", _CIRCUITS)
def test_figure7_panel(benchmark, name):
    curve = once(benchmark, run_panel, name, _RATIOS)
    print()
    print(format_panel(curve))

    tilos = dict(curve.series("tilos"))
    minflo = dict(curve.series("minflo"))
    assert tilos, "no feasible sweep points"
    for ratio, tilos_area in tilos.items():
        # MINFLOTRANSIT never above TILOS at any point of the curve.
        assert minflo[ratio] <= tilos_area + 1e-9
    # Both curves are non-increasing in the delay ratio (area-delay
    # trade-off monotonicity) up to warm-start noise.
    ratios = sorted(tilos)
    for lo, hi in zip(ratios, ratios[1:]):
        assert tilos[hi] <= tilos[lo] * 1.02
        assert minflo[hi] <= minflo[lo] * 1.02
    # At the loose end the tools agree (nothing to size).
    assert minflo[ratios[-1]] == pytest.approx(tilos[ratios[-1]], rel=0.02)
    benchmark.extra_info["points"] = len(curve.points)
