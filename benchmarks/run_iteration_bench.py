"""Iteration-engine benchmark: incremental timing + warm-started D-phase.

Measures the two cross-iteration accelerators this library applies to
the MINFLOTRANSIT alternation, on real smoke-tier instances:

* **Incremental timing cone.**  A TILOS run with the incremental engine
  reports how many vertices it actually re-propagated per bump, against
  the ``2 * n`` a from-scratch forward/backward STA would touch
  (acceptance target: < 50%).

* **Warm-started D-phase.**  The W/D alternation is replayed with every
  iteration's flow instance solved twice — cold, and warm-started from
  the *previous* iteration's basis — on identical inputs, so the
  comparison is paired and trajectory-independent (the replay always
  advances with the cold result).  Warm and cold objectives are
  asserted exactly equal; the saving shows up as fewer augmenting paths
  and less supply routed (acceptance target: strictly fewer total
  augmentations over the iterations where a basis existed).

Emits a machine-readable ``BENCH_iteration.json``; the committed copy
is the regression baseline the same way ``BENCH_flow.json`` is (see
``benchmarks/README.md``).

Usage::

    PYTHONPATH=src python benchmarks/run_iteration_bench.py \
        [--tier smoke|paper] [--out benchmarks/BENCH_iteration.json] \
        [--iterations 8] [--check]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.balancing import balance  # noqa: E402
from repro.dag import build_sizing_dag  # noqa: E402
from repro.generators.iscas import SUITE, build_circuit  # noqa: E402
from repro.sizing import TilosOptions, tilos_size  # noqa: E402
from repro.sizing.dphase import d_phase  # noqa: E402
from repro.sizing.wphase import w_phase  # noqa: E402
from repro.tech import default_technology  # noqa: E402
from repro.timing import GraphTimer  # noqa: E402

SCHEMA = "repro-bench-iteration/1"
TARGET_CONE_FRACTION = 0.5
ALPHA = 0.25


def tier_circuits(tier: str) -> list[tuple[str, float]]:
    return [
        (spec.name, spec.delay_spec)
        for spec in SUITE
        if tier == "paper" or spec.tier == "smoke"
    ]


def bench_circuit(name: str, spec: float, iterations: int) -> dict:
    """TILOS cone telemetry + paired warm/cold D-phase replay."""
    circuit = build_circuit(name)
    dag = build_sizing_dag(circuit, default_technology(), mode="gate")
    timer = GraphTimer(dag)
    d_min = timer.analyze(dag.delays(dag.min_sizes())).critical_path_delay
    target = spec * d_min

    seed = tilos_size(
        dag, target, TilosOptions(engine="incremental"), timer=timer
    )
    tstats = seed.timing_stats
    entry: dict = {
        "name": name,
        "delay_spec": spec,
        "n_vertices": dag.n,
        "tilos": {
            "feasible": seed.feasible,
            "bumps": seed.iterations,
            "repropagated_vertices": tstats["repropagated_vertices"],
            "full_pass_equivalent": tstats["full_pass_equivalent"],
            "cone_fraction": round(tstats["cone_fraction"], 4),
        },
        "iterations": [],
    }
    if not seed.feasible:
        return entry

    # Replay the W/D alternation: every iteration's LP is solved cold
    # (which also drives the trajectory, keeping the replay
    # deterministic) and warm from the previous cold basis.
    x = seed.x
    warm_basis = None
    for iteration in range(1, iterations + 1):
        delays = dag.model.delays(x)
        config = balance(dag, delays, horizon=target, timer=timer)
        load = delays - dag.model.intrinsic
        min_dd, max_dd = -ALPHA * load, ALPHA * load

        cold = d_phase(dag, x, config, min_dd, max_dd, backend="ssp")
        row = {
            "iteration": iteration,
            "cold": _solve_row(cold),
            "warm": None,
        }
        if warm_basis is not None:
            warm = d_phase(
                dag, x, config, min_dd, max_dd,
                backend="ssp", warm_start=warm_basis,
            )
            gap = abs(warm.predicted_gain - cold.predicted_gain)
            scale = 1.0 + abs(cold.predicted_gain)
            if gap > 1e-9 * scale:
                # Explicit (not assert): the exactness gate must hold
                # even under python -O.
                raise RuntimeError(
                    f"warm/cold objective mismatch on {name} "
                    f"iteration {iteration}: {gap:.3g}"
                )
            row["warm"] = _solve_row(warm)
        entry["iterations"].append(row)
        warm_basis = cold.warm_basis

        # Advance exactly like the inner loop: accept the W-phase sizes
        # when they still meet timing.
        wres = w_phase(dag, delays + cold.delta_d)
        report = timer.analyze(dag.model.delays(wres.x), horizon=target)
        if report.critical_path_delay <= target * (1 + 1e-9):
            x = wres.x

    paired = [r for r in entry["iterations"] if r["warm"] is not None]
    entry["paired_iterations"] = len(paired)
    entry["cold_augmentations"] = sum(
        r["cold"]["augmentations"] for r in paired
    )
    entry["warm_augmentations"] = sum(
        r["warm"]["augmentations"] for r in paired
    )
    entry["warm_applied"] = sum(
        1 for r in paired if r["warm"]["warm_solves"]
    )
    return entry


def _solve_row(dres) -> dict:
    stats = dres.stats
    return {
        "augmentations": int(stats.augmentations),
        "sp_rounds": int(stats.sp_rounds),
        "supply_routed": float(stats.supply_routed),
        "warm_solves": int(stats.warm_solves),
        "warm_flow_reused": float(stats.warm_flow_reused),
        "wall_s": round(float(stats.wall_time_s), 6),
    }


def run(tier: str, iterations: int) -> dict:
    results = []
    for name, spec in tier_circuits(tier):
        print(f"[bench] {name} (spec {spec}) ...", flush=True)
        entry = bench_circuit(name, spec, iterations)
        tilos = entry["tilos"]
        print(
            f"[bench]   tilos cone {100 * tilos['cone_fraction']:.1f}% "
            f"over {tilos['bumps']} bumps; warm/cold augmentations "
            f"{entry.get('warm_augmentations')}/"
            f"{entry.get('cold_augmentations')}",
            flush=True,
        )
        results.append(entry)

    feasible = [e for e in results if e["tilos"]["feasible"]]
    cold_total = sum(e.get("cold_augmentations", 0) for e in feasible)
    warm_total = sum(e.get("warm_augmentations", 0) for e in feasible)
    worst_cone = max(
        (e["tilos"]["cone_fraction"] for e in feasible), default=0.0
    )
    return {
        "schema": SCHEMA,
        "tier": tier,
        "replay_iterations": iterations,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "circuits": results,
        "summary": {
            "worst_tilos_cone_fraction": round(worst_cone, 4),
            "target_cone_fraction": TARGET_CONE_FRACTION,
            "cone_ok": bool(worst_cone < TARGET_CONE_FRACTION),
            "cold_augmentations_total": cold_total,
            "warm_augmentations_total": warm_total,
            "warm_saves_augmentations": bool(warm_total < cold_total),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tier", default=None, choices=["smoke", "paper"],
                        help="circuit tier (default: $REPRO_BENCH_TIER "
                             "or 'smoke')")
    parser.add_argument("--out", default="BENCH_iteration.json")
    parser.add_argument("--iterations", type=int, default=8,
                        help="W/D iterations to replay per circuit")
    parser.add_argument("--check", action="store_true",
                        help="fail unless the cone and warm-start "
                             "acceptance targets hold")
    args = parser.parse_args(argv)

    tier = args.tier or os.environ.get("REPRO_BENCH_TIER", "smoke")
    report = run(tier, args.iterations)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    summary = report["summary"]
    print(f"[bench] wrote {args.out}")
    print(
        f"[bench] worst tilos cone "
        f"{summary['worst_tilos_cone_fraction']} (target < "
        f"{TARGET_CONE_FRACTION}); augmentations warm/cold "
        f"{summary['warm_augmentations_total']}/"
        f"{summary['cold_augmentations_total']}"
    )
    if args.check:
        if not summary["cone_ok"]:
            print("[bench] FAIL: incremental timing re-propagated "
                  ">= 50% of a full pass", file=sys.stderr)
            return 1
        if not summary["warm_saves_augmentations"]:
            print("[bench] FAIL: warm starts did not reduce "
                  "augmentations", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
