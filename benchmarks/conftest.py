"""Shared machinery for the benchmark suite.

Tier control: set ``REPRO_BENCH_TIER=paper`` to run all twelve Table 1
rows and the real c6288 figure panel; the default ``smoke`` tier keeps
the wall-clock time of ``pytest benchmarks/ --benchmark-only`` in the
minutes range by restricting to circuits below ~500 gates.
"""

from __future__ import annotations

import pytest

from repro.dag import build_sizing_dag
from repro.generators.iscas import build_circuit
from repro.sizing import tilos_size
from repro.tech import default_technology
from repro.timing import GraphTimer


@pytest.fixture(scope="session")
def tech():
    return default_technology()


class SizingContext:
    """A circuit prepared for sizing benchmarks (built once per session)."""

    def __init__(self, name: str, spec: float, mode: str = "gate"):
        self.name = name
        self.spec = spec
        self.circuit = build_circuit(name)
        self.dag = build_sizing_dag(
            self.circuit, default_technology(), mode=mode
        )
        self.timer = GraphTimer(self.dag)
        self.x_min = self.dag.min_sizes()
        self.d_min = self.timer.analyze(
            self.dag.delays(self.x_min)
        ).critical_path_delay
        self.target = spec * self.d_min
        self._seed = None

    @property
    def seed(self):
        """TILOS solution at the target (computed lazily, cached)."""
        if self._seed is None:
            self._seed = tilos_size(self.dag, self.target, timer=self.timer)
        return self._seed


_CONTEXT_CACHE: dict[tuple[str, float, str], SizingContext] = {}


def get_context(name: str, spec: float, mode: str = "gate") -> SizingContext:
    key = (name, spec, mode)
    if key not in _CONTEXT_CACHE:
        _CONTEXT_CACHE[key] = SizingContext(name, spec, mode=mode)
    return _CONTEXT_CACHE[key]


def once(benchmark, fn, *args, **kwargs):
    """Run a heavy benchmark exactly once (no warmup repeats)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
