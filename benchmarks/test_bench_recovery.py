"""Ablation benchmark: the baseline ladder on one circuit.

TILOS vs TILOS+recovery vs Lagrangian relaxation [8] vs MINFLOTRANSIT:
separates how much of MINFLOTRANSIT's area win is *global* budget
redistribution (the min-cost-flow D-phase) versus greedy slack
clean-up, and cross-validates against an independent exact method.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import get_context, once
from repro.sizing import lagrangian_size, minflotransit
from repro.sizing.recovery import greedy_downsize

_AREAS: dict[str, float] = {}


def test_recovery_pass(benchmark):
    context = get_context("c432eq", 0.4)
    seed = context.seed

    def run():
        return greedy_downsize(
            context.dag, seed.x, context.target, timer=context.timer
        )

    result = once(benchmark, run)
    _AREAS["tilos"] = seed.area
    _AREAS["recovery"] = result.area
    benchmark.extra_info["area"] = result.area
    assert result.area <= seed.area


def test_lagrangian_baseline(benchmark):
    context = get_context("c432eq", 0.4)

    def run():
        return lagrangian_size(context.dag, context.target)

    result = once(benchmark, run)
    _AREAS["lagrangian"] = result.area
    benchmark.extra_info["area"] = result.area
    assert result.meets_target


def test_minflo_vs_recovery(benchmark):
    context = get_context("c432eq", 0.4)
    seed = context.seed

    def run():
        return minflotransit(context.dag, context.target, x0=seed.x)

    result = once(benchmark, run)
    _AREAS["minflo"] = result.area
    benchmark.extra_info["area"] = result.area
    print()
    if "recovery" in _AREAS:
        tilos = _AREAS["tilos"]
        print(f"  TILOS            area {tilos:10.1f}")
        print(f"  TILOS + recovery area {_AREAS['recovery']:10.1f} "
              f"(-{100 * (1 - _AREAS['recovery'] / tilos):.1f}%)")
        if "lagrangian" in _AREAS:
            print(f"  Lagrangian [8]   area {_AREAS['lagrangian']:10.1f} "
                  f"(-{100 * (1 - _AREAS['lagrangian'] / tilos):.1f}%)")
        print(f"  MINFLOTRANSIT    area {result.area:10.1f} "
              f"(-{100 * (1 - result.area / tilos):.1f}%)")
        # Global redistribution beats (or matches) local slack harvest.
        assert result.area <= _AREAS["recovery"] * 1.02
    if "lagrangian" in _AREAS:
        # Two independent near-exact optimizers agree within 10%.
        assert result.area == pytest.approx(_AREAS["lagrangian"], rel=0.10)
