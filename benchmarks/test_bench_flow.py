"""Ablation benchmark: D-phase solver backends (E-ABL in DESIGN.md).

The paper solves the D-phase with a network simplex [9]; this library
registers four interchangeable solvers (repro.flow.registry).  This
benchmark times one D-phase solve per backend on the same instance and
asserts they agree on the objective — the evidence behind DESIGN.md's
solver-substitution note.  The standalone harness that CI runs (and
that emits BENCH_flow.json) is run_flow_bench.py in this directory.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import get_context
from repro.balancing import balance
from repro.sizing import d_phase

_BACKENDS = ("ssp", "ssp-legacy", "networkx", "scipy")
_GAINS: dict[str, float] = {}


def _instance():
    context = get_context("c432eq", 0.4)
    seed = context.seed
    delays = context.dag.delays(seed.x)
    config = balance(
        context.dag, delays, horizon=context.target, timer=context.timer
    )
    load = delays - context.dag.model.intrinsic
    return context.dag, seed.x, config, -0.25 * load, 0.25 * load


@pytest.mark.parametrize("backend", _BACKENDS)
def test_dphase_backend(benchmark, backend):
    dag, x, config, min_dd, max_dd = _instance()

    def solve():
        return d_phase(dag, x, config, min_dd, max_dd, backend=backend)

    result = benchmark(solve)
    _GAINS[backend] = result.predicted_gain
    benchmark.extra_info["predicted_gain"] = result.predicted_gain
    assert result.predicted_gain >= 0


def test_backends_agree(benchmark):
    def check():
        values = list(_GAINS.values())
        return max(values) - min(values)

    if len(_GAINS) == len(_BACKENDS):
        spread = benchmark(check)
        scale = max(abs(v) for v in _GAINS.values()) or 1.0
        assert spread <= 1e-5 * scale
    else:  # ran standalone: nothing to compare
        benchmark(lambda: None)
