"""Benchmark: phase-runtime scaling (the paper's near-linear claim)."""

from __future__ import annotations

import os

from benchmarks.conftest import once
from repro.experiments.scaling import fit_slopes, format_scaling, run_scaling

_TIER = os.environ.get("REPRO_BENCH_TIER", "smoke")
_WIDTHS = [16, 32, 64, 128] if _TIER == "paper" else [8, 16, 32]


def test_phase_scaling(benchmark):
    points = once(benchmark, run_scaling, _WIDTHS)
    print()
    print(format_scaling(points))
    slopes = fit_slopes(points)
    for phase, slope in slopes.items():
        benchmark.extra_info[f"slope_{phase}"] = slope
        # Near-linear growth: well below quadratic even with Python
        # constant factors on small instances.
        assert slope < 2.0, (phase, slope)
