"""Ablation benchmarks for the design choices DESIGN.md calls out.

* balancing configuration fed to the D-phase (asap / alap / dfs),
* trust-region width alpha,
* TILOS bump batching,
* gate sizing vs true transistor sizing on the same circuit.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import get_context, once
from repro.dag import build_sizing_dag
from repro.generators import ripple_carry_adder
from repro.circuit import map_to_primitives
from repro.sizing import MinfloOptions, TilosOptions, minflotransit, tilos_size
from repro.tech import default_technology
from repro.timing import analyze


@pytest.mark.parametrize("method", ["asap", "alap", "dfs"])
def test_ablation_balancing(benchmark, method):
    context = get_context("c432eq", 0.4)
    options = MinfloOptions(balancing=method)

    def run():
        return minflotransit(
            context.dag, context.target, options, x0=context.seed.x
        )

    result = once(benchmark, run)
    benchmark.extra_info["area"] = result.area
    benchmark.extra_info["iterations"] = result.n_iterations
    assert result.meets_target


@pytest.mark.parametrize("alpha", [0.05, 0.25, 0.5])
def test_ablation_trust_region(benchmark, alpha):
    context = get_context("c432eq", 0.4)
    options = MinfloOptions(alpha=alpha)

    def run():
        return minflotransit(
            context.dag, context.target, options, x0=context.seed.x
        )

    result = once(benchmark, run)
    benchmark.extra_info["area"] = result.area
    benchmark.extra_info["iterations"] = result.n_iterations
    assert result.meets_target


@pytest.mark.parametrize("batch", [1, 4, 16])
def test_ablation_tilos_batch(benchmark, batch):
    context = get_context("c499eq", 0.57)

    def run():
        return tilos_size(
            context.dag,
            context.target,
            TilosOptions(batch=batch),
            timer=context.timer,
        )

    result = once(benchmark, run)
    benchmark.extra_info["area"] = result.area
    benchmark.extra_info["bumps"] = result.iterations
    assert result.feasible


@pytest.mark.parametrize("mode", ["gate", "transistor"])
def test_ablation_sizing_granularity(benchmark, mode):
    """True transistor sizing beats gate sizing on area (more degrees of
    freedom) at the same target — the paper's motivation for the harder
    problem."""
    circuit = map_to_primitives(ripple_carry_adder(4, style="nand"))
    tech = default_technology()
    dag = build_sizing_dag(circuit, tech, mode=mode)
    d_min = analyze(dag, dag.min_sizes()).critical_path_delay

    def run():
        return minflotransit(dag, 0.5 * d_min)

    result = once(benchmark, run)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["normalized_area"] = result.area / dag.area(
        dag.min_sizes()
    )
    assert result.meets_target
