"""Cross-backend parity + performance harness for the flow solvers.

Builds one real D-phase LP per benchmark circuit (TILOS seed, delay
balancing, sensitivity weights — the exact instance the sizing loop
solves every outer iteration), times every registered flow backend on
it, checks that all backends agree on the objective, and emits a
machine-readable ``BENCH_flow.json``.

The JSON is the seed point of the perf trajectory: CI re-runs this
script on the smoke tier and ``check_regression.py`` compares the
*machine-independent* metrics (the ssp-vs-legacy speedup ratio and the
solver work counters) against the committed baseline, so a slow CI
runner cannot produce false alarms but an algorithmic regression fails
the build.

Usage::

    PYTHONPATH=src python benchmarks/run_flow_bench.py \
        [--tier smoke|paper] [--out benchmarks/BENCH_flow.json] \
        [--repeats 3] [--check]

``--check`` additionally enforces the acceptance target: the array
engine must be >= 3x faster than the legacy solver on the largest
smoke-tier circuit.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.balancing import balance  # noqa: E402
from repro.dag import build_sizing_dag  # noqa: E402
from repro.flow.duality import DifferenceConstraintLP  # noqa: E402
from repro.flow.duality import solve_difference_lp  # noqa: E402
from repro.flow.registry import registered_backends  # noqa: E402
from repro.generators.iscas import build_circuit  # noqa: E402
from repro.sizing import tilos_size  # noqa: E402
from repro.sizing.dphase import (  # noqa: E402
    area_sensitivities,
    build_dphase_lp,
)
from repro.tech import default_technology  # noqa: E402
from repro.timing import GraphTimer  # noqa: E402

SCHEMA = "repro-bench-flow/1"
TARGET_SPEEDUP = 3.0


def tier_circuits(tier: str) -> list[tuple[str, float]]:
    """(name, delay spec) rows of the suite for a tier."""
    from repro.generators.iscas import SUITE

    return [
        (spec.name, spec.delay_spec)
        for spec in SUITE
        if tier == "paper" or spec.tier == "smoke"
    ]


def build_dphase_instance(name: str, spec: float) -> DifferenceConstraintLP:
    """The D-phase LP of one sizing iteration on ``name`` at ``spec``."""
    circuit = build_circuit(name)
    dag = build_sizing_dag(circuit, default_technology(), mode="gate")
    timer = GraphTimer(dag)
    d_min = timer.analyze(dag.delays(dag.min_sizes())).critical_path_delay
    target = spec * d_min
    seed = tilos_size(dag, target, timer=timer)
    delays = dag.delays(seed.x)
    config = balance(dag, delays, horizon=target, timer=timer)
    load = delays - dag.model.intrinsic
    min_dd, max_dd = -0.25 * load, 0.25 * load
    sens = area_sensitivities(dag, seed.x)
    span = max(float(np.max(max_dd)), float(config.horizon), 1e-30)
    cost_scale = 10.0 ** (6 - int(np.floor(np.log10(span))))
    weight_scale = 10.0 ** (
        6 - int(np.floor(np.log10(max(float(sens.max()), 1e-30))))
    )
    return build_dphase_lp(
        dag, config, sens, min_dd, max_dd, cost_scale, weight_scale
    )


def bench_circuit(name: str, spec: float, repeats: int) -> dict:
    lp = build_dphase_instance(name, spec)
    entry: dict = {
        "name": name,
        "delay_spec": spec,
        "lp_nodes": lp.n_nodes,
        "lp_constraints": len(lp.constraints),
        "backends": {},
    }
    objectives: dict[str, float] = {}
    for backend in registered_backends():
        if not backend.available():
            continue
        best = float("inf")
        solution = None
        for _ in range(repeats):
            start = time.perf_counter()
            solution = solve_difference_lp(lp, backend=backend.name)
            best = min(best, time.perf_counter() - start)
        assert solution is not None
        stats = solution.stats
        entry["backends"][backend.name] = {
            "wall_s": round(best, 6),
            "objective": solution.objective,
            "augmentations": stats.augmentations,
            "sp_rounds": stats.sp_rounds,
            "dijkstra_pops": stats.dijkstra_pops,
        }
        objectives[backend.name] = solution.objective

    scale = 1.0 + max(abs(v) for v in objectives.values())
    spread = max(objectives.values()) - min(objectives.values())
    entry["objective_spread_rel"] = spread / scale
    entry["parity_ok"] = bool(spread <= 1e-6 * scale)
    times = {k: v["wall_s"] for k, v in entry["backends"].items()}
    if "ssp" in times and "ssp-legacy" in times:
        entry["speedup_ssp_vs_legacy"] = round(
            times["ssp-legacy"] / times["ssp"], 3
        )
    return entry


def run(tier: str, repeats: int) -> dict:
    circuits = tier_circuits(tier)
    results = []
    for name, spec in circuits:
        print(f"[bench] {name} (spec {spec}) ...", flush=True)
        entry = bench_circuit(name, spec, repeats)
        backends = ", ".join(
            f"{k}={v['wall_s'] * 1000:.1f}ms"
            for k, v in entry["backends"].items()
        )
        print(f"[bench]   {backends}", flush=True)
        results.append(entry)

    largest = max(results, key=lambda e: e["lp_constraints"])
    report = {
        "schema": SCHEMA,
        "tier": tier,
        "repeats": repeats,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "circuits": results,
        "summary": {
            "largest_circuit": largest["name"],
            "speedup_ssp_vs_legacy": largest.get("speedup_ssp_vs_legacy"),
            "target_speedup": TARGET_SPEEDUP,
            "meets_target": bool(
                largest.get("speedup_ssp_vs_legacy", 0.0) >= TARGET_SPEEDUP
            ),
            "parity_ok": all(e["parity_ok"] for e in results),
        },
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tier", default=None, choices=["smoke", "paper"],
                        help="circuit tier (default: $REPRO_BENCH_TIER "
                             "or 'smoke')")
    parser.add_argument("--out", default="BENCH_flow.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--check", action="store_true",
                        help="fail unless parity holds and the array "
                             "engine meets the speedup target")
    args = parser.parse_args(argv)

    import os

    tier = args.tier or os.environ.get("REPRO_BENCH_TIER", "smoke")
    report = run(tier, args.repeats)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    summary = report["summary"]
    print(f"[bench] wrote {args.out}")
    print(f"[bench] largest={summary['largest_circuit']} "
          f"speedup={summary['speedup_ssp_vs_legacy']}x "
          f"parity={summary['parity_ok']}")
    if args.check:
        if not summary["parity_ok"]:
            print("[bench] FAIL: backends disagree on objective",
                  file=sys.stderr)
            return 1
        if not summary["meets_target"]:
            print(f"[bench] FAIL: speedup "
                  f"{summary['speedup_ssp_vs_legacy']} < "
                  f"{TARGET_SPEEDUP}x target", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
