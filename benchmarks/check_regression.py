"""Compare a fresh benchmark run against its committed baseline.

Handles every harness document — ``BENCH_flow.json``
(``repro-bench-flow/1``), ``BENCH_sizing.json``
(``repro-bench-sizing/1``), ``BENCH_service.json``
(``repro-bench-service/1``) and ``BENCH_warmstart.json``
(``repro-bench-warmstart/1``); the document schema picks the
comparison.

CI runners differ wildly in raw speed, so absolute wall times are never
compared.  The regression gate uses machine-independent signals only:

* same-process speedup ratios — ``speedup_ssp_vs_legacy`` per circuit
  for the flow document, the scalar-vs-vectorized W-phase and TILOS
  ratios and the batched-campaign throughput ratio for the sizing
  document.  Both sides of each ratio ran on the same machine in the
  same process, so the ratio survives runner changes.  Fails when the
  current ratio drops more than ``--threshold`` (default 20%) below
  the baseline.
* deterministic work counters — flow ``augmentations``/``sp_rounds``,
  sizing W-phase sweep counts and TILOS bump counts; a jump means the
  algorithm got structurally worse even if the runner hides it.
* ``parity_ok`` — backends (flow) or kernels (sizing) must still agree
  on their results; for the service document, cached and cross-replica
  replies must be byte-identical to fresh executions.
* service booleans and counters — ``admission_ok``, warm-phase
  ``cache_hit_rate``, and the cold-phase execution count.

Usage::

    python benchmarks/check_regression.py \
        --baseline benchmarks/BENCH_flow.json --current BENCH_flow.json
    python benchmarks/check_regression.py \
        --baseline benchmarks/BENCH_sizing.json --current BENCH_sizing.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _by_name(report: dict) -> dict[str, dict]:
    return {entry["name"]: entry for entry in report["circuits"]}


def compare(baseline: dict, current: dict, threshold: float) -> list[str]:
    """Return a list of human-readable failures (empty == pass)."""
    failures: list[str] = []
    if not current["summary"]["parity_ok"]:
        failures.append("backend parity broken: objectives disagree")

    base_circuits = _by_name(baseline)
    cur_circuits = _by_name(current)
    for name, base in base_circuits.items():
        cur = cur_circuits.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        base_speedup = base.get("speedup_ssp_vs_legacy")
        cur_speedup = cur.get("speedup_ssp_vs_legacy")
        if base_speedup and cur_speedup:
            floor = base_speedup * (1.0 - threshold)
            if cur_speedup < floor:
                failures.append(
                    f"{name}: ssp speedup regressed "
                    f"{base_speedup:.2f}x -> {cur_speedup:.2f}x "
                    f"(floor {floor:.2f}x)"
                )
        base_ssp = base["backends"].get("ssp")
        cur_ssp = cur["backends"].get("ssp")
        if base_ssp and cur_ssp:
            for counter in ("augmentations", "sp_rounds"):
                ceiling = base_ssp[counter] * (1.0 + threshold) + 8
                if cur_ssp[counter] > ceiling:
                    failures.append(
                        f"{name}: ssp {counter} grew "
                        f"{base_ssp[counter]} -> {cur_ssp[counter]} "
                        f"(ceiling {ceiling:.0f})"
                    )
    return failures


def compare_sizing(baseline: dict, current: dict, threshold: float) -> list[str]:
    """Sizing-kernel regression check (empty list == pass)."""
    failures: list[str] = []
    if not current["summary"]["parity_ok"]:
        for parity in current["summary"].get("parity_failures", []):
            failures.append(f"kernel parity broken: {parity}")
        if not current["summary"].get("parity_failures"):
            failures.append("kernel parity broken")

    base_circuits = _by_name(baseline)
    cur_circuits = _by_name(current)
    for name, base in base_circuits.items():
        cur = cur_circuits.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        for phase in ("w_phase", "tilos"):
            base_speedup = base[phase].get("speedup")
            cur_speedup = cur[phase].get("speedup")
            if base_speedup and cur_speedup:
                floor = base_speedup * (1.0 - threshold)
                if cur_speedup < floor:
                    failures.append(
                        f"{name}: {phase} vectorized speedup regressed "
                        f"{base_speedup:.2f}x -> {cur_speedup:.2f}x "
                        f"(floor {floor:.2f}x)"
                    )
        # Deterministic work counters: more relaxation sweeps or more
        # greedy bumps on the same instance is an algorithmic
        # regression regardless of the runner.
        for phase, counter in (("w_phase", "sweeps"), ("tilos", "bumps")):
            base_value = base[phase][counter]
            value = cur[phase][counter]
            ceiling = base_value * (1.0 + threshold) + 8
            if value > ceiling:
                failures.append(
                    f"{name}: {phase} {counter} grew "
                    f"{base_value} -> {value} (ceiling {ceiling:.0f})"
                )

    # Batched-campaign tier: the throughput ratio is same-process like
    # the kernel speedups, so it gets the same relative floor; a
    # baseline that has the section requires the current run to have it
    # too (a silently dropped tier is itself a regression).
    base_batch = baseline.get("batch")
    cur_batch = current.get("batch")
    if base_batch:
        if not cur_batch:
            failures.append("batch: tier missing from current run")
        else:
            if cur_batch.get("mismatched_payloads"):
                failures.append(
                    f"batch: {cur_batch['mismatched_payloads']} job "
                    f"payload(s) diverge between batched and per-job "
                    f"execution"
                )
            base_ratio = base_batch.get("throughput_ratio")
            cur_ratio = cur_batch.get("throughput_ratio")
            if base_ratio and cur_ratio:
                floor = base_ratio * (1.0 - threshold)
                if cur_ratio < floor:
                    failures.append(
                        f"batch: throughput ratio regressed "
                        f"{base_ratio:.2f}x -> {cur_ratio:.2f}x "
                        f"(floor {floor:.2f}x)"
                    )
            if current["summary"].get("batch_ratio_ok") is False:
                failures.append(
                    f"batch: throughput ratio "
                    f"{current['summary'].get('batch_throughput_ratio')}x "
                    f"is below the absolute "
                    f"{current['summary'].get('target_batch_ratio')}x "
                    f"target"
                )
    return failures


def compare_service(baseline: dict, current: dict, threshold: float) -> list[str]:
    """Service-tier regression check (empty list == pass).

    Gated signals are booleans (parity, admission), deterministic
    counters (cold-phase executions, warm hit rate, flood rejections)
    and the warm-vs-cold throughput ratio.  That ratio mixes compute
    with HTTP/socket overhead, so it is noisier than the pure-kernel
    ratios above — the floor is ``base * (1 - 2*threshold)`` with an
    absolute backstop of 2x, rather than the tight single-threshold
    floor used for compute benchmarks.
    """
    failures: list[str] = []
    base, cur = baseline["summary"], current["summary"]
    if not cur["parity_ok"]:
        failures.append(
            "service parity broken: cached/cross-replica replies "
            "diverge from fresh executions"
        )
    if not cur["admission_ok"]:
        failures.append(
            "admission control broken: flood was not bounded by the "
            "configured burst or 429s lacked Retry-After"
        )
    if cur["cache_hit_rate"] < base["cache_hit_rate"] - 1e-9:
        failures.append(
            f"warm cache-hit rate fell {base['cache_hit_rate']:.2f} -> "
            f"{cur['cache_hit_rate']:.2f}"
        )
    ceiling = base["executed_cold"] * (1.0 + threshold) + 8
    if cur["executed_cold"] > ceiling:
        failures.append(
            f"cold-phase executions grew {base['executed_cold']} -> "
            f"{cur['executed_cold']} (ceiling {ceiling:.0f}) — "
            f"dedup/caching path got structurally worse"
        )
    if not cur.get("trace_overhead_ok", True):
        failures.append(
            f"span instrumentation overhead on the warm path exceeds "
            f"its ceiling (warm p50 ratio "
            f"{cur.get('trace_overhead_ratio', 0.0):.3f}x traced vs "
            f"untraced; gate is 1.05x with a 0.5ms absolute backstop)"
        )
    if not cur.get("fault_overhead_ok", True):
        failures.append(
            f"fault-probe overhead on the warm path exceeds its "
            f"ceiling (warm p50 ratio "
            f"{cur.get('fault_overhead_ratio', 0.0):.3f}x armed vs "
            f"off; gate is 1.05x with a 0.5ms absolute backstop)"
        )
    base_speedup = base.get("speedup_warm_vs_cold")
    cur_speedup = cur.get("speedup_warm_vs_cold")
    if base_speedup and cur_speedup:
        floor = max(2.0, base_speedup * (1.0 - 2.0 * threshold))
        if cur_speedup < floor:
            failures.append(
                f"warm/cold throughput ratio regressed "
                f"{base_speedup:.2f}x -> {cur_speedup:.2f}x "
                f"(floor {floor:.2f}x)"
            )
    return failures


def compare_warmstart(
    baseline: dict, current: dict, threshold: float
) -> list[str]:
    """Warm-start corpus regression check (empty list == pass).

    Bitwise parity of warm vs cold results is the hard contract — any
    divergence fails outright.  The performance gate mirrors the bench
    harness's own acceptance floor (scored-bump reduction >= 30% or
    core wall speedup >= 1.3x; the reduction is a deterministic
    counter, so no runner allowance applies to the floor), plus a
    regression check of the reduction against the committed baseline.
    """
    failures: list[str] = []
    base, cur = baseline["summary"], current["summary"]
    if not cur["parity_ok"]:
        for parity in cur.get("parity_failures", []):
            failures.append(f"warm/cold parity broken: {parity}")
        if not cur.get("parity_failures"):
            failures.append("warm/cold parity broken")
    reduction = cur["iter_reduction"]
    floor = cur.get("target_iter_reduction", 0.30)
    speedup = cur.get("min_core_wall_speedup", 0.0)
    speedup_floor = cur.get("target_wall_speedup", 1.3)
    if reduction < floor and speedup < speedup_floor:
        failures.append(
            f"drift-sweep saving below floor: iteration reduction "
            f"{reduction:.0%} < {floor:.0%} and core wall speedup "
            f"{speedup}x < {speedup_floor}x"
        )
    base_reduction = base.get("iter_reduction")
    if base_reduction:
        regressed_floor = base_reduction * (1.0 - threshold)
        if reduction < regressed_floor:
            failures.append(
                f"iteration reduction regressed {base_reduction:.0%} -> "
                f"{reduction:.0%} (floor {regressed_floor:.0%})"
            )
    base_seeded = base.get("campaign_seeded", 0)
    if cur.get("campaign_seeded", 0) < base_seeded:
        failures.append(
            f"campaign seeded-job count fell {base_seeded} -> "
            f"{cur.get('campaign_seeded', 0)} — retrieval or gating "
            f"got structurally worse"
        )
    return failures


#: Comparison routine per benchmark document schema.
COMPARATORS = {
    "repro-bench-flow/1": compare,
    "repro-bench-sizing/1": compare_sizing,
    "repro-bench-service/1": compare_service,
    "repro-bench-warmstart/1": compare_warmstart,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed relative regression (default 0.20)")
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    current = json.loads(Path(args.current).read_text())
    if baseline.get("schema") != current.get("schema"):
        print(f"[regress] schema mismatch: {baseline.get('schema')} vs "
              f"{current.get('schema')}", file=sys.stderr)
        return 1
    comparator = COMPARATORS.get(baseline.get("schema"))
    if comparator is None:
        print(f"[regress] unknown benchmark schema "
              f"{baseline.get('schema')!r}", file=sys.stderr)
        return 1

    failures = comparator(baseline, current, args.threshold)
    if failures:
        for failure in failures:
            print(f"[regress] FAIL: {failure}", file=sys.stderr)
        return 1
    print("[regress] OK: no benchmark regression "
          f"(threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
