"""Sizing-kernel benchmark: scalar vs vectorized W-phase and TILOS.

Measures the two sizing-phase kernels this library provides (see
``src/repro/sizing/kernels.py``) on the same instance, in the same
process, so the scalar/vectorized ratios survive CI runner changes the
way the flow benchmark's ssp-vs-legacy ratio does:

* **W-phase SMP relaxation** — ``w_phase`` with ``engine="scalar"``
  (per-vertex Gauss-Seidel) vs ``engine="vectorized"`` (level-blocked
  CSR kernel) on identical budgets; best-of-3 wall times, and the
  results are asserted identical (same sweep count, same clamped set,
  sizes equal to 1e-9).

* **TILOS sensitivity kernel** — a full greedy run per kernel at the
  circuit's delay spec; wall time, bump count and bump throughput,
  plus the kernel's scan/refresh split.  Bump sequences must agree
  exactly (same iteration count, final sizes equal to 1e-9).

* **End-to-end W/D iterations** — ``minflotransit`` replayed from the
  same TILOS seed with each W-phase kernel (a few iterations); the
  per-phase wall-time split shows how much of an iteration the W-phase
  is before/after vectorization.

* **Batched campaign tier** — a 200-job ``wphase`` campaign (20 small
  circuits x 10 delay specs) run twice: the per-job loop vs
  ``batch=True`` (one stacked kernel call per compatible group, see
  ``src/repro/sizing/batch.py``).  Per-job payloads must be
  byte-identical after stripping wall-clock fields; the throughput
  ratio is the gated signal.

The structural speedup depends on level width: wide DAGs (the array
multiplier, shallow random logic) relax hundreds of vertices per numpy
call, while a ripple-carry adder is almost serial (its dependency
levels hold a handful of vertices), which bounds any blocked kernel —
the benchmark includes both shapes on purpose.  The committed
``benchmarks/BENCH_sizing.json`` is the regression baseline for
``check_regression.py``; the acceptance gate (``--check``) requires
parity everywhere, a >= 3x vectorized W-phase speedup on the
largest benchmarked circuit, and a >= 3x batched-campaign throughput
ratio.

Usage::

    PYTHONPATH=src python benchmarks/run_sizing_bench.py \
        [--tier smoke|paper] [--out benchmarks/BENCH_sizing.json] \
        [--iterations 6] [--check]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dag import build_sizing_dag  # noqa: E402
from repro.generators import build_circuit, ripple_carry_adder  # noqa: E402
from repro.generators.multipliers import array_multiplier  # noqa: E402
from repro.generators.random_logic import random_logic  # noqa: E402
from repro.sizing import (  # noqa: E402
    MinfloOptions,
    TilosOptions,
    minflotransit,
    tilos_size,
    w_phase,
)
from repro.sizing.kernels import get_smp_plan  # noqa: E402
from repro.tech import default_technology  # noqa: E402
from repro.timing import GraphTimer  # noqa: E402

SCHEMA = "repro-bench-sizing/1"
TARGET_W_SPEEDUP = 3.0
#: Required throughput ratio of the batched campaign over the per-job
#: loop on the 200-small-job sweep (both sides same process/machine).
BATCH_TARGET_RATIO = 3.0
PARITY_ATOL = 1e-9
KERNELS = ("scalar", "vectorized")


def tier_circuits(tier: str) -> list[dict]:
    """The benchmarked instances: suite rows, rca:N, wide synthetics."""
    smoke = [
        {"name": "c432eq", "build": lambda: build_circuit("c432eq"),
         "spec": 0.5, "iterations": True},
        {"name": "c880eq", "build": lambda: build_circuit("c880eq"),
         "spec": 0.5, "iterations": True},
        # Deep and narrow: dependency levels hold ~5 vertices, the
        # worst case for any blocked kernel (kept honest on purpose).
        {"name": "rca:64",
         "build": lambda: ripple_carry_adder(64, style="nand"),
         "spec": 0.6, "iterations": True},
        # Wide and shallow: hundreds of vertices per level, the shape
        # the vectorized kernels exist for.  Largest smoke instance.
        {"name": "rand4k",
         "build": lambda: random_logic(
             4000, n_inputs=64, n_outputs=32, seed=7, locality=512),
         "spec": 0.7, "iterations": False},
    ]
    if tier != "paper":
        return smoke
    return smoke + [
        {"name": "mult16", "build": lambda: array_multiplier(16),
         "spec": 0.55, "iterations": False},
        {"name": "rca:256",
         "build": lambda: ripple_carry_adder(256, style="nand"),
         "spec": 0.6, "iterations": False},
    ]


def _best_of(fn, repeats: int = 3) -> float:
    """Minimum wall time over ``repeats`` runs of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_w_phase(dag, failures: list[str], name: str) -> dict:
    """Scalar vs vectorized W-phase on identical budgets."""
    x_ref = dag.min_sizes() * 2.0
    budgets = dag.delays(x_ref)
    get_smp_plan(dag)  # build (and time-exclude) the cached level plan
    results = {k: w_phase(dag, budgets, engine=k) for k in KERNELS}
    times = {
        k: _best_of(lambda k=k: w_phase(dag, budgets, engine=k))
        for k in KERNELS
    }
    scalar, vectorized = results["scalar"], results["vectorized"]
    size_gap = float(np.max(np.abs(scalar.x - vectorized.x)))
    if size_gap > PARITY_ATOL:
        failures.append(f"{name}: W-phase sizes diverge by {size_gap:.3g}")
    if scalar.sweeps != vectorized.sweeps:
        failures.append(
            f"{name}: W-phase sweep counts diverge "
            f"({scalar.sweeps} vs {vectorized.sweeps})"
        )
    if scalar.clamped != vectorized.clamped:
        failures.append(f"{name}: W-phase clamped sets diverge")
    plan = get_smp_plan(dag)
    return {
        "sweeps": scalar.sweeps,
        "n_levels": plan.n_levels,
        "max_size_gap": size_gap,
        "scalar_seconds": round(times["scalar"], 6),
        "vectorized_seconds": round(times["vectorized"], 6),
        "speedup": round(times["scalar"] / times["vectorized"], 3),
    }


def bench_tilos(dag, target, failures, name) -> tuple[dict, object]:
    """Scalar vs vectorized TILOS kernels; returns (entry, seed run)."""
    runs = {
        k: tilos_size(dag, target, TilosOptions(kernel=k)) for k in KERNELS
    }
    scalar, vectorized = runs["scalar"], runs["vectorized"]
    if scalar.iterations != vectorized.iterations:
        failures.append(
            f"{name}: TILOS bump counts diverge "
            f"({scalar.iterations} vs {vectorized.iterations})"
        )
    size_gap = float(np.max(np.abs(scalar.x - vectorized.x)))
    if size_gap > PARITY_ATOL:
        failures.append(f"{name}: TILOS sizes diverge by {size_gap:.3g}")
    entry: dict = {"feasible": scalar.feasible, "bumps": scalar.iterations,
                   "max_size_gap": size_gap}
    for kernel, run in runs.items():
        entry[kernel] = {
            "seconds": round(run.runtime_seconds, 6),
            "bumps_per_second": round(
                run.iterations / run.runtime_seconds, 1
            ) if run.runtime_seconds > 0 else 0.0,
            "scan_seconds": round(
                run.timing_stats.get("scan_seconds", 0.0), 6),
            "refresh_seconds": round(
                run.timing_stats.get("refresh_seconds", 0.0), 6),
        }
    entry["speedup"] = round(
        scalar.runtime_seconds / vectorized.runtime_seconds, 3
    ) if vectorized.runtime_seconds > 0 else 0.0
    return entry, vectorized


def bench_iterations(
    dag, target: float, seed_x, iterations: int,
    failures: list[str], name: str,
) -> dict:
    """End-to-end W/D alternation from one seed, per W-phase kernel."""
    entry: dict = {"iterations": iterations}
    areas = {}
    for kernel in KERNELS:
        options = MinfloOptions(kernel=kernel, max_iterations=iterations)
        start = time.perf_counter()
        result = minflotransit(dag, target, options, x0=seed_x)
        wall = time.perf_counter() - start
        areas[kernel] = result.area
        entry[kernel] = {
            "seconds": round(wall, 6),
            "per_iteration_seconds": round(
                wall / max(result.n_iterations, 1), 6),
            "area": result.area,
            "w_sweeps": result.w_sweeps_total,
            "phase_seconds": {
                phase: round(seconds, 6)
                for phase, seconds in result.phase_seconds.items()
            },
        }
    gap = abs(areas["scalar"] - areas["vectorized"])
    if gap > 1e-6 * (1.0 + abs(areas["scalar"])):
        failures.append(
            f"{name}: end-to-end areas diverge by {gap:.3g} across kernels"
        )
    return entry


def bench_circuit(spec: dict, iterations: int, failures: list[str]) -> dict:
    """All three measurements for one benchmark instance."""
    circuit = spec["build"]()
    dag = build_sizing_dag(circuit, default_technology(), mode="gate")
    timer = GraphTimer(dag)
    d_min = timer.analyze(dag.delays(dag.min_sizes())).critical_path_delay
    target = spec["spec"] * d_min

    entry: dict = {
        "name": spec["name"],
        "delay_spec": spec["spec"],
        "n_vertices": dag.n,
        "n_edges": dag.n_edges,
        "w_phase": bench_w_phase(dag, failures, spec["name"]),
    }
    tilos_entry, seed = bench_tilos(dag, target, failures, spec["name"])
    entry["tilos"] = tilos_entry
    if spec["iterations"] and seed.feasible:
        entry["minflo"] = bench_iterations(
            dag, target, seed.x, iterations, failures, spec["name"]
        )
    return entry


def bench_batch(failures: list[str]) -> dict:
    """Batched vs per-job execution of a 200-small-job wphase campaign.

    Both sides run the identical job list with the cache disabled (the
    comparison is pure execution, not replay).  The per-job loop pays
    circuit resolution + DAG build + plan analysis + one kernel
    invocation *per job*; the batched strategy shares one context per
    distinct circuit and one stacked relaxation per compatible group.
    Byte-identity of every per-job payload (wall-clock fields
    stripped) is asserted into ``failures`` — a faster-but-different
    batch is a bug, not a win.
    """
    from repro.runner import run_campaign
    from repro.runner.spec import CampaignSpec
    from repro.sizing.serialize import canonical_json, comparable_payload

    spec = CampaignSpec(
        name="batch-bench",
        circuits=("c17",) + tuple(f"rca:{n}" for n in range(2, 21)),
        delay_specs=tuple(round(0.55 + 0.05 * i, 2) for i in range(10)),
        kind="wphase",
    )
    n_jobs = len(spec.jobs())
    start = time.perf_counter()
    loop = run_campaign(spec, cache=None)
    loop_seconds = time.perf_counter() - start
    start = time.perf_counter()
    batched = run_campaign(spec, cache=None, batch=True)
    batch_seconds = time.perf_counter() - start

    mismatched = 0
    for a, b in zip(loop.outcomes, batched.outcomes):
        same = a.status == b.status and canonical_json(
            comparable_payload(a.payload)
        ) == canonical_json(comparable_payload(b.payload))
        if not same:
            mismatched += 1
            if mismatched <= 3:
                failures.append(
                    f"batch: {a.job.label()} diverges from the per-job loop"
                )
    if mismatched > 3:
        failures.append(f"batch: {mismatched} divergent jobs in total")
    stacked = [o for o in batched.outcomes if o.batch_size]
    ratio = loop_seconds / batch_seconds if batch_seconds > 0 else 0.0
    return {
        "n_jobs": n_jobs,
        "n_circuits": len(spec.circuits),
        "loop_seconds": round(loop_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        "throughput_ratio": round(ratio, 3),
        "batched_jobs": len(stacked),
        "batched_solve_seconds": round(
            stacked[0].batched_seconds, 6
        ) if stacked else 0.0,
        "statuses": batched.counts(),
        "mismatched_payloads": mismatched,
    }


def run(tier: str, iterations: int) -> dict:
    """Benchmark every tier instance; returns the report document."""
    failures: list[str] = []
    circuits = []
    for spec in tier_circuits(tier):
        print(f"[bench] {spec['name']} (spec {spec['spec']}) ...",
              flush=True)
        entry = bench_circuit(spec, iterations, failures)
        print(
            f"[bench]   w-phase {entry['w_phase']['speedup']}x over "
            f"{entry['w_phase']['n_levels']} levels; tilos "
            f"{entry['tilos']['speedup']}x over "
            f"{entry['tilos']['bumps']} bumps",
            flush=True,
        )
        circuits.append(entry)

    print("[bench] batch campaign (200 wphase jobs) ...", flush=True)
    batch = bench_batch(failures)
    print(
        f"[bench]   batched {batch['throughput_ratio']}x over "
        f"{batch['n_jobs']} jobs "
        f"({batch['loop_seconds']:.2f}s -> {batch['batch_seconds']:.2f}s)",
        flush=True,
    )

    largest = max(circuits, key=lambda e: e["n_vertices"])
    return {
        "schema": SCHEMA,
        "tier": tier,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "circuits": circuits,
        "batch": batch,
        "summary": {
            "largest_circuit": largest["name"],
            "largest_w_speedup": largest["w_phase"]["speedup"],
            "target_w_speedup": TARGET_W_SPEEDUP,
            "w_speedup_ok": bool(
                largest["w_phase"]["speedup"] >= TARGET_W_SPEEDUP
            ),
            "batch_jobs": batch["n_jobs"],
            "batch_throughput_ratio": batch["throughput_ratio"],
            "target_batch_ratio": BATCH_TARGET_RATIO,
            "batch_ratio_ok": bool(
                batch["throughput_ratio"] >= BATCH_TARGET_RATIO
            ),
            "parity_ok": not failures,
            "parity_failures": failures,
        },
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; writes the report and applies ``--check``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tier", default=None, choices=["smoke", "paper"],
                        help="circuit tier (default: $REPRO_BENCH_TIER "
                             "or 'smoke')")
    parser.add_argument("--out", default="BENCH_sizing.json")
    parser.add_argument("--iterations", type=int, default=6,
                        help="W/D iterations for the end-to-end replay")
    parser.add_argument("--check", action="store_true",
                        help="fail unless parity holds and the largest "
                             "circuit meets the W-phase speedup target")
    args = parser.parse_args(argv)

    tier = args.tier or os.environ.get("REPRO_BENCH_TIER", "smoke")
    report = run(tier, args.iterations)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    summary = report["summary"]
    print(f"[bench] wrote {args.out}")
    print(
        f"[bench] largest circuit {summary['largest_circuit']}: "
        f"w-phase {summary['largest_w_speedup']}x "
        f"(target >= {TARGET_W_SPEEDUP}x); batch "
        f"{summary['batch_throughput_ratio']}x over "
        f"{summary['batch_jobs']} jobs "
        f"(target >= {BATCH_TARGET_RATIO}x); parity "
        f"{'ok' if summary['parity_ok'] else 'BROKEN'}"
    )
    if args.check:
        if not summary["parity_ok"]:
            for failure in summary["parity_failures"]:
                print(f"[bench] FAIL: {failure}", file=sys.stderr)
            return 1
        if not summary["w_speedup_ok"]:
            print(
                f"[bench] FAIL: vectorized W-phase speedup "
                f"{summary['largest_w_speedup']}x on "
                f"{summary['largest_circuit']} is below the "
                f"{TARGET_W_SPEEDUP}x target", file=sys.stderr,
            )
            return 1
        if not summary["batch_ratio_ok"]:
            print(
                f"[bench] FAIL: batched campaign throughput "
                f"{summary['batch_throughput_ratio']}x over "
                f"{summary['batch_jobs']} jobs is below the "
                f"{BATCH_TARGET_RATIO}x target", file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
