"""Warm-start corpus benchmark: drifting-target sweeps, warm vs cold.

Realistic service traffic is dominated by *near-repeats* — the same
circuit re-sized at a slowly drifting delay target — which the exact
result cache (PR 3/6) cannot serve (every target is a distinct key).
The warm-start corpus (``src/repro/runner/corpus.py``) retrieves the
nearest prior solution instead and replays its TILOS bump trajectory,
so only the *incremental* bumps pay the sensitivity scan.  This
benchmark measures that saving on tightening-target sweeps and asserts
the feature's core contract: warm-started final sizes are **bitwise
identical** to cold runs, everywhere.

Two layers are measured per circuit:

* **Core TILOS replay** — the drift sequence run cold (every target
  from minimum sizes) and warm (each run seeded by its predecessor's
  recorded trajectory, exactly what the corpus stores).  The gated
  signal is deterministic: *scored bumps* — greedy iterations that
  actually paid a sensitivity scan (``iterations - replayed``) —
  summed over the sweep, versus the cold total.  Bitwise parity of
  sizes, traces and bump sequences is asserted per step.

* **End-to-end campaign jobs** — the same sweep as ``sizing`` jobs
  through :func:`repro.runner.executor.run_one` twice: corpus off vs
  a real disk-backed corpus (probe → seed → stage, the production
  path).  Payloads must be byte-identical after stripping wall-clock
  fields; warm wall time and seeded-job counts are reported, and every
  job emits one JSONL record (``--jsonl``) for the CI artifact.

Wall-clock speedups vary with runner load; the scored-bump reduction
does not, which is why the acceptance gate (``--check``) is
``iter_reduction >= 30%`` OR ``wall_speedup >= 1.3x`` — the committed
``benchmarks/BENCH_warmstart.json`` is the regression baseline for
``check_regression.py``, which enforces the same floor plus bitwise
parity.

Usage::

    PYTHONPATH=src python benchmarks/run_warmstart_bench.py \
        [--tier smoke|paper] [--out benchmarks/BENCH_warmstart.json] \
        [--jsonl warmstart_sweep.jsonl] [--check]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dag import build_sizing_dag  # noqa: E402
from repro.generators import build_circuit, ripple_carry_adder  # noqa: E402
from repro.runner.cache import ResultCache  # noqa: E402
from repro.runner.executor import run_one  # noqa: E402
from repro.runner.spec import Job  # noqa: E402
from repro.sizing.fingerprint import dag_digest  # noqa: E402
from repro.sizing.serialize import (  # noqa: E402
    canonical_json,
    comparable_payload,
)
from repro.sizing.tilos import TilosOptions, tilos_size  # noqa: E402
from repro.tech import default_technology  # noqa: E402
from repro.timing import GraphTimer  # noqa: E402

SCHEMA = "repro-bench-warmstart/1"
#: Acceptance floor on scored-bump reduction over the drift sweep
#: (deterministic: survives CI runner changes).
TARGET_ITER_REDUCTION = 0.30
#: Alternative acceptance floor on core warm-vs-cold wall time.
TARGET_WALL_SPEEDUP = 1.3
#: Tightening delay-spec sequence (fractions of the min-size critical
#: path): each target is below its predecessor, so the donor trajectory
#: is a replayable prefix and only the increment pays the scan.
DRIFT_SPECS = (0.96, 0.94, 0.92, 0.90, 0.88)


def tier_circuits(tier: str) -> list[dict]:
    """Benchmarked instances: suite rows plus a deep-narrow adder."""
    smoke = [
        {"name": "c432eq", "build": lambda: build_circuit("c432eq")},
        {"name": "c499eq", "build": lambda: build_circuit("c499eq")},
        {"name": "rca:64",
         "build": lambda: ripple_carry_adder(64, style="nand")},
    ]
    if tier != "paper":
        return smoke
    return smoke + [
        {"name": "c880eq", "build": lambda: build_circuit("c880eq")},
        {"name": "c1355eq", "build": lambda: build_circuit("c1355eq")},
    ]


def _record_for(dag, options: TilosOptions, run) -> dict:
    """A donor record shaped like the corpus stores (trajectory only)."""
    return {
        "kind": "sizing",
        "options": asdict(options),
        "dag_sha": dag_digest(dag),
        "data": {"bumps": run.bumps, "trace": run.trace},
    }


def bench_core(spec: dict, failures: list[str]) -> dict:
    """Cold vs trajectory-seeded TILOS over one drifting-target sweep."""
    name = spec["name"]
    circuit = spec["build"]()
    dag = build_sizing_dag(circuit, default_technology(), mode="gate")
    timer = GraphTimer(dag)
    d_min = timer.analyze(dag.delays(dag.min_sizes())).critical_path_delay
    options = TilosOptions()
    targets = [frac * d_min for frac in DRIFT_SPECS]

    cold_runs = []
    start = time.perf_counter()
    for target in targets:
        cold_runs.append(tilos_size(dag, target, options, keep_trace=True))
    cold_seconds = time.perf_counter() - start

    warm_scored: list[int] = []
    warm_replayed: list[int] = []
    seeded = 0
    donor: dict | None = None
    start = time.perf_counter()
    for step, target in enumerate(targets):
        run = tilos_size(
            dag, target, options, keep_trace=True, warm=donor
        )
        info = run.warm or {}
        replayed = int(info.get("replayed") or 0)
        if info.get("result") == "seeded" and donor is not None:
            seeded += 1
        elif donor is not None:
            failures.append(
                f"{name}@{DRIFT_SPECS[step]:g}: warm seed rejected "
                f"({info.get('reason', 'no info')})"
            )
        warm_replayed.append(replayed)
        warm_scored.append(run.iterations - replayed)
        cold = cold_runs[step]
        if not (
            np.array_equal(cold.x, run.x)
            and cold.trace == run.trace
            and cold.bumps == run.bumps
        ):
            failures.append(
                f"{name}@{DRIFT_SPECS[step]:g}: warm result diverges "
                f"from cold bitwise"
            )
        donor = _record_for(dag, options, run)
    warm_seconds = time.perf_counter() - start

    cold_total = sum(run.iterations for run in cold_runs)
    scored_total = sum(warm_scored)
    reduction = (
        1.0 - scored_total / cold_total if cold_total else 0.0
    )
    return {
        "name": name,
        "n_vertices": dag.n,
        "delay_specs": list(DRIFT_SPECS),
        "cold_iterations": [run.iterations for run in cold_runs],
        "warm_scored": warm_scored,
        "warm_replayed": warm_replayed,
        "seeded_runs": seeded,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "iter_reduction": round(reduction, 4),
        "wall_speedup": round(
            cold_seconds / warm_seconds if warm_seconds > 0 else 0.0, 3
        ),
    }


def bench_campaign(
    tier: str, failures: list[str], jsonl: Path | None
) -> dict:
    """The same sweep as end-to-end jobs: corpus off vs a real corpus."""
    names = [spec["name"] for spec in tier_circuits(tier)]
    jobs = [
        Job(circuit=name, delay_spec=frac)
        for name in names
        for frac in DRIFT_SPECS
    ]
    records: list[dict] = []

    with tempfile.TemporaryDirectory(prefix="repro-warm-bench-") as tmp:
        cold_cache = ResultCache(Path(tmp) / "cold")
        start = time.perf_counter()
        cold = [run_one(job, cold_cache) for job in jobs]
        cold_seconds = time.perf_counter() - start

        corpus_spec = f"disk:{Path(tmp) / 'warm'}"
        warm_cache = ResultCache(corpus_spec)
        start = time.perf_counter()
        warm = [
            run_one(job, warm_cache, warm=corpus_spec) for job in jobs
        ]
        warm_seconds = time.perf_counter() - start

    seeded = fallback = 0
    for job, a, b in zip(jobs, cold, warm):
        parity = canonical_json(
            comparable_payload(a.payload or {})
        ) == canonical_json(comparable_payload(b.payload or {}))
        if not (parity and a.status == b.status):
            failures.append(
                f"{job.label()}: warm campaign payload diverges from cold"
            )
        seeded += int(b.warm_seeded)
        fallback += int(b.warm_fallback)
        records.append({
            "label": job.label(),
            "status": b.status,
            "warm_hit": b.warm_hit,
            "warm_seeded": b.warm_seeded,
            "warm_fallback": b.warm_fallback,
            "cold_wall_s": round(a.wall_seconds, 6),
            "warm_wall_s": round(b.wall_seconds, 6),
            "parity_ok": parity,
        })
    if jsonl is not None:
        with open(jsonl, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
    return {
        "n_jobs": len(jobs),
        "seeded_jobs": seeded,
        "fallback_jobs": fallback,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "wall_speedup": round(
            cold_seconds / warm_seconds if warm_seconds > 0 else 0.0, 3
        ),
    }


def run(tier: str, jsonl: Path | None) -> dict:
    """The full benchmark document for one tier."""
    failures: list[str] = []
    circuits = []
    for spec in tier_circuits(tier):
        entry = bench_core(spec, failures)
        circuits.append(entry)
        print(
            f"[bench] {entry['name']}: "
            f"{sum(entry['cold_iterations'])} cold bumps -> "
            f"{sum(entry['warm_scored'])} scored warm "
            f"({entry['iter_reduction']:.0%} reduction, "
            f"wall {entry['wall_speedup']}x)",
            flush=True,
        )
    campaign = bench_campaign(tier, failures, jsonl)
    print(
        f"[bench] campaign: {campaign['seeded_jobs']}/"
        f"{campaign['n_jobs']} jobs seeded, "
        f"wall {campaign['wall_speedup']}x",
        flush=True,
    )
    cold_total = sum(sum(e["cold_iterations"]) for e in circuits)
    scored_total = sum(sum(e["warm_scored"]) for e in circuits)
    reduction = 1.0 - scored_total / cold_total if cold_total else 0.0
    core_speedup = min(e["wall_speedup"] for e in circuits)
    return {
        "schema": SCHEMA,
        "tier": tier,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "drift_specs": list(DRIFT_SPECS),
        "circuits": circuits,
        "campaign": campaign,
        "summary": {
            "cold_iterations": cold_total,
            "warm_scored": scored_total,
            "iter_reduction": round(reduction, 4),
            "target_iter_reduction": TARGET_ITER_REDUCTION,
            "min_core_wall_speedup": core_speedup,
            "target_wall_speedup": TARGET_WALL_SPEEDUP,
            "gate_ok": bool(
                reduction >= TARGET_ITER_REDUCTION
                or core_speedup >= TARGET_WALL_SPEEDUP
            ),
            "campaign_seeded": campaign["seeded_jobs"],
            "parity_ok": not failures,
            "parity_failures": failures,
        },
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; writes the report and applies ``--check``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tier", default=None, choices=["smoke", "paper"],
                        help="circuit tier (default: $REPRO_BENCH_TIER "
                             "or 'smoke')")
    parser.add_argument("--out", default="BENCH_warmstart.json")
    parser.add_argument("--jsonl", default="warmstart_sweep.jsonl",
                        help="per-job sweep records (CI artifact); "
                             "'' disables")
    parser.add_argument("--check", action="store_true",
                        help="fail unless parity holds and the sweep "
                             "meets the iteration-reduction or "
                             "wall-speedup floor")
    args = parser.parse_args(argv)

    tier = args.tier or os.environ.get("REPRO_BENCH_TIER", "smoke")
    jsonl = Path(args.jsonl) if args.jsonl else None
    report = run(tier, jsonl)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    summary = report["summary"]
    print(f"[bench] wrote {args.out}")
    print(
        f"[bench] sweep: {summary['cold_iterations']} cold bumps -> "
        f"{summary['warm_scored']} scored warm "
        f"({summary['iter_reduction']:.0%} reduction, floor "
        f"{TARGET_ITER_REDUCTION:.0%}); parity "
        f"{'ok' if summary['parity_ok'] else 'BROKEN'}"
    )
    if args.check:
        if not summary["parity_ok"]:
            for failure in summary["parity_failures"]:
                print(f"[bench] FAIL: {failure}", file=sys.stderr)
            return 1
        if not summary["gate_ok"]:
            print(
                f"[bench] FAIL: iteration reduction "
                f"{summary['iter_reduction']:.0%} is below "
                f"{TARGET_ITER_REDUCTION:.0%} and core wall speedup "
                f"{summary['min_core_wall_speedup']}x is below "
                f"{TARGET_WALL_SPEEDUP}x", file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
