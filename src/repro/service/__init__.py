"""Sizing-as-a-service: the campaign pipeline behind a JSON HTTP API.

MINFLOTRANSIT's fast W/D alternation makes sizing cheap enough to be
*query-shaped*: a long-lived process with a warm content-addressed
cache can answer "size this netlist to this target" interactively
instead of batch-only.  This package is that process:

* :mod:`repro.service.app` — :class:`SizingService`: request
  validation into campaign :class:`~repro.runner.spec.Job` records,
  cache probe/store, bounded worker pool.  One execution path shared
  with ``python -m repro campaign`` (see
  :func:`repro.runner.executor.run_one`), so service answers are
  byte-identical to CLI answers.
* :mod:`repro.service.server` — the stdlib ``ThreadingHTTPServer``
  front end (``POST /v1/size``, ``GET /v1/jobs/<id>``, discovery,
  health, stats) and :func:`serve`, the ``python -m repro serve``
  entry point.
* :mod:`repro.service.jobs` — the job registry with its
  restart-surviving ``service.jsonl`` append log.
* :mod:`repro.service.client` — the stdlib client used by the tests,
  CI and ``examples/query_service.py``.

No dependencies beyond the standard library are introduced; every
scaling follow-up (sharding, rate limiting, multi-tenant caching)
layers onto this surface.
"""

from repro.service.app import SizingService, build_job
from repro.service.client import ServiceClient
from repro.service.jobs import JobRecord, JobStore
from repro.service.server import (
    WIRE_SCHEMA,
    SizingHTTPServer,
    make_server,
    serve,
)

__all__ = [
    "JobRecord",
    "JobStore",
    "ServiceClient",
    "SizingHTTPServer",
    "SizingService",
    "WIRE_SCHEMA",
    "build_job",
    "make_server",
    "serve",
]
