"""The sizing service core: request validation, job admission, execution.

:class:`SizingService` exposes the existing campaign pipeline as a
long-lived, concurrent request/response engine.  It owns no sizing
logic of its own — a request is validated into the same frozen
:class:`~repro.runner.spec.Job` a campaign would expand, keyed with the
same content-addressed fingerprint, probed against the same
:class:`~repro.runner.cache.ResultCache`, and executed through the same
:func:`~repro.runner.executor.pool_entry` wrapper (failure isolation +
per-job wall-time budget).  That single shared execution path is the
service's core guarantee: a ``POST /v1/size`` returns results
byte-identical to ``python -m repro size`` / ``campaign run`` for the
same (netlist, technology, options), and repeated requests are cache
hits.

Concurrency model: with ``jobs=1`` and no per-job timeout (the
default) requests execute on one dedicated worker *thread* —
serialized, deterministic, and cheap to start, which is what the
tests use.  With ``jobs>1`` — or whenever a ``timeout`` is configured,
since the ``SIGALRM`` budget can only be armed on a process's main
thread — they run on a ``ProcessPoolExecutor``
(``forkserver``/``spawn`` start method, so the threaded HTTP parent
never fork-copies its own locks), giving true parallel sizing bounded
at ``jobs`` workers.  In both cases the HTTP layer may accept
arbitrarily many concurrent requests; the pool is the backpressure.

Fleet mode: given a ``queue`` database
(:class:`~repro.service.queue.WorkQueue`), this service becomes one
replica of many.  Submissions *enqueue* — into a durable, shared job
stream — and ``jobs`` drain threads lease work from that stream
(leasing + visibility timeout, so a crashed replica's jobs are
re-claimed), execute it on the local pool, and publish results through
the shared store and cache backend.  Any replica answers for any job.
Admission control (:class:`~repro.service.admission.AdmissionController`)
bounds the shared backlog and rate-limits individual clients in both
modes; cache hits bypass admission, because replaying a stored result
consumes no worker.

Observability (:mod:`repro.obs`): every service counter lives in a
locked :class:`~repro.obs.metrics.MetricsRegistry` — ``/v1/stats`` and
the Prometheus exposition at ``/v1/metrics`` are two views over the
same registry, so they can never disagree.  With tracing enabled
(default), each request runs in a trace context: submission spans
(``service.admit``, ``cache.probe``) land in the run directory's
``trace.jsonl``, worker-side solver spans ship back through the result
tuples, and in queue mode the row carries ``trace_id-root_span_id``
so whichever replica drains the job parents its ``queue.wait`` and
execution spans under the submitter's root — one trace id end to end.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import shutil
import socket
import tempfile
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from contextlib import nullcontext
from dataclasses import replace
from pathlib import Path
from typing import Iterator

from repro.circuit.bench_io import loads_bench
from repro.errors import ReproError, ServiceError
from repro.faults.injector import active as active_faults
from repro.faults.injector import install as install_faults
from repro.faults.injector import observe_faults
from repro.flow.registry import get_backend
from repro.obs.metrics import MetricsRegistry, get_registry, observe_spans
from repro.obs.trace import (
    SpanSink,
    current_carrier,
    current_trace,
    format_trace_header,
    new_span_id,
    span,
    trace_scope,
)
from repro.runner import DEFAULT_CACHE_DIR
from repro.runner.cache import ResultCache, job_key, netlist_digest
from repro.runner.corpus import warmstart_counts
from repro.runner.executor import (
    JobOutcome,
    apply_warm,
    batch_entry,
    batch_groups,
    pool_entry,
    probe_cache,
    store_outcome,
)
from repro.runner.spec import Job, normalize_options
from repro.service.admission import AdmissionController
from repro.service.jobs import JOB_STATUSES, JobRecord, JobStore
from repro.service.queue import MAX_ATTEMPTS, WorkQueue

__all__ = ["SizingService", "build_job"]

#: Request-body keys ``POST /v1/size`` understands.  Unknown keys are a
#: 400, not a silent default — a typo like ``"dela_spec"`` must never
#: quietly size at 0.5.
_REQUEST_FIELDS = frozenset((
    "circuit", "bench", "delay_spec", "kind", "mode", "flow_backend",
    "options", "async",
))

#: Job kinds the service accepts.  ``phases`` is excluded on purpose:
#: its payloads are wall-clock measurements, meaningless on a shared
#: service host and never cacheable.
_SERVICE_KINDS = ("sizing", "wphase")


def _require(condition: bool, message: str) -> None:
    """Raise a 400-grade :class:`ServiceError` unless ``condition``."""
    if not condition:
        raise ServiceError(message, status=400)


def build_job(body: dict, netlist_dir: Path | None = None) -> Job:
    """Validate a ``/v1/size`` request body into a campaign :class:`Job`.

    Exactly one of ``circuit`` (a campaign circuit token: suite name,
    ``rca:N``, or a server-side ``.bench`` path) and ``bench`` (inline
    ``.bench`` netlist text) must be present.  Inline netlists are
    parsed up front (so malformed text is a 400, not a failed job) and
    spooled content-addressed into ``netlist_dir`` — identical bodies
    produce the identical token, hence the identical cache key.

    Every validation failure raises :class:`ServiceError` with
    ``status=400`` and a message naming the offending field.
    """
    _require(isinstance(body, dict), "request body must be a JSON object")
    unknown = sorted(set(body) - _REQUEST_FIELDS)
    _require(
        not unknown,
        f"unknown request field(s) {unknown}; "
        f"valid: {sorted(_REQUEST_FIELDS)}",
    )

    circuit = body.get("circuit")
    bench = body.get("bench")
    _require(
        (circuit is None) != (bench is None),
        "exactly one of 'circuit' (a token) and 'bench' (inline netlist "
        "text) is required",
    )
    if bench is not None:
        _require(
            isinstance(bench, str) and bench.strip() != "",
            "'bench' must be non-empty .bench netlist text",
        )
        _require(
            netlist_dir is not None,
            "this service does not accept inline netlists",
        )
        try:
            loads_bench(bench)
        except ReproError as exc:
            raise ServiceError(f"invalid 'bench' netlist: {exc}") from exc
        sha = hashlib.sha256(bench.encode()).hexdigest()
        netlist_dir.mkdir(parents=True, exist_ok=True)
        path = netlist_dir / f"{sha[:16]}.bench"
        if not path.exists():
            path.write_text(bench)
        circuit = str(path)
    _require(
        isinstance(circuit, str) and circuit != "",
        "'circuit' must be a non-empty token string",
    )

    kind = body.get("kind", "sizing")
    _require(
        kind in _SERVICE_KINDS,
        f"'kind' must be one of {list(_SERVICE_KINDS)}, got {kind!r}",
    )
    delay_spec = body.get("delay_spec", 0.5)
    _require(
        isinstance(delay_spec, (int, float)) and not isinstance(
            delay_spec, bool
        ) and delay_spec > 0,
        f"'delay_spec' must be a positive fraction of Dmin, "
        f"got {delay_spec!r}",
    )
    mode = body.get("mode", "gate")
    _require(
        mode in ("gate", "transistor"),
        f"'mode' must be 'gate' or 'transistor', got {mode!r}",
    )
    flow_backend = body.get("flow_backend", "auto")
    _require(
        isinstance(flow_backend, str),
        f"'flow_backend' must be a string, got {flow_backend!r}",
    )
    if flow_backend != "auto":
        try:
            get_backend(flow_backend)
        except ReproError as exc:
            raise ServiceError(str(exc)) from exc
    options = body.get("options")
    _require(
        options is None or isinstance(options, dict),
        f"'options' must be an object of MinfloOptions overrides, "
        f"got {options!r}",
    )
    try:
        normalized = normalize_options(options)
    except ReproError as exc:
        raise ServiceError(str(exc)) from exc
    return Job(
        circuit=circuit,
        delay_spec=float(delay_spec),
        kind=kind,
        mode=mode,
        flow_backend=flow_backend,
        options=normalized,
    )


class SizingService:
    """Long-lived sizing engine behind the HTTP API (and usable directly).

    Parameters mirror ``python -m repro serve``: ``jobs`` is the worker
    count (1 = one dedicated thread, >1 = a process pool), ``cache`` a
    :class:`ResultCache`, a backend spec string (``disk:`` /
    ``sqlite:`` / ``tiered:``), a path, or None; ``run_dir`` the
    directory that receives the restart-surviving ``service.jsonl``
    job log and spooled inline netlists; ``timeout`` the per-job
    wall-time budget in seconds.

    Fleet parameters: ``queue`` (a path) switches job dispatch onto a
    durable shared :class:`~repro.service.queue.WorkQueue` that other
    replicas may also drain; ``max_queue_depth`` bounds the admitted
    backlog; ``quota_rate``/``quota_burst`` configure per-client token
    buckets; ``visibility_timeout`` is the lease duration after which
    a dead replica's in-flight jobs are re-claimed; ``sync_wait`` caps
    how long a synchronous request blocks on the queue before
    degrading to an async 202 ticket.

    ``batch_drain`` (queue mode only) makes each drain worker lease up
    to that many records per round and fuse compatible batchable jobs
    (kind ``wphase``) into one stacked kernel call
    (:func:`~repro.runner.executor.batch_entry`); per-job results are
    bit-identical to the single-lease loop.

    ``trace=False`` disables span collection entirely (``--no-trace``;
    metrics stay on — they are nearly free).  With tracing on and a
    ``run_dir``, spans append to ``run_dir/trace.jsonl``.

    ``warm_corpus`` (a cache backend spec string) turns on corpus warm
    starts: cache misses probe prior solutions for a seed, with a
    divergence monitor guaranteeing results bitwise identical to a
    cold run (see :mod:`repro.runner.corpus`).  Batched drains run
    cold — stacked solves have no per-job seeding point.

    Failure handling: ``max_attempts`` bounds how many times the queue
    re-leases a job before poison-parking it in the dead-letter state;
    ``faults``/``fault_seed`` install a deterministic fault-injection
    schedule (``--faults``; see :mod:`repro.faults`) for chaos drills.
    A worker death (real or injected) never bricks the replica — the
    broken process pool is swapped for a fresh one and the job retried
    once (``repro_pool_rebuilds_total``).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | str | Path | None = DEFAULT_CACHE_DIR,
        run_dir: str | Path | None = None,
        timeout: float | None = None,
        queue: str | Path | None = None,
        max_queue_depth: int | None = None,
        quota_rate: float | None = None,
        quota_burst: float | None = None,
        visibility_timeout: float = 600.0,
        sync_wait: float = 300.0,
        batch_drain: int | None = None,
        trace: bool = True,
        warm_corpus: str | None = None,
        max_attempts: int = MAX_ATTEMPTS,
        faults: str | None = None,
        fault_seed: int = 0,
    ):
        if jobs < 1:
            raise ServiceError(f"jobs must be >= 1, got {jobs}", status=500)
        if batch_drain is not None and batch_drain < 1:
            raise ServiceError(
                f"batch_drain must be >= 1, got {batch_drain}", status=500
            )
        self.batch_drain = batch_drain
        self.warm_corpus = warm_corpus
        self.fault_spec = faults or None
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.jobs = jobs
        self.timeout = timeout
        self.sync_wait = sync_wait
        self.run_dir = Path(run_dir) if run_dir is not None else None
        if self.fault_spec is not None:
            # ``serve --faults``: the injector is process-global (and
            # exported through the environment + explicit pool-task
            # args, so forkserver/spawn workers inherit the identical
            # schedule).  The state dir makes ``*MAX`` fault caps hold
            # fleet-wide across worker restarts.
            install_faults(
                self.fault_spec,
                seed=fault_seed,
                state_dir=(
                    self.run_dir / "faults"
                    if self.run_dir is not None
                    else None
                ),
            )
        self.trace = bool(trace)
        self.trace_sink = (
            SpanSink(self.run_dir / "trace.jsonl")
            if (self.trace and self.run_dir is not None)
            else None
        )
        self.metrics = MetricsRegistry()
        self._m_cache_hits = self.metrics.counter(
            "repro_cache_hits_total",
            "Requests served by replaying a stored result (no worker used).",
        )
        self._m_executed = self.metrics.counter(
            "repro_jobs_executed_total",
            "Jobs executed to completion by this replica (cache misses).",
        )
        self._m_finished = self.metrics.counter(
            "repro_jobs_finished_total",
            "Executed jobs by terminal status.",
            ("status",),
        )
        self._m_batched = self.metrics.counter(
            "repro_batched_jobs_total",
            "Executed jobs served by a stacked batch solve.",
        )
        self._m_batch_size = self.metrics.histogram(
            "repro_batch_size",
            "Jobs fused per stacked batch solve.",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self._m_job_seconds = self.metrics.histogram(
            "repro_job_seconds",
            "Monotonic execution seconds per job.",
            ("kind",),
        )
        self._m_flow = self.metrics.gauge(
            "repro_flow_stat",
            "Accumulated per-backend flow-solver statistics.",
            ("backend", "field"),
        )
        self._m_queue_depth = self.metrics.gauge(
            "repro_queue_depth",
            "Admitted-but-unfinished jobs (sampled at scrape time).",
        )
        self._m_http = self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method, route and status code.",
            ("method", "route", "code"),
        )
        self._m_pool_rebuilds = self.metrics.counter(
            "repro_pool_rebuilds_total",
            "Fresh worker pools swapped in after a worker process died.",
        )
        self.queue_path = Path(queue) if queue is not None else None
        if self.queue_path is not None:
            self.store: JobStore | WorkQueue = WorkQueue(
                self.queue_path,
                visibility_timeout=visibility_timeout,
                metrics=self.metrics,
                max_attempts=max_attempts,
            )
        else:
            self.store = JobStore(self.run_dir)
        self.admission = AdmissionController(
            max_queue_depth=max_queue_depth,
            quota_rate=quota_rate,
            quota_burst=quota_burst,
            metrics=self.metrics,
        )
        if self.run_dir is not None:
            self._netlist_dir = self.run_dir / "netlists"
        else:
            self._netlist_dir = Path(
                tempfile.mkdtemp(prefix="repro-service-netlists-")
            )
        self._pool = self._make_pool(jobs, timeout)
        self._lock = threading.Lock()
        self._digests: dict[str, str] = {}
        self._started_at = time.time()
        self._stop = threading.Event()
        self._drainers: list[threading.Thread] = []
        if self.queue_path is not None:
            self.worker_id = f"{socket.gethostname()}:{os.getpid()}"
            for index in range(jobs):
                thread = threading.Thread(
                    target=self._drain_loop,
                    name=f"repro-service-drain-{index}",
                    daemon=True,
                )
                thread.start()
                self._drainers.append(thread)

    @staticmethod
    def _make_pool(jobs: int, timeout: float | None):
        if jobs == 1 and timeout is None:
            # A timeout forces the process pool below: the SIGALRM
            # budget in pool_entry only arms on a main thread, so on a
            # worker *thread* it would be silently unenforced.
            return ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-service-worker"
            )
        # Never fork the threaded HTTP parent: a fork taken while
        # another handler thread holds an internal lock can deadlock
        # the child.  forkserver (Linux) / spawn (everywhere) start
        # workers from a clean process instead.
        methods = multiprocessing.get_all_start_methods()
        method = "forkserver" if "forkserver" in methods else "spawn"
        return ProcessPoolExecutor(
            max_workers=jobs, mp_context=multiprocessing.get_context(method)
        )

    def _rebuild_pool(self, broken) -> None:
        """Swap a broken executor for a fresh pool (idempotent).

        Many threads can observe the same death; only the first one to
        arrive swaps the pool, the rest see the already-fresh executor
        and simply resubmit.
        """
        with self._lock:
            if self._pool is not broken:
                return
            self._pool = self._make_pool(self.jobs, self.timeout)
            self._m_pool_rebuilds.inc()
        broken.shutdown(wait=False)

    def _run_pooled(self, fn, *args):
        """Run one task on the worker pool, surviving a dead worker.

        A worker process killed mid-job (the OOM killer, a
        ``worker:kill`` fault) breaks the whole
        :class:`ProcessPoolExecutor` — without recovery every later
        request would fail for the rest of the process lifetime.  All
        execution paths funnel through here: one death costs one retry
        on a fresh pool.  Retrying is safe because workers are pure
        compute — results are stored parent-side in :meth:`_finish`,
        so a killed attempt left no partial state behind.
        """
        pool = self._pool
        try:
            return pool.submit(fn, *args).result()
        except BrokenExecutor:
            self._rebuild_pool(pool)
            pool = self._pool
            try:
                return pool.submit(fn, *args).result()
            except BrokenExecutor:
                # Leave a healthy pool behind even when giving up on
                # this job; the caller records the failure.
                self._rebuild_pool(pool)
                raise

    @staticmethod
    def _fault_args() -> tuple | None:
        """The active fault injector's config, for pool-task hand-off.

        Workers started by forkserver/spawn snapshot the environment
        when the *start method* initializes, which may predate a test's
        ``install()`` — so every pool task carries the injector config
        explicitly (see
        :func:`repro.faults.injector.install_from_args`).
        """
        injector = active_faults()
        return injector.config_args() if injector is not None else None

    # -- request handling ---------------------------------------------

    def _request_scope(self):
        """A trace context for one request.

        The HTTP layer normally establishes the scope (resuming the
        client's ``X-Repro-Trace``); this makes direct
        :meth:`size_sync`/:meth:`size_async` callers traced too, and
        is a no-op when a scope is already active or tracing is off.
        """
        if not self.trace or current_trace() is not None:
            return nullcontext()
        return trace_scope(sink=self.trace_sink)

    def _admit(
        self, body: dict, client: str | None = None,
    ) -> tuple[JobRecord, JobOutcome | None]:
        """Validate + admit a request; replay it from cache if possible.

        Unlike a campaign (where an unresolvable circuit token becomes
        a failed job in the sweep), the service rejects it up front as
        a 400 — the requester is still on the line to hear about it.
        The cache probe runs *before* admission control: a replayed
        result consumes no worker, so warm traffic is never bounced by
        a full queue or an exhausted quota.
        """
        with span("service.admit"):
            job = build_job(body, self._netlist_dir)
            sha = self._netlist_sha(job.circuit)
            key = (
                None if self.cache is None else job_key(job, netlist_sha=sha)
            )
            with span("cache.probe") as probe_span:
                hit = probe_cache(job, key, self.cache)
                probe_span.set(hit=hit is not None)
            if hit is None:
                self.admission.admit(client, self.store.depth())
        trace_ref = None
        ctx = current_trace()
        if ctx is not None:
            if self.queue_path is not None and hit is None:
                # Allocate the job's lifecycle root span *here*, in the
                # submitting replica; the row carries trace_id-root_id
                # so whichever replica drains it parents queue-wait and
                # execution spans under this root — one trace end to
                # end across the fleet.
                trace_ref = format_trace_header(ctx.trace_id, new_span_id())
            else:
                trace_ref = ctx.trace_id
        record = self.store.create(job, key, client, trace=trace_ref)
        if hit is not None:
            self._m_cache_hits.inc()
            if ctx is not None:
                hit = replace(hit, trace_id=ctx.trace_id)
            self.store.finish(record.id, hit)
        return record, hit

    def _netlist_sha(self, token: str) -> str:
        """Digest of a circuit token's netlist, memoized when immutable.

        Repeat requests must not pay a full netlist resolve+serialize
        before the cache probe, so digests are remembered for tokens
        whose content cannot change underneath the service: suite
        names, ``rca:N`` generators, and our own content-addressed
        spool files.  An arbitrary on-disk ``.bench`` path is
        re-hashed every time — the file may have been edited.
        """
        mutable = token.endswith(".bench") and not token.startswith(
            str(self._netlist_dir)
        )
        if not mutable:
            with self._lock:
                cached = self._digests.get(token)
            if cached is not None:
                return cached
        try:
            sha = netlist_digest(token)
        except ReproError as exc:
            raise ServiceError(
                f"cannot resolve circuit {token!r}: {exc}"
            ) from exc
        if not mutable:
            with self._lock:
                if len(self._digests) >= 4096:  # runaway-token backstop
                    self._digests.clear()
                self._digests[token] = sha
        return sha

    def _finish(
        self,
        record: JobRecord,
        outcome: JobOutcome,
        obs: dict | None = None,
    ) -> JobRecord:
        """Store + account one freshly executed outcome.

        All counters go through the metrics registry — ``/v1/stats``
        and ``/v1/metrics`` read the identical cells.  ``obs`` is the
        worker-side span bundle shipped back in the result tuple; its
        spans are folded into the phase-seconds metrics and appended to
        this replica's ``trace.jsonl``.  Warm-corpus telemetry rides
        the same bundle: :func:`~repro.runner.executor.apply_warm`
        moves the ``repro_warmstart_total`` counter (parent-side, like
        the campaign driver) and hands back the job's staged corpus
        record, stored alongside the cache entry.
        """
        observe_faults(get_registry(), (obs or {}).get("faults"))
        outcome, warm_blob = apply_warm(outcome, obs)
        store_outcome(outcome, self.cache, warm=warm_blob)
        self.admission.observe_drain(outcome.wall_seconds)
        self._m_executed.inc()
        self._m_finished.inc(status=outcome.status)
        self._m_job_seconds.observe(
            outcome.duration_s
            if outcome.duration_s is not None
            else outcome.wall_seconds,
            kind=outcome.job.kind,
        )
        if outcome.batch_size:
            self._m_batched.inc()
            self._m_batch_size.observe(outcome.batch_size)
        for name, stats in (
            (outcome.payload or {}).get("flow_stats") or {}
        ).items():
            for field_name, value in stats.items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    self._m_flow.add(value, backend=name, field=field_name)
        spans = (obs or {}).get("spans") or ()
        if spans:
            observe_spans(self.metrics, spans)
            if self.trace_sink is not None:
                self.trace_sink.emit_many(spans)
        return self.store.finish(record.id, outcome)

    def _outcome_from(
        self, record: JobRecord, raw: tuple, batch: int = 0
    ) -> tuple[JobOutcome, dict | None]:
        """Build ``(JobOutcome, obs)`` from a worker's raw tuple.

        Accepts the 5-tuple of :func:`pool_entry` ``(status, payload,
        error, wall, obs)`` and the 6-tuple of :func:`batch_entry`
        (whose fifth element is the shared stacked-solve time; 0.0
        there marks a per-job fallback, reported as unbatched).  Legacy
        4-tuples — locally built error raws — still parse.
        """
        status, payload, error, wall = raw[:4]
        if len(raw) >= 6:
            batched_seconds, obs = raw[4], raw[5]
        elif len(raw) == 5:
            batched_seconds, obs = 0.0, raw[4]
        else:
            batched_seconds, obs = 0.0, None
        outcome = JobOutcome(
            index=0,
            job=record.job,
            key=record.key,
            status=status,
            cached=False,
            wall_seconds=wall,
            payload=payload,
            error=error,
            batch_size=batch if batched_seconds > 0.0 else 0,
            batched_seconds=batched_seconds,
            trace_id=record.trace_id,
        )
        return outcome, obs

    def size_sync(self, body: dict, client: str | None = None) -> JobRecord:
        """Handle a synchronous ``/v1/size``: block until the job is done.

        Local mode: the calling (HTTP handler) thread waits on the
        shared pool, so concurrent synchronous requests are naturally
        bounded at ``jobs`` in-flight sizings.  Queue mode: the job
        enters the shared stream like any other and this thread waits
        for *whichever replica* drains it, up to ``sync_wait`` seconds
        — after which the still-unfinished record is returned and the
        HTTP layer degrades the reply to an async 202 ticket.
        """
        with self._request_scope():
            record, hit = self._admit(body, client)
            if hit is not None:
                return self.store.get(record.id)
            if self.queue_path is not None:
                return self._await_queued(record)
            self.store.mark_running(record.id)
            try:
                raw = self._run_pooled(
                    pool_entry, record.job, self.timeout, self._carrier(),
                    self.warm_corpus, self._fault_args(),
                )
            except Exception as exc:  # pool broke twice under this job
                raw = ("failed", None, f"{type(exc).__name__}: {exc}", 0.0)
            outcome, obs = self._outcome_from(record, raw)
            return self._finish(record, outcome, obs)

    def _await_queued(self, record: JobRecord) -> JobRecord:
        """Wait (bounded) for the shared queue to finish a job."""
        deadline = time.monotonic() + self.sync_wait
        while not record.done:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            record = self.store.wait(record.id, record.status, remaining)
        return record

    def size_async(self, body: dict, client: str | None = None) -> JobRecord:
        """Handle ``/v1/size`` with ``async=true``: queue and return."""
        with self._request_scope():
            record, hit = self._admit(body, client)
            if hit is not None:
                return self.store.get(record.id)
            if self.queue_path is not None:
                # Queue mode: the row is already in the shared stream; a
                # drain worker (here or in another replica) will claim
                # it.
                return self.store.get(record.id)
            pool = self._pool
            future = pool.submit(
                pool_entry, record.job, self.timeout, self._carrier(),
                self.warm_corpus, self._fault_args(),
            )
        self.store.mark_running(record.id)

        def _done(done_future: Future) -> None:
            try:
                raw = done_future.result()
            except BrokenExecutor as exc:  # worker died under this job
                self._rebuild_pool(pool)
                raw = ("failed", None, f"{type(exc).__name__}: {exc}", 0.0)
            except Exception as exc:  # pool broke under this job
                raw = ("failed", None, f"{type(exc).__name__}: {exc}", 0.0)
            outcome, obs = self._outcome_from(record, raw)
            self._finish(record, outcome, obs)

        future.add_done_callback(_done)
        # Re-read through the store: a consistent snapshot, whether the
        # callback already ran or the job is still queued.
        return self.store.get(record.id)

    # -- queue drain (fleet mode) --------------------------------------

    def _carrier(self) -> dict | None:
        """The current trace carrier to ship across the pool boundary."""
        return current_carrier() if self.trace else None

    def _resume_trace(
        self, record: JobRecord
    ) -> tuple[str | None, str | None]:
        """Resume a leased job's trace: parse its ref, emit queue-wait.

        The row's ``trace_id-root_span_id`` ref was allocated by the
        *submitting* replica; this (draining) replica parents all its
        spans under that root.  The queue-wait span spans enqueue to
        lease on the wall clock (clamped at zero — the two ends may be
        observed by different hosts).
        """
        ref = record.trace if self.trace else None
        tid, _, root = (ref or "").partition("-")
        if not tid or not root:
            return None, None
        wait = {
            "type": "span",
            "trace": tid,
            "id": new_span_id(),
            "parent": root,
            "name": "queue.wait",
            "ts": record.created_at,
            "duration_s": max(0.0, time.time() - record.created_at),
            "attrs": {"job": record.id, "worker": self.worker_id},
        }
        observe_spans(self.metrics, [wait])
        if self.trace_sink is not None:
            self.trace_sink.emit(wait)
        return tid, root

    def _drain_scope(self, tid: str | None, root: str | None):
        """A trace scope for one drained job (no-op without a trace)."""
        if tid is None:
            return nullcontext()
        return trace_scope(
            sink=self.trace_sink, trace_id=tid, parent_id=root
        )

    def _emit_root(
        self,
        record: JobRecord,
        finished: JobRecord,
        tid: str | None,
        root: str | None,
    ) -> None:
        """Emit a queue-mode job's lifecycle root span, post-finish.

        The root covers enqueue → finish on the wall clock, so the
        queue-wait and execution children always sum to at most its
        duration (both are clamped the same way).
        """
        if tid is None or root is None or self.trace_sink is None:
            return
        finished_at = finished.finished_at or time.time()
        self.trace_sink.emit({
            "type": "span",
            "trace": tid,
            "id": root,
            "parent": None,
            "name": "job",
            "ts": record.created_at,
            "duration_s": max(0.0, finished_at - record.created_at),
            "attrs": {
                "job": record.id,
                "label": record.job.label(),
                "status": finished.status,
                "cached": finished.cached,
                "worker": self.worker_id,
            },
        })

    def _drain_one(self, record: JobRecord) -> None:
        """Probe, execute and publish one leased record (trace-aware)."""
        tid, root = self._resume_trace(record)
        with self._drain_scope(tid, root):
            with span("cache.probe") as probe_span:
                hit = probe_cache(record.job, record.key, self.cache)
                probe_span.set(hit=hit is not None)
            if hit is not None:
                self._m_cache_hits.inc()
                if tid is not None:
                    hit = replace(hit, trace_id=tid)
                finished = self.store.finish(record.id, hit)
                self._emit_root(record, finished, tid, root)
                return
            try:
                raw = self._run_pooled(
                    pool_entry, record.job, self.timeout, self._carrier(),
                    self.warm_corpus, self._fault_args(),
                )
            except Exception as exc:  # pool broke twice under this job
                raw = ("failed", None, f"{type(exc).__name__}: {exc}", 0.0)
            outcome, obs = self._outcome_from(record, raw)
            finished = self._finish(record, outcome, obs)
        self._emit_root(record, finished, tid, root)

    def _drain_loop(self) -> None:
        """One drain worker: lease → probe → execute → publish, forever.

        Every leased job is re-probed against the cache first — another
        replica may have finished an identical job between enqueue and
        lease, and the probe also settles the benign race where a
        cache-hit row is leased before its submitter finishes it.
        """
        while not self._stop.is_set():
            if self.batch_drain:
                if not self._drain_batched():
                    self._stop.wait(0.05)
                continue
            try:
                record = self.store.lease(self.worker_id)
            except Exception:  # noqa: BLE001 — a busy/locked DB must not
                record = None  # kill the drain thread; retry shortly
            if record is None:
                self._stop.wait(0.05)
                continue
            self._drain_one(record)

    def _drain_batched(self) -> bool:
        """One batched drain round; True when any work was claimed.

        Leases up to ``batch_drain`` records, replays cache hits, and
        fuses the batchable remainder (grouped by
        :func:`~repro.runner.executor.batch_groups`) into stacked
        kernel calls — each group is *one* pool task, so a fleet
        replica amortizes pool round-trips exactly like ``campaign run
        --batch`` amortizes kernel invocations.  Leftover
        (non-batchable) leases run through :func:`pool_entry` as usual.
        """
        records: list[JobRecord] = []
        while len(records) < self.batch_drain:
            try:
                record = self.store.lease(self.worker_id)
            except Exception:  # noqa: BLE001 — busy DB: stop leasing
                record = None
            if record is None:
                break
            records.append(record)
        if not records:
            return False
        live: list[JobRecord] = []
        carriers: list[dict | None] = []
        for record in records:
            tid, root = self._resume_trace(record)
            with self._drain_scope(tid, root):
                with span("cache.probe") as probe_span:
                    hit = probe_cache(record.job, record.key, self.cache)
                    probe_span.set(hit=hit is not None)
            if hit is not None:
                self._m_cache_hits.inc()
                if tid is not None:
                    hit = replace(hit, trace_id=tid)
                finished = self.store.finish(record.id, hit)
                self._emit_root(record, finished, tid, root)
            else:
                live.append(record)
                carriers.append(
                    {"trace_id": tid, "parent_id": root}
                    if tid is not None
                    else None
                )
        items = [
            (pos, record.job, record.key) for pos, record in enumerate(live)
        ]
        groups, rest = batch_groups(items)
        for group in groups:
            members = [live[pos] for pos, _job, _key in group]
            traces = [carriers[pos] for pos, _job, _key in group]
            try:
                raws = self._run_pooled(
                    batch_entry,
                    [r.job for r in members],
                    self.timeout,
                    traces,
                    self._fault_args(),
                )
            except Exception as exc:  # pool broke twice under this batch
                raws = [
                    (
                        "failed", None, f"{type(exc).__name__}: {exc}",
                        0.0, 0.0, None,
                    )
                ] * len(members)
            for record, carrier, raw in zip(members, traces, raws):
                outcome, obs = self._outcome_from(
                    record, raw, batch=len(members)
                )
                finished = self._finish(record, outcome, obs)
                self._emit_root(
                    record,
                    finished,
                    carrier["trace_id"] if carrier else None,
                    carrier["parent_id"] if carrier else None,
                )
        for pos, _job, _key in rest:
            record = live[pos]
            carrier = carriers[pos]
            try:
                raw = self._run_pooled(
                    pool_entry, record.job, self.timeout, carrier,
                    self.warm_corpus, self._fault_args(),
                )
            except Exception as exc:  # pool broke twice under this job
                raw = ("failed", None, f"{type(exc).__name__}: {exc}", 0.0)
            outcome, obs = self._outcome_from(record, raw)
            finished = self._finish(record, outcome, obs)
            self._emit_root(
                record,
                finished,
                carrier["trace_id"] if carrier else None,
                carrier["parent_id"] if carrier else None,
            )
        return True

    def get_job(self, job_id: str) -> tuple[JobRecord, dict | None]:
        """A job record plus its full payload when one is available.

        The payload comes from process memory for jobs finished in this
        service lifetime, or from the result cache after a restart.  A
        ``lost`` job (in flight when a previous service died) is
        upgraded to its completed outcome here if its worker reached
        the cache write before the crash.
        """
        record = self.store.get(job_id)
        payload = record.payload
        if payload is None and record.key is not None and (
            record.status in ("ok", "infeasible", "lost")
        ):
            hit = probe_cache(record.job, record.key, self.cache)
            if hit is not None:
                payload = hit.payload
                if record.status == "lost":
                    record = self.store.finish(record.id, hit)
        return record, payload

    def list_jobs(
        self,
        status: str | None = None,
        limit: int = 50,
        after: str | None = None,
    ) -> tuple[list[JobRecord], str | None]:
        """Page through admitted jobs (``GET /v1/jobs``).

        ``status`` filters to one job status, ``limit`` caps the page
        (1–500), ``after`` is the cursor returned by the previous page.
        Fleet-wide when the store is a shared queue.
        """
        if status is not None and status not in JOB_STATUSES:
            raise ServiceError(
                f"unknown status filter {status!r}; "
                f"valid: {list(JOB_STATUSES)}"
            )
        if not 1 <= limit <= 500:
            raise ServiceError(
                f"limit must be between 1 and 500, got {limit}"
            )
        return self.store.list(status=status, limit=limit, after=after)

    def job_events(
        self, job_id: str, timeout: float = 30.0,
    ) -> Iterator[JobRecord]:
        """Yield a job's status snapshots as they change (long-poll).

        The first snapshot is immediate; subsequent ones arrive on
        status transitions.  The stream ends after the terminal
        snapshot, or silently at ``timeout`` — callers reconnect with
        whatever status they last saw.  Backed by a condition variable
        on the in-memory store and a short poll on the shared queue.
        """
        deadline = time.monotonic() + timeout
        record = self.store.get(job_id)
        while True:
            yield record
            if record.done:
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            latest = self.store.wait(job_id, record.status, remaining)
            if latest.status == record.status and not latest.done:
                return  # deadline expired without a transition
            record = latest

    # -- discovery + introspection ------------------------------------

    def _cache_breaker(self):
        """The shared-tier circuit breaker, when the cache has one.

        Only the tiered backend carries a breaker (its shared L2 is
        the one dependency that can fail independently); every other
        configuration returns None.
        """
        backend = getattr(self.cache, "backend", None)
        return getattr(backend, "breaker", None)

    def health(self) -> dict:
        """Liveness + degradation snapshot for ``GET /v1/healthz``.

        ``status`` is ``"ok"`` or ``"degraded"``: degraded while the
        shared-cache circuit breaker is not closed (the replica is
        serving from its local tier only) or while the work queue has
        poison-parked jobs awaiting operator attention (``python -m
        repro queue inspect``).  Degraded is still HTTP 200 — the
        replica answers correctly, just without its full redundancy;
        load balancers key on ``status``, operators read ``reasons``.
        """
        reasons: list[str] = []
        breaker = self._cache_breaker()
        if breaker is not None and breaker.state != "closed":
            reasons.append(
                f"shared cache tier breaker {breaker.name!r} is "
                f"{breaker.state}; serving from the local tier only"
            )
        if isinstance(self.store, WorkQueue):
            poisoned = self.store.poisoned_count()
            if poisoned:
                reasons.append(
                    f"{poisoned} job(s) poison-parked in the dead-letter "
                    "queue; inspect/requeue with 'python -m repro queue'"
                )
        return {
            "status": "degraded" if reasons else "ok",
            "reasons": reasons,
            "workers": self.jobs,
            "mode": "queue" if self.queue_path is not None else "local",
        }

    def stats(self) -> dict:
        """Service counters for ``/v1/stats`` — a view over the registry.

        Every number here reads the same locked
        :class:`~repro.obs.metrics.MetricsRegistry` cells that
        ``/v1/metrics`` exposes, so the two endpoints can never
        disagree.  ``flow`` sums the per-job
        :class:`~repro.flow.registry.SolveStats` that each sizing
        collects under its own
        :func:`~repro.flow.registry.stats_scope` — per-request scoping
        first, aggregation second, so concurrent jobs never interleave
        counters.
        """
        flow: dict[str, dict] = {}
        for labels, value in self._m_flow.items():
            cell = flow.setdefault(labels["backend"], {})
            # SolveStats fields are ints (counts) or floats (supply);
            # restore int-ness lost to the float-valued gauge.
            cell[labels["field"]] = (
                int(value) if float(value).is_integer() else value
            )
        cache_hits = int(self._m_cache_hits.total())
        executed = int(self._m_executed.total())
        batched_jobs = int(self._m_batched.total())
        breaker = self._cache_breaker()
        injector = active_faults()
        return {
            "uptime_seconds": time.time() - self._started_at,
            "jobs": self.store.counts(),
            "cache_hits": cache_hits,
            "executed": executed,
            "batched_jobs": batched_jobs,
            "executor": {
                "workers": self.jobs,
                "kind": "thread" if self.jobs == 1 else "process",
                "timeout": self.timeout,
                "batch_drain": self.batch_drain,
                "warm_corpus": self.warm_corpus,
            },
            "cache_dir": (
                str(self.cache.root) if self.cache is not None else None
            ),
            "cache_backend": (
                self.cache.describe() if self.cache is not None else None
            ),
            "queue": (
                {
                    "mode": "queue",
                    "depth": self.store.depth(),
                    "worker_id": self.worker_id,
                    "poisoned": self.store.poisoned_count(),
                    **self.store.describe(),
                }
                if self.queue_path is not None
                else {"mode": "local", "depth": self.store.depth()}
            ),
            "admission": self.admission.counters(),
            "warmstart": warmstart_counts(),
            "flow": flow,
            "breaker": breaker.snapshot() if breaker is not None else None,
            "faults": (
                {"spec": injector.spec, "injected": injector.counts()}
                if injector is not None
                else None
            ),
            "pool_rebuilds": int(self._m_pool_rebuilds.total()),
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition for ``GET /v1/metrics``.

        Concatenates this service's registry with the process-global
        one (cache-backend probe counters register there, because the
        cache layer predates and outlives any one service instance);
        the family names are disjoint by construction.  Sampled gauges
        (queue depth) are refreshed at scrape time.
        """
        self._m_queue_depth.set(float(self.store.depth()))
        return self.metrics.expose() + get_registry().expose()

    def close(self) -> None:
        """Stop drain workers, then the pool (in-flight jobs finish first)."""
        self._stop.set()
        for thread in self._drainers:
            thread.join(timeout=5.0)
        self._pool.shutdown(wait=True)
        if self.trace_sink is not None:
            self.trace_sink.close()
        if self.run_dir is None:
            # The spool directory was a mkdtemp this instance owns;
            # with a run_dir it belongs to the operator and persists.
            shutil.rmtree(self._netlist_dir, ignore_errors=True)
