"""Admission control for the sizing service: bounded queue + quotas.

A fleet front end must refuse work it cannot absorb — the alternative
is an unbounded backlog that turns every request into a timeout.  This
module is the refusal path:

* **Bounded queue depth** — when the number of admitted-but-unfinished
  jobs reaches ``max_queue_depth``, new submissions are rejected with
  a structured 429 carrying ``Retry-After`` (estimated from recent
  drain rate), instead of being buried at position N of a queue nobody
  will ever reach the front of.
* **Per-client token buckets** — each client (the ``X-Repro-Client``
  header, falling back to the peer address) accrues ``quota_rate``
  request tokens per second up to a burst of ``quota_burst``; a client
  out of tokens gets a 429 whose ``Retry-After`` is the exact time
  until its next token, so one chatty client cannot starve the rest.

Both checks raise :class:`~repro.errors.ServiceError` with
``status=429`` and ``retry_after`` set; the HTTP layer renders the
``Retry-After`` and ``X-Repro-Queue-Depth`` headers from them.  All
state is in-process and cheap — admission is per *replica*, which is
the point: each replica protects its own socket and its share of the
shared queue.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ServiceError

__all__ = ["AdmissionController", "TokenBucket"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    :meth:`consume` takes one token and returns 0.0, or returns the
    number of seconds until a token will be available (never consuming
    on refusal).  Thread-safe; time is injectable for tests.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError(
                f"rate and burst must be positive, got {rate}/{burst}"
            )
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._updated = clock()
        self._lock = threading.Lock()

    def consume(self) -> float:
        """Take one token (0.0) or report the wait in seconds (> 0)."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate


class AdmissionController:
    """Gatekeeper for new submissions: depth bound + per-client quotas.

    ``max_queue_depth`` bounds admitted-but-unfinished jobs (None =
    unbounded); ``quota_rate``/``quota_burst`` configure per-client
    token buckets (rate None = no quotas).  :meth:`admit` raises a
    429-grade :class:`~repro.errors.ServiceError` on refusal and
    counts rejections for ``/v1/stats``.
    """

    #: Hard ceiling on distinct client buckets, so an attacker cycling
    #: client ids cannot grow the dict without bound.
    MAX_CLIENTS = 4096

    def __init__(
        self,
        max_queue_depth: int | None = None,
        quota_rate: float | None = None,
        quota_burst: float | None = None,
        metrics=None,
    ):
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ServiceError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}",
                status=500,
            )
        self.max_queue_depth = max_queue_depth
        self.quota_rate = quota_rate
        self.quota_burst = quota_burst if quota_burst is not None else (
            max(1.0, quota_rate * 2) if quota_rate else None
        )
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        # Rejection tallies live in a metrics registry when one is
        # given (``repro_admission_rejections_total{reason}``) so
        # /v1/stats and /v1/metrics read the same locked counters.
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self._m_rejected = metrics.counter(
            "repro_admission_rejections_total",
            "Submissions refused by admission control, by reason.",
            ("reason",),
        )
        #: Exponential moving average of seconds per drained job, the
        #: Retry-After estimate for depth rejections.
        self._drain_ema: float | None = None

    # -- accounting hooks ---------------------------------------------

    def observe_drain(self, wall_seconds: float) -> None:
        """Feed one finished job's wall time into the drain-rate EMA."""
        if wall_seconds <= 0:
            return
        with self._lock:
            if self._drain_ema is None:
                self._drain_ema = wall_seconds
            else:
                self._drain_ema = 0.8 * self._drain_ema + 0.2 * wall_seconds

    def counters(self) -> dict:
        """Rejection counters for ``/v1/stats`` (a view over the
        metrics registry)."""
        return {
            "rejected_depth": int(self._m_rejected.value(reason="depth")),
            "rejected_quota": int(self._m_rejected.value(reason="quota")),
            "max_queue_depth": self.max_queue_depth,
            "quota_rate": self.quota_rate,
            "quota_burst": self.quota_burst,
        }

    # -- the gate ------------------------------------------------------

    def admit(self, client: str | None, depth: int) -> None:
        """Admit one submission or raise a 429 :class:`ServiceError`.

        ``depth`` is the current admitted-but-unfinished job count
        (queued + running, fleet-wide when the store is shared);
        ``client`` identifies the quota bucket (None = shared bucket).
        """
        if self.max_queue_depth is not None and (
            depth >= self.max_queue_depth
        ):
            self._m_rejected.inc(reason="depth")
            with self._lock:
                ema = self._drain_ema
            retry_after = max(1.0, (ema or 1.0))
            raise ServiceError(
                f"queue full: {depth} jobs admitted against a bound of "
                f"{self.max_queue_depth}; retry after "
                f"{retry_after:.0f}s",
                status=429,
                retry_after=retry_after,
            )
        if self.quota_rate is not None:
            bucket = self._bucket(client or "(anonymous)")
            wait = bucket.consume()
            if wait > 0.0:
                self._m_rejected.inc(reason="quota")
                raise ServiceError(
                    f"client quota exhausted "
                    f"({self.quota_rate:g} requests/s, burst "
                    f"{self.quota_burst:g}); retry after {wait:.2f}s",
                    status=429,
                    retry_after=wait,
                )

    def _bucket(self, client: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self.MAX_CLIENTS:
                    self._buckets.clear()  # runaway-client backstop
                bucket = TokenBucket(self.quota_rate, self.quota_burst)
                self._buckets[client] = bucket
            return bucket
