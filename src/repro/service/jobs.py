"""Service job records: in-memory registry + append-only JSONL log.

Every request admitted by the sizing service becomes a
:class:`JobRecord` tracked here.  The store mirrors the campaign run
log's design (:mod:`repro.runner.progress`): when the service owns a
run directory, each job appends a ``submitted`` record on admission
and a ``finished`` record on completion to ``service.jsonl`` — an
append-only file, flushed per record, so the job history survives a
service restart.  On startup the store replays the log: finished jobs
come back with their status, key and summary (their full payloads are
re-served from the content-addressed result cache), and jobs that were
in flight when the process died come back as ``lost`` — the service
upgrades a lost job to a completed one on first access if its worker
managed to write the cache entry before the crash.

The store is thread-safe: HTTP handler threads admit jobs while
executor callbacks finish them.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.errors import ServiceError
from repro.runner.executor import JobOutcome
from repro.runner.progress import job_summary
from repro.runner.spec import Job

__all__ = ["JOB_LOG_NAME", "JobRecord", "JobStore"]

JOB_LOG_NAME = "service.jsonl"

#: Statuses a job can be observed in.  ``queued``/``running`` are
#: live-only; ``lost`` marks a job found in the log without a finish
#: record after a restart.
JOB_STATUSES = (
    "queued", "running", "ok", "infeasible", "failed", "timeout", "lost",
)


@dataclass
class JobRecord:
    """One admitted request: identity, parameters, and (later) its fate."""

    id: str
    job: Job
    key: str | None
    created_at: float
    status: str = "queued"
    cached: bool = False
    wall_seconds: float | None = None
    summary: dict | None = None
    error: str | None = None
    finished_at: float | None = None
    #: Admit-to-finish latency measured on the *monotonic* clock by the
    #: process that observed both ends (falls back to the outcome's
    #: ``duration_s`` when finish happened in another process, e.g. a
    #: queue-sharing replica).  Unlike ``finished_at - created_at`` it
    #: can never go negative under a wall-clock step.
    duration_s: float | None = None
    #: Trace reference (``trace_id`` or ``trace_id-root_span_id``) tying
    #: this job to its span tree in ``trace.jsonl``; None with tracing
    #: off.
    trace: str | None = None
    #: Warm-start flags (``{"hit", "seeded", "fallback"}``) when the
    #: corpus touched this job; None for cold runs and cache replays.
    warm: dict | None = None
    #: Full result payload, held in memory for the current process
    #: only; after a restart it is re-read from the result cache.
    payload: dict | None = field(default=None, repr=False)
    #: Monotonic clock at admission, used to derive ``duration_s``;
    #: meaningless outside the admitting process, never persisted.
    created_mono: float | None = field(default=None, repr=False, compare=False)

    @property
    def done(self) -> bool:
        """True once the job reached a terminal status."""
        return self.status not in ("queued", "running")

    @property
    def trace_id(self) -> str | None:
        """The trace id part of :attr:`trace` (root span id stripped)."""
        if self.trace is None:
            return None
        return self.trace.partition("-")[0] or None

    def to_wire(self) -> dict:
        """JSON-ready public view of this record (payload excluded)."""
        return {
            "id": self.id,
            "status": self.status,
            "job": self.job.to_dict(),
            "label": self.job.label(),
            "key": self.key,
            "cached": self.cached,
            "wall_seconds": self.wall_seconds,
            "duration_s": self.duration_s,
            "summary": self.summary,
            "error": self.error,
            "created_at": self.created_at,
            "finished_at": self.finished_at,
            "trace_id": self.trace_id,
            "warm": self.warm,
        }


class JobStore:
    """Thread-safe job registry, optionally persisted to ``service.jsonl``."""

    def __init__(self, run_dir: str | Path | None = None):
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._records: dict[str, JobRecord] = {}
        self._counter = 0
        self.path: Path | None = None
        if run_dir is not None:
            run_dir = Path(run_dir)
            run_dir.mkdir(parents=True, exist_ok=True)
            self.path = run_dir / JOB_LOG_NAME
            self._replay()

    # -- persistence ---------------------------------------------------

    def _append(self, record: dict) -> None:
        if self.path is None:
            return
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()

    def _replay(self) -> None:
        """Rebuild records from an existing log (restart path)."""
        if self.path is None or not self.path.is_file():
            return
        try:
            lines = self.path.read_text().splitlines()
        except OSError as exc:
            raise ServiceError(
                f"cannot read service job log {self.path}: {exc}", status=500
            ) from exc
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail line from a killed service
            if entry.get("type") != "service-job":
                continue
            if entry.get("event") == "submitted":
                try:
                    job = Job.from_dict(entry["job"])
                except Exception:
                    continue  # unreadable job parameters: skip the record
                record = JobRecord(
                    id=str(entry.get("id")),
                    job=job,
                    key=entry.get("key"),
                    created_at=float(entry.get("created_at") or 0.0),
                    status="lost",
                    trace=entry.get("trace"),
                )
                self._records[record.id] = record
            elif entry.get("event") == "finished":
                record = self._records.get(str(entry.get("id")))
                if record is None:
                    continue
                record.status = str(entry.get("status"))
                record.cached = bool(entry.get("cached"))
                record.wall_seconds = entry.get("wall_seconds")
                record.duration_s = entry.get("duration_s")
                record.summary = entry.get("summary")
                record.error = entry.get("error")
                record.finished_at = entry.get("finished_at")
                record.trace = entry.get("trace") or record.trace
                record.warm = entry.get("warm")
        for record in self._records.values():
            number = _id_number(record.id)
            if number is not None:
                self._counter = max(self._counter, number)

    # -- the live API --------------------------------------------------

    def create(
        self,
        job: Job,
        key: str | None,
        client: str | None = None,
        trace: str | None = None,
    ) -> JobRecord:
        """Admit a job: allocate an id, register it, log the submission.

        ``client`` (the quota identity) is accepted for interface
        parity with :class:`~repro.service.queue.WorkQueue`; the
        in-memory store does not persist it.  ``trace`` is the job's
        trace reference (see :attr:`JobRecord.trace`).
        """
        with self._lock:
            self._counter += 1
            record = JobRecord(
                id=f"j{self._counter:06d}",
                job=job,
                key=key,
                created_at=time.time(),
                trace=trace,
                created_mono=time.monotonic(),
            )
            self._records[record.id] = record
        self._append({
            "type": "service-job",
            "event": "submitted",
            "id": record.id,
            "job": job.to_dict(),
            "label": job.label(),
            "key": key,
            "created_at": record.created_at,
            "trace": trace,
        })
        return record

    def mark_running(self, job_id: str) -> None:
        """Flip a queued job to ``running`` (best-effort, live-only)."""
        with self._lock:
            record = self._records.get(job_id)
            if record is not None and record.status == "queued":
                record.status = "running"
                self._changed.notify_all()

    def finish(self, job_id: str, outcome: JobOutcome) -> JobRecord:
        """Record a job's outcome and log it; returns a snapshot."""
        with self._lock:
            record = self._records[job_id]
            record.status = outcome.status
            record.cached = outcome.cached
            record.wall_seconds = outcome.wall_seconds
            # Monotonic admit-to-finish latency when both ends were
            # observed by this process; the outcome's own monotonic
            # duration otherwise.  Never derived from wall clocks.
            record.duration_s = (
                time.monotonic() - record.created_mono
                if record.created_mono is not None
                else outcome.duration_s
            )
            record.summary = job_summary(outcome)
            record.error = outcome.error
            record.payload = outcome.payload
            record.finished_at = time.time()
            record.warm = outcome.warm_summary()
            self._changed.notify_all()
            record = replace(record)
        self._append({
            "type": "service-job",
            "event": "finished",
            "id": record.id,
            "status": record.status,
            "cached": record.cached,
            "wall_seconds": record.wall_seconds,
            "duration_s": record.duration_s,
            "summary": record.summary,
            "error": record.error,
            "finished_at": record.finished_at,
            "trace": record.trace,
            "warm": record.warm,
        })
        return record

    def get(self, job_id: str) -> JobRecord:
        """Look a job up by id; unknown ids are a 404-grade error.

        Returns a *snapshot* (shallow copy taken under the lock), never
        the live record: HTTP handler threads serialize the result
        while executor callbacks may be mid-:meth:`finish` on the same
        record, and a torn read (``status == "ok"`` with ``summary``
        still None) must be impossible.
        """
        with self._lock:
            record = self._records.get(job_id)
            if record is not None:
                record = replace(record)
        if record is None:
            raise ServiceError(f"no such job {job_id!r}", status=404)
        return record

    def counts(self) -> dict[str, int]:
        """Job tally by status (for ``/v1/stats``)."""
        with self._lock:
            out: dict[str, int] = {}
            for record in self._records.values():
                out[record.status] = out.get(record.status, 0) + 1
            return out

    def depth(self) -> int:
        """Admitted-but-unfinished jobs (queued + running) — the number
        admission control bounds."""
        with self._lock:
            return sum(
                1 for record in self._records.values()
                if record.status in ("queued", "running")
            )

    def list(
        self,
        status: str | None = None,
        limit: int = 50,
        after: str | None = None,
    ) -> tuple[list[JobRecord], str | None]:
        """Page through jobs in submission order.

        ``after`` is the opaque cursor (the last job id of the previous
        page); returns ``(records, next_after)`` where ``next_after``
        is None once the listing is exhausted.  Unknown cursors are a
        400-grade error, matching the queue-backed store.
        """
        with self._lock:
            if after is not None and after not in self._records:
                raise ServiceError(f"unknown cursor {after!r}", status=400)
            ordered = sorted(
                self._records.values(),
                key=lambda record: (_id_number(record.id) or 0, record.id),
            )
            if after is not None:
                index = next(
                    i for i, record in enumerate(ordered)
                    if record.id == after
                )
                ordered = ordered[index + 1:]
            if status is not None:
                ordered = [r for r in ordered if r.status == status]
            page = [replace(record) for record in ordered[:limit]]
            next_after = page[-1].id if len(ordered) > limit else None
            return page, next_after

    def wait(
        self, job_id: str, known_status: str | None, timeout: float,
    ) -> JobRecord:
        """Block until the job's status differs from ``known_status``.

        Event-driven (a condition variable notified by
        :meth:`mark_running`/:meth:`finish`), so the long-poll events
        endpoint wakes on the transition, not on a poll tick.  Returns
        the latest snapshot on transition, terminal status, or at the
        deadline.
        """
        deadline = time.monotonic() + timeout
        with self._lock:
            while True:
                record = self._records.get(job_id)
                if record is None:
                    raise ServiceError(
                        f"no such job {job_id!r}", status=404
                    )
                if record.status != known_status or record.done:
                    return replace(record)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return replace(record)
                self._changed.wait(remaining)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def _id_number(job_id: str) -> int | None:
    """The sequence number of a ``jNNNNNN`` id, or None."""
    if job_id.startswith("j") and job_id[1:].isdigit():
        return int(job_id[1:])
    return None
