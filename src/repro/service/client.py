"""Tiny stdlib client for the sizing service.

:class:`ServiceClient` wraps the v1 HTTP surface with one method per
endpoint, raising :class:`~repro.errors.ServiceError` (carrying the
HTTP status) for every structured error the server returns.  It is the
client the tests, the CI service smoke, and ``examples/query_service.py``
all use — which keeps the wire format honest: anything the docs claim
must round-trip through this code.

Usage::

    client = ServiceClient("http://127.0.0.1:8765")
    client.healthz()
    reply = client.size(circuit="c17", delay_spec=0.6)
    sizes = reply["payload"]["result"]["x"]
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """HTTP client for one service base URL (e.g. ``http://host:port``)."""

    def __init__(self, base_url: str, timeout: float = 300.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        """One round trip; structured errors become :class:`ServiceError`."""
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            try:
                message = json.loads(detail)["error"]["message"]
            except (json.JSONDecodeError, KeyError, TypeError):
                message = detail.strip() or exc.reason
            raise ServiceError(message, status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach sizing service at {self.base_url}: "
                f"{exc.reason}", status=503,
            ) from exc

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> dict:
        """Liveness probe (``GET /v1/healthz``)."""
        return self._request("GET", "/v1/healthz")

    def circuits(self) -> dict:
        """Benchmark-suite discovery (``GET /v1/circuits``)."""
        return self._request("GET", "/v1/circuits")

    def backends(self) -> dict:
        """Flow-backend discovery (``GET /v1/backends``)."""
        return self._request("GET", "/v1/backends")

    def stats(self) -> dict:
        """Service counters (``GET /v1/stats``)."""
        return self._request("GET", "/v1/stats")

    def job(self, job_id: str) -> dict:
        """One job's status/result (``GET /v1/jobs/<id>``)."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def size(
        self,
        circuit: str | None = None,
        bench: str | None = None,
        delay_spec: float | None = None,
        mode: str | None = None,
        flow_backend: str | None = None,
        options: dict | None = None,
        wait: bool = True,
    ) -> dict:
        """Size a netlist (``POST /v1/size``).

        Pass either ``circuit`` (a token the server can resolve) or
        ``bench`` (inline netlist text).  ``wait=True`` (default) runs
        synchronously and returns the finished job body, payload
        included; ``wait=False`` submits with ``async=true`` and
        returns immediately — poll with :meth:`job` /
        :meth:`wait_for`.
        """
        body: dict = {}
        if circuit is not None:
            body["circuit"] = circuit
        if bench is not None:
            body["bench"] = bench
        if delay_spec is not None:
            body["delay_spec"] = delay_spec
        if mode is not None:
            body["mode"] = mode
        if flow_backend is not None:
            body["flow_backend"] = flow_backend
        if options is not None:
            body["options"] = options
        if not wait:
            body["async"] = True
        return self._request("POST", "/v1/size", body)

    def wait_for(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.05
    ) -> dict:
        """Poll an async job until it reaches a terminal status."""
        deadline = time.monotonic() + timeout
        while True:
            reply = self.job(job_id)
            if reply["status"] not in ("queued", "running"):
                return reply
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {reply['status']} after "
                    f"{timeout:g}s", status=504,
                )
            time.sleep(poll)
