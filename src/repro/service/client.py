"""Tiny stdlib client for the sizing service.

:class:`ServiceClient` wraps the v1 HTTP surface with one typed method
per endpoint, raising :class:`~repro.errors.ServiceError` (carrying
the HTTP status) for every structured error the server returns.  It is
the client the tests, the CI service smoke, and
``examples/query_service.py`` all use — which keeps the wire format
honest: anything the docs claim must round-trip through this code.

The client is a *session*: one kept-alive HTTP connection, reused
across calls and closed by :meth:`close` (or the context manager).
Replies arrive in the ``repro.service/2`` envelope and every method
returns the unwrapped ``data`` object, so callers never see transport
framing.  Admission rejections (429) are retried automatically,
sleeping the server-stated ``Retry-After``, up to ``retries`` times —
pass ``retries=0`` to observe raw backpressure.  Transport failures
(stale sockets, resets, truncated responses) are retried with
exponential backoff + jitter (:mod:`repro.faults.retry`) before
surfacing as a 503-grade error.

Usage::

    with ServiceClient("http://127.0.0.1:8765") as client:
        client.healthz()
        reply = client.size(circuit="c17", delay_spec=0.6)
        sizes = reply["payload"]["result"]["x"]

One instance may be shared across threads: connections are pooled
per-thread (opened lazily), so concurrent calls never interleave on a
socket.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from typing import Iterator

from repro.errors import ServiceError
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.obs.trace import TRACE_HEADER

__all__ = ["ServiceClient"]

#: Statuses that mean "still in flight" on the wire.
_LIVE_STATUSES = ("queued", "running")

#: Backoff for transport-level failures: stale keep-alive sockets,
#: connection resets, and truncated responses (``IncompleteRead`` is an
#: ``HTTPException``).  Resending is safe on every endpoint — reads are
#: idempotent and ``POST /v1/size`` is deterministic and
#: content-addressed, so a duplicate submission lands on the same job.
_TRANSPORT_RETRY = RetryPolicy(
    attempts=3,
    base_delay=0.05,
    max_delay=1.0,
    retryable=(http.client.HTTPException, OSError),
)


class ServiceClient:
    """HTTP session against one service base URL (``http://host:port``).

    ``client_id`` is sent as ``X-Repro-Client`` on every request — the
    identity the server's per-client quota buckets key on; ``retries``
    bounds automatic 429 retries (each sleeping the server's
    ``Retry-After``, capped at ``retry_wait_cap`` seconds).
    ``trace_id`` is sent as ``X-Repro-Trace`` so every request this
    session makes joins the caller's trace (the server allocates a
    fresh trace per request otherwise).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 300.0,
        client_id: str | None = None,
        retries: int = 2,
        retry_wait_cap: float = 30.0,
        trace_id: str | None = None,
    ):
        self.base_url = base_url.rstrip("/")
        parts = urllib.parse.urlsplit(self.base_url)
        if parts.scheme not in ("http", ""):
            raise ServiceError(
                f"unsupported scheme {parts.scheme!r} in {base_url!r} "
                f"(only http)", status=400,
            )
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or 80
        self.timeout = timeout
        self.client_id = client_id
        self.retries = retries
        self.retry_wait_cap = retry_wait_cap
        self.trace_id = trace_id
        self._local = threading.local()
        self._pool_lock = threading.Lock()
        self._all_conns: list[http.client.HTTPConnection] = []

    # -- the session ---------------------------------------------------

    def __enter__(self) -> "ServiceClient":
        """Enter the session (connections open on first use)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close every pooled connection."""
        self.close()

    def close(self) -> None:
        """Drop all kept-alive connections (they reopen lazily if reused)."""
        with self._pool_lock:
            conns, self._all_conns = self._all_conns, []
        for conn in conns:
            conn.close()
        self._local = threading.local()

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
            self._local.conn = conn
            with self._pool_lock:
                self._all_conns.append(conn)
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            return
        self._local.conn = None
        conn.close()
        with self._pool_lock:
            if conn in self._all_conns:
                self._all_conns.remove(conn)

    def _roundtrip(
        self, method: str, path: str, payload: bytes | None, headers: dict,
    ) -> tuple[int, dict, bytes]:
        """One exchange on the pooled connection, retried with backoff.

        Transport failures — a stale keep-alive socket the server timed
        out between calls, a connection reset, a response truncated
        mid-body — drop the connection and resend on a fresh one under
        ``_TRANSPORT_RETRY`` (exponential backoff with jitter).  Safe
        even for ``POST /v1/size``, whose effect is deterministic and
        content-addressed.
        """

        def _exchange() -> tuple[int, dict, bytes]:
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                resp = conn.getresponse()
                body = resp.read()
            except (http.client.HTTPException, OSError):
                self._drop_connection()
                raise
            resp_headers = {
                name.lower(): value for name, value in resp.getheaders()
            }
            if resp_headers.get("connection") == "close":
                self._drop_connection()
            return resp.status, resp_headers, body

        return call_with_retry(_exchange, _TRANSPORT_RETRY, "http.client")

    def _request(
        self, method: str, path: str, body: dict | None = None,
    ) -> tuple[dict, int]:
        """One API call: envelope unwrapped, 429s retried, errors raised.

        Returns ``(data, http_status)`` — callers that distinguish 200
        from 202 (sync sizing that degraded to a ticket) use the code.
        """
        payload = None
        headers = {"Accept": "application/json"}
        if body is not None:
            payload = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        if self.client_id is not None:
            headers["X-Repro-Client"] = self.client_id
        if self.trace_id is not None:
            headers[TRACE_HEADER] = self.trace_id
        attempt = 0
        while True:
            try:
                status, resp_headers, raw = self._roundtrip(
                    method, path, payload, headers
                )
            except (http.client.HTTPException, OSError) as exc:
                raise ServiceError(
                    f"cannot reach sizing service at {self.base_url}: "
                    f"{exc}", status=503,
                ) from exc
            if status < 400:
                reply = json.loads(raw)
                data = reply.get("data") if isinstance(reply, dict) else None
                return (data if isinstance(data, dict) else reply), status
            error = _error_from(status, resp_headers, raw, self.base_url)
            if status == 429 and attempt < self.retries:
                attempt += 1
                time.sleep(
                    min(error.retry_after or 1.0, self.retry_wait_cap)
                )
                continue
            raise error

    # -- discovery + introspection -------------------------------------

    def healthz(self) -> dict:
        """Liveness probe (``GET /v1/healthz``)."""
        return self._request("GET", "/v1/healthz")[0]

    def circuits(self) -> dict:
        """Benchmark-suite discovery (``GET /v1/circuits``)."""
        return self._request("GET", "/v1/circuits")[0]

    def backends(self) -> dict:
        """Flow-backend discovery (``GET /v1/backends``)."""
        return self._request("GET", "/v1/backends")[0]

    def stats(self) -> dict:
        """Service counters (``GET /v1/stats``)."""
        return self._request("GET", "/v1/stats")[0]

    def metrics(self) -> str:
        """Raw Prometheus text exposition (``GET /v1/metrics``)."""
        headers = {"Accept": "text/plain"}
        if self.client_id is not None:
            headers["X-Repro-Client"] = self.client_id
        if self.trace_id is not None:
            headers[TRACE_HEADER] = self.trace_id
        try:
            status, resp_headers, raw = self._roundtrip(
                "GET", "/v1/metrics", None, headers
            )
        except (http.client.HTTPException, OSError) as exc:
            raise ServiceError(
                f"cannot reach sizing service at {self.base_url}: {exc}",
                status=503,
            ) from exc
        if status >= 400:
            raise _error_from(status, resp_headers, raw, self.base_url)
        return raw.decode()

    # -- jobs ----------------------------------------------------------

    def job(self, job_id: str) -> dict:
        """One job's status/result (``GET /v1/jobs/<id>``)."""
        return self._request("GET", f"/v1/jobs/{job_id}")[0]

    def jobs(
        self,
        status: str | None = None,
        limit: int = 50,
        after: str | None = None,
    ) -> dict:
        """List jobs (``GET /v1/jobs``) with filter + cursor pagination.

        Returns ``{"jobs": [...], "next_after": ..., "counts": ...}``;
        pass the returned ``next_after`` back as ``after`` for the next
        page (None means the listing is exhausted).
        """
        query: dict = {"limit": limit}
        if status is not None:
            query["status"] = status
        if after is not None:
            query["after"] = after
        return self._request(
            "GET", "/v1/jobs?" + urllib.parse.urlencode(query)
        )[0]

    def events(self, job_id: str, timeout: float = 30.0) -> Iterator[dict]:
        """Follow a job's SSE stream (``GET /v1/jobs/<id>/events``).

        Yields status snapshots (payload excluded) as the server emits
        them; the stream ends at the job's terminal snapshot or after
        ``timeout`` seconds of long-poll.  Uses a dedicated connection
        — the server closes an event stream's socket when it ends.
        """
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout
        )
        headers = {"Accept": "text/event-stream"}
        if self.client_id is not None:
            headers["X-Repro-Client"] = self.client_id
        if self.trace_id is not None:
            headers[TRACE_HEADER] = self.trace_id
        try:
            conn.request(
                "GET", f"/v1/jobs/{job_id}/events?timeout={timeout:g}",
                headers=headers,
            )
            resp = conn.getresponse()
            if resp.status >= 400:
                resp_headers = {
                    name.lower(): value for name, value in resp.getheaders()
                }
                raise _error_from(
                    resp.status, resp_headers, resp.read(), self.base_url
                )
            for line in resp:
                line = line.strip()
                if not line.startswith(b"data: "):
                    continue
                reply = json.loads(line[len(b"data: "):])
                data = reply.get("data") if isinstance(reply, dict) else None
                yield data if isinstance(data, dict) else reply
        except (http.client.HTTPException, OSError) as exc:
            raise ServiceError(
                f"events stream for {job_id} broke: {exc}", status=503,
            ) from exc
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: float = 300.0) -> dict:
        """Follow a job to a terminal status; returns the full record.

        Event-driven: rides the long-poll events stream (reconnecting
        as each stream segment expires) instead of busy-polling, then
        fetches the payload-bearing record once the job settles.
        Raises a 504-grade :class:`ServiceError` at ``timeout``.
        """
        deadline = time.monotonic() + timeout
        last_status = "queued"
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"job {job_id} still {last_status} after {timeout:g}s",
                    status=504,
                )
            for snapshot in self.events(job_id, timeout=min(remaining, 30.0)):
                last_status = snapshot.get("status", last_status)
            if last_status not in _LIVE_STATUSES:
                return self.job(job_id)

    def wait_for(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.05,
    ) -> dict:
        """Deprecated alias of :meth:`wait` (``poll`` is ignored —
        waiting is event-driven now).  Removed with ``repro.service/3``."""
        del poll
        return self.wait(job_id, timeout=timeout)

    # -- sizing --------------------------------------------------------

    def _size_body(
        self,
        circuit: str | None,
        bench: str | None,
        delay_spec: float | None,
        mode: str | None,
        flow_backend: str | None,
        options: dict | None,
        kind: str | None = None,
    ) -> dict:
        body: dict = {}
        if circuit is not None:
            body["circuit"] = circuit
        if bench is not None:
            body["bench"] = bench
        if delay_spec is not None:
            body["delay_spec"] = delay_spec
        if kind is not None:
            body["kind"] = kind
        if mode is not None:
            body["mode"] = mode
        if flow_backend is not None:
            body["flow_backend"] = flow_backend
        if options is not None:
            body["options"] = options
        return body

    def size(
        self,
        circuit: str | None = None,
        bench: str | None = None,
        delay_spec: float | None = None,
        mode: str | None = None,
        flow_backend: str | None = None,
        options: dict | None = None,
        wait: bool = True,
        wait_timeout: float = 300.0,
        kind: str | None = None,
    ) -> dict:
        """Size a netlist (``POST /v1/size``) and return the job body.

        Pass either ``circuit`` (a token the server can resolve) or
        ``bench`` (inline netlist text).  With ``wait=True`` (default)
        the call returns a *finished* job, payload included — if the
        server degraded the synchronous request to a 202 ticket (fleet
        mode under load), the client keeps waiting client-side up to
        ``wait_timeout``.  ``wait=False`` is :meth:`submit`.
        ``kind`` selects the job kind (``sizing`` default, or
        ``wphase`` — the batchable kernel workload).
        """
        if not wait:
            return self.submit(
                circuit=circuit, bench=bench, delay_spec=delay_spec,
                mode=mode, flow_backend=flow_backend, options=options,
                kind=kind,
            )
        body = self._size_body(
            circuit, bench, delay_spec, mode, flow_backend, options, kind
        )
        data, status = self._request("POST", "/v1/size", body)
        if status == 202 and data.get("status") in _LIVE_STATUSES:
            return self.wait(data["id"], timeout=wait_timeout)
        return data

    def submit(
        self,
        circuit: str | None = None,
        bench: str | None = None,
        delay_spec: float | None = None,
        mode: str | None = None,
        flow_backend: str | None = None,
        options: dict | None = None,
        kind: str | None = None,
    ) -> dict:
        """Queue a sizing (``POST /v1/size`` with ``async=true``).

        Returns immediately with the job ticket (id + status); follow
        it with :meth:`wait`, :meth:`events`, or :meth:`job`.
        """
        body = self._size_body(
            circuit, bench, delay_spec, mode, flow_backend, options, kind
        )
        body["async"] = True
        return self._request("POST", "/v1/size", body)[0]


def _error_from(
    status: int, headers: dict, raw: bytes, base_url: str,
) -> ServiceError:
    """Build the :class:`ServiceError` for one structured error reply."""
    retry_after: float | None = None
    try:
        error = json.loads(raw)["error"]
        message = error["message"]
        value = error.get("retry_after")
        if isinstance(value, (int, float)):
            retry_after = float(value)
    except (json.JSONDecodeError, KeyError, TypeError):
        message = raw.decode(errors="replace").strip() or (
            f"HTTP {status} from {base_url}"
        )
    if retry_after is None:
        header = headers.get("retry-after")
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                pass
    return ServiceError(message, status=status, retry_after=retry_after)
