"""JSON-over-HTTP front end for the sizing service (stdlib only).

A :class:`ThreadingHTTPServer` whose handler translates the v1 REST
surface onto one shared :class:`~repro.service.app.SizingService`:

========================  =============================================
``POST /v1/size``         size a netlist; ``"async": true`` queues and
                          answers 202 with a job id
``GET /v1/jobs/<id>``     job status + full result when available
``GET /v1/circuits``      the benchmark suite + accepted token forms
``GET /v1/backends``      registered flow backends and capabilities
``GET /v1/healthz``       liveness probe
``GET /v1/stats``         job counts, cache hits, aggregated SolveStats
========================  =============================================

Every response body is JSON rendered with
:func:`repro.sizing.serialize.canonical_json` (sorted keys, compact) —
so two requests served from the same cache entry return byte-identical
``payload`` objects.  Every error, including malformed JSON and
unknown routes, is a structured ``{"error": {"status", "message"}}``
body with the matching HTTP status, raised internally as
:class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ReproError, ServiceError
from repro.flow.registry import registered_backends
from repro.generators.iscas import SUITE
from repro.service.app import SizingService
from repro.sizing.serialize import canonical_json

__all__ = ["WIRE_SCHEMA", "SizingHTTPServer", "make_server", "serve"]

#: Identifier of the wire format carried by every 2xx response.  Bump
#: the suffix when a response field changes meaning; clients should
#: reject families they do not know.
WIRE_SCHEMA = "repro.service/1"

#: Maximum accepted request-body size (16 MiB) — far above any real
#: netlist, low enough that a runaway client cannot balloon the heap.
MAX_BODY_BYTES = 16 << 20


def _job_body(record, payload) -> dict:
    """Wire view of one job record, embedding the payload when known."""
    body = record.to_wire()
    body["payload"] = payload
    return body


class _Handler(BaseHTTPRequestHandler):
    """Route the v1 surface; every exception becomes structured JSON."""

    server: "SizingHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        """Access logging, routed through the server's quiet flag."""
        if not self.server.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(self, status: int, body: dict) -> None:
        # HTTP/1.1 keep-alive: any request body still sitting unread on
        # the socket (an error answered before _read_body ran) would be
        # parsed as the *next* request line — drain it first.
        self._drain_body()
        data = (canonical_json(body) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _drain_body(self) -> None:
        if getattr(self, "_body_consumed", True):
            return
        self._body_consumed = True
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return
        if length > MAX_BODY_BYTES:
            # Refusing to read an oversized body is the point of the
            # 413; give up on connection reuse instead of draining it.
            self.close_connection = True
            return
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 1 << 16))
            if not chunk:
                break
            remaining -= len(chunk)

    def _send_error_body(self, status: int, message: str) -> None:
        self._send_json(status, {
            "schema": WIRE_SCHEMA,
            "error": {"status": status, "message": message},
        })

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._body_consumed = True
            raise ServiceError("request body required (JSON object)")
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body exceeds {MAX_BODY_BYTES} bytes", status=413
            )
        raw = self.rfile.read(length)
        self._body_consumed = True
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object")
        return body

    def _dispatch(self, method: str) -> None:
        service = self.server.service
        self._body_consumed = False
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            if method == "POST" and path == "/v1/size":
                self._post_size(service)
            elif method == "GET" and path.startswith("/v1/jobs/"):
                record, payload = service.get_job(path.rsplit("/", 1)[1])
                self._send_json(200, {
                    "schema": WIRE_SCHEMA, **_job_body(record, payload),
                })
            elif method == "GET" and path == "/v1/jobs":
                self._send_json(200, {
                    "schema": WIRE_SCHEMA, "counts": service.store.counts(),
                })
            elif method == "GET" and path == "/v1/circuits":
                self._send_json(200, _circuits_body())
            elif method == "GET" and path == "/v1/backends":
                self._send_json(200, _backends_body())
            elif method == "GET" and path == "/v1/healthz":
                self._send_json(200, {
                    "schema": WIRE_SCHEMA, "status": "ok",
                    "workers": service.jobs,
                })
            elif method == "GET" and path == "/v1/stats":
                self._send_json(200, {
                    "schema": WIRE_SCHEMA, **service.stats(),
                })
            elif path in _ROUTES and method != _ROUTES[path]:
                raise ServiceError(
                    f"{method} not allowed on {path} "
                    f"(use {_ROUTES[path]})", status=405,
                )
            else:
                raise ServiceError(f"no such endpoint {path!r}", status=404)
        except ServiceError as exc:
            self._send_error_body(exc.status, str(exc))
        except ReproError as exc:
            # Library-level rejection of otherwise well-formed input
            # (bad netlist structure, unknown option value, ...).
            self._send_error_body(400, str(exc))
        except Exception as exc:  # noqa: BLE001 — a handler must answer
            self._send_error_body(500, f"{type(exc).__name__}: {exc}")

    def _post_size(self, service: SizingService) -> None:
        body = self._read_body()
        wants_async = bool(body.get("async", False))
        if wants_async:
            record = service.size_async(body)
            payload = record.payload if record.done else None
            self._send_json(202 if not record.done else 200, {
                "schema": WIRE_SCHEMA, **_job_body(record, payload),
            })
        else:
            record = service.size_sync(body)
            self._send_json(200, {
                "schema": WIRE_SCHEMA, **_job_body(record, record.payload),
            })

    # BaseHTTPRequestHandler dispatches on these names.
    def do_GET(self) -> None:  # noqa: N802 (stdlib-required name)
        """Serve the read-only endpoints."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (stdlib-required name)
        """Serve ``/v1/size``."""
        self._dispatch("POST")


#: Method routing for precise 405s on known paths.
_ROUTES = {
    "/v1/size": "POST",
    "/v1/jobs": "GET",
    "/v1/circuits": "GET",
    "/v1/backends": "GET",
    "/v1/healthz": "GET",
    "/v1/stats": "GET",
}


def _circuits_body() -> dict:
    """Discovery payload: the suite plus the accepted token grammar."""
    return {
        "schema": WIRE_SCHEMA,
        "circuits": [
            {
                "name": spec.name,
                "paper_gates": spec.paper_gates,
                "delay_spec": spec.delay_spec,
                "tier": spec.tier,
            }
            for spec in SUITE
        ],
        "token_forms": [
            "a suite name listed under 'circuits'",
            "rca:N — ripple-carry adder of width N",
            "a server-side path to a .bench file",
            "or POST inline netlist text as 'bench' instead of 'circuit'",
        ],
    }


def _backends_body() -> dict:
    """Discovery payload: the flow registry's backends + capabilities."""
    return {
        "schema": WIRE_SCHEMA,
        "backends": [
            {
                "name": backend.name,
                "priority": backend.priority,
                "available": bool(backend.available()),
                "capabilities": asdict(backend.capabilities),
            }
            for backend in registered_backends()
        ],
    }


class SizingHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`SizingService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: SizingService,
                 quiet: bool = False):
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet


def make_server(
    service: SizingService, host: str = "127.0.0.1", port: int = 0,
    quiet: bool = False,
) -> SizingHTTPServer:
    """Bind (but do not run) a server; ``port=0`` picks a free port.

    The caller owns the loop: call ``serve_forever()`` (typically on a
    thread), and ``shutdown()`` + ``server_close()`` + the service's
    ``close()`` to stop.  Tests and the example use this entry point.
    """
    return SizingHTTPServer((host, port), service, quiet=quiet)


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    jobs: int = 1,
    cache: str | None = None,
    run_dir: str | None = None,
    timeout: float | None = None,
) -> int:
    """Run the sizing service until interrupted (the CLI entry point).

    ``cache=None`` means the default campaign cache directory; pass
    ``cache=""`` to disable caching.  Returns the process exit code.
    """
    from repro.runner import DEFAULT_CACHE_DIR

    cache_arg: str | None = cache if cache is not None else DEFAULT_CACHE_DIR
    if cache == "":
        cache_arg = None
    service = SizingService(
        jobs=jobs, cache=cache_arg, run_dir=run_dir, timeout=timeout,
    )
    server = make_server(service, host=host, port=port)
    host_shown, port_shown = server.server_address[:2]
    print(f"repro sizing service listening on http://{host_shown}:{port_shown}"
          f" ({jobs} worker{'s' if jobs != 1 else ''}, "
          f"cache {'off' if service.cache is None else service.cache.root})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0
