"""JSON-over-HTTP front end for the sizing service (stdlib only).

A :class:`ThreadingHTTPServer` whose handler translates the v1 REST
surface onto one shared :class:`~repro.service.app.SizingService`:

==============================  =========================================
``POST /v1/size``               size a netlist; ``"async": true`` queues
                                and answers 202 with a job id
``GET /v1/jobs``                list jobs; ``?status=`` filter,
                                ``?limit=`` page size, ``?after=`` cursor
``GET /v1/jobs/<id>``           job status + full result when available
``GET /v1/jobs/<id>/events``    long-poll SSE stream of status changes
``GET /v1/circuits``            the benchmark suite + accepted tokens
``GET /v1/backends``            registered flow backends + capabilities
``GET /v1/healthz``             liveness probe; reports ``degraded``
                                when the shared-cache breaker is open
                                or jobs sit in the dead-letter queue
``GET /v1/stats``               job counts, cache hits, queue + admission
                                counters, aggregated SolveStats
==============================  =========================================

Every response body is JSON rendered with
:func:`repro.sizing.serialize.canonical_json` (sorted keys, compact) —
so two requests served from the same cache entry return byte-identical
``payload`` objects.  The **wire envelope** is uniform: every success
carries its result under ``"data"`` and every failure — malformed
JSON, unknown routes, admission rejections — is a structured
``{"error": {"status", "message"}}`` body with the matching HTTP
status, raised internally as :class:`~repro.errors.ServiceError`.
Admission rejections (429) additionally carry ``Retry-After`` and
``X-Repro-Queue-Depth`` headers.  Requests may identify themselves
with an ``X-Repro-Client`` header (quota identity); absent that, the
peer address is used.
"""

from __future__ import annotations

import json
import math
import urllib.parse
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ReproError, ServiceError
from repro.faults.injector import decide as fault_decide
from repro.flow.registry import registered_backends
from repro.generators.iscas import SUITE
from repro.obs.trace import (
    TRACE_HEADER,
    parse_trace_header,
    span,
    trace_scope,
)
from repro.service.app import SizingService
from repro.service.queue import MAX_ATTEMPTS
from repro.sizing.serialize import canonical_json

__all__ = ["WIRE_SCHEMA", "SizingHTTPServer", "make_server", "serve"]

#: Identifier of the wire format carried by every response.  ``/2``
#: introduced the uniform ``{"data": ...}`` success envelope; for one
#: release the ``data`` fields are *also* mirrored at the top level so
#: ``/1`` clients keep working — that shim goes away with ``/3``.
WIRE_SCHEMA = "repro.service/2"

#: Longest long-poll an events stream accepts, seconds.
MAX_EVENTS_TIMEOUT = 300.0

#: Maximum accepted request-body size (16 MiB) — far above any real
#: netlist, low enough that a runaway client cannot balloon the heap.
MAX_BODY_BYTES = 16 << 20


def _job_body(record, payload) -> dict:
    """Wire view of one job record, embedding the payload when known."""
    body = record.to_wire()
    body["payload"] = payload
    return body


class _Handler(BaseHTTPRequestHandler):
    """Route the v1 surface; every exception becomes structured JSON."""

    server: "SizingHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        """Access logging, routed through the server's quiet flag."""
        if not self.server.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(
        self, status: int, body: dict, headers: dict | None = None,
    ) -> None:
        # HTTP/1.1 keep-alive: any request body still sitting unread on
        # the socket (an error answered before _read_body ran) would be
        # parsed as the *next* request line — drain it first.
        self._drain_body()
        data = (canonical_json(body) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self._write_payload(data)

    def _write_payload(self, data: bytes) -> None:
        """Write a response body, honoring the truncation fault probe.

        When an installed injector's ``http.response:truncate`` rule
        fires, only half the advertised ``Content-Length`` is written
        and the connection drops — exactly what a mid-flight network
        failure looks like to the client (an ``IncompleteRead``),
        which is what the client's retry loop exists to absorb.
        """
        if fault_decide("http.response"):
            self.wfile.write(data[: len(data) // 2])
            self.wfile.flush()
            self.close_connection = True
            return
        self.wfile.write(data)

    def _send_data(self, status: int, data: dict) -> None:
        """Send one success reply in the uniform ``data`` envelope.

        The one-release ``/1`` compat shim: every ``data`` field is
        mirrored at the top level (never clobbering the envelope's own
        keys), so clients written against the flat ``/1`` bodies keep
        reading the same fields.
        """
        body = {"schema": WIRE_SCHEMA, "data": data}
        for key, value in data.items():
            if key not in body:
                body[key] = value
        self._send_json(status, body)

    def _drain_body(self) -> None:
        if getattr(self, "_body_consumed", True):
            return
        self._body_consumed = True
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return
        if length > MAX_BODY_BYTES:
            # Refusing to read an oversized body is the point of the
            # 413; give up on connection reuse instead of draining it.
            self.close_connection = True
            return
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 1 << 16))
            if not chunk:
                break
            remaining -= len(chunk)

    def _send_error_body(
        self, status: int, message: str, retry_after: float | None = None,
    ) -> None:
        error: dict = {"status": status, "message": message}
        headers: dict = {}
        if retry_after is not None:
            error["retry_after"] = retry_after
            headers["Retry-After"] = str(max(1, math.ceil(retry_after)))
        if status == 429:
            # How deep the backlog the rejection protected actually is —
            # lets a client distinguish "queue full" from "my quota".
            try:
                depth = self.server.service.store.depth()
            except Exception:  # noqa: BLE001 — headers must not 500
                depth = None
            if depth is not None:
                headers["X-Repro-Queue-Depth"] = str(depth)
        self._send_json(status, {
            "schema": WIRE_SCHEMA, "error": error,
        }, headers)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._body_consumed = True
            raise ServiceError("request body required (JSON object)")
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body exceeds {MAX_BODY_BYTES} bytes", status=413
            )
        raw = self.rfile.read(length)
        self._body_consumed = True
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object")
        return body

    def _client(self) -> str:
        """The quota identity: ``X-Repro-Client`` header or peer address."""
        return (
            self.headers.get("X-Repro-Client") or self.client_address[0]
        )

    def send_response(self, code: int, message: str | None = None) -> None:
        """Stdlib hook, extended to record the status for the request
        counter and echo the request's trace id back to the client."""
        self._last_status = code
        BaseHTTPRequestHandler.send_response(self, code, message)
        if getattr(self, "_trace_id", None):
            self.send_header(TRACE_HEADER, self._trace_id)

    def _dispatch(self, method: str) -> None:
        """Trace + count one request, then route it.

        With tracing on, the request runs inside a trace context —
        resumed from the client's ``X-Repro-Trace`` header when one is
        sent, fresh otherwise — under an ``http.request`` span, and the
        response carries the trace id back.  The request counter uses a
        *normalized* route label (``/v1/jobs/<id>``), never the raw
        path: a label per job id would grow the registry without bound.
        """
        service = self.server.service
        route = _route_label(self.path)
        self._last_status = 0
        self._trace_id = None
        if service.trace:
            tid, parent = parse_trace_header(self.headers.get(TRACE_HEADER))
            with trace_scope(
                sink=service.trace_sink, trace_id=tid, parent_id=parent,
            ) as ctx:
                self._trace_id = ctx.trace_id
                with span("http.request", method=method, route=route) as sp:
                    self._route(method)
                    sp.set(code=self._last_status)
        else:
            self._route(method)
        service._m_http.inc(
            method=method, route=route, code=str(self._last_status),
        )

    def _route(self, method: str) -> None:
        service = self.server.service
        self._body_consumed = False
        path, _, query = self.path.partition("?")
        path = path.rstrip("/")
        params = urllib.parse.parse_qs(query)
        try:
            parts = path.split("/")
            if method == "POST" and path == "/v1/size":
                self._post_size(service)
            elif (
                method == "GET" and len(parts) == 5
                and path.startswith("/v1/jobs/") and parts[4] == "events"
            ):
                self._get_events(service, parts[3], params)
            elif method == "GET" and len(parts) == 4 and (
                path.startswith("/v1/jobs/")
            ):
                record, payload = service.get_job(parts[3])
                self._send_data(200, _job_body(record, payload))
            elif method == "GET" and path == "/v1/jobs":
                self._get_jobs(service, params)
            elif method == "GET" and path == "/v1/circuits":
                self._send_data(200, _circuits_body())
            elif method == "GET" and path == "/v1/backends":
                self._send_data(200, _backends_body())
            elif method == "GET" and path == "/v1/healthz":
                self._send_data(200, service.health())
            elif method == "GET" and path == "/v1/stats":
                self._send_data(200, service.stats())
            elif method == "GET" and path == "/v1/metrics":
                self._send_metrics(service)
            elif path in _ROUTES and method != _ROUTES[path]:
                raise ServiceError(
                    f"{method} not allowed on {path} "
                    f"(use {_ROUTES[path]})", status=405,
                )
            else:
                raise ServiceError(f"no such endpoint {path!r}", status=404)
        except ServiceError as exc:
            self._send_error_body(exc.status, str(exc), exc.retry_after)
        except ReproError as exc:
            # Library-level rejection of otherwise well-formed input
            # (bad netlist structure, unknown option value, ...).
            self._send_error_body(400, str(exc))
        except Exception as exc:  # noqa: BLE001 — a handler must answer
            self._send_error_body(500, f"{type(exc).__name__}: {exc}")

    def _post_size(self, service: SizingService) -> None:
        body = self._read_body()
        wants_async = bool(body.get("async", False))
        sizer = service.size_async if wants_async else service.size_sync
        record = sizer(body, self._client())
        # One rule for both modes: a terminal record is a 200 with its
        # payload; anything still in flight — an async ticket, or a
        # synchronous wait that hit its queue-mode deadline — is a 202.
        payload = record.payload if record.done else None
        self._send_data(200 if record.done else 202,
                        _job_body(record, payload))

    def _send_metrics(self, service: SizingService) -> None:
        """Serve ``GET /v1/metrics`` as raw Prometheus text exposition
        (the one endpoint outside the JSON envelope — scrapers speak
        the text format, not our wire schema)."""
        self._drain_body()
        data = service.metrics_text().encode()
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self._write_payload(data)

    def _get_jobs(self, service: SizingService, params: dict) -> None:
        status = _one(params, "status")
        limit = _int_param(params, "limit", 50)
        after = _one(params, "after")
        records, next_after = service.list_jobs(
            status=status, limit=limit, after=after,
        )
        self._send_data(200, {
            "jobs": [record.to_wire() for record in records],
            "next_after": next_after,
            "counts": service.store.counts(),
        })

    def _get_events(
        self, service: SizingService, job_id: str, params: dict,
    ) -> None:
        """Stream a job's status snapshots as server-sent events.

        Each event is a ``data:`` line carrying the enveloped record;
        the stream ends at the terminal snapshot or at ``?timeout=``
        seconds (default 30, capped).  The connection closes with the
        stream — a reconnecting client just re-requests.
        """
        timeout = _float_param(params, "timeout", 30.0)
        if not 0 < timeout <= MAX_EVENTS_TIMEOUT:
            raise ServiceError(
                f"timeout must be in (0, {MAX_EVENTS_TIMEOUT:g}] seconds, "
                f"got {timeout:g}"
            )
        stream = service.job_events(job_id, timeout)
        first = next(stream)  # 404s surface before headers are sent
        self._drain_body()
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        record = first
        while True:
            event = canonical_json({
                "schema": WIRE_SCHEMA, "data": record.to_wire(),
            })
            self.wfile.write(f"data: {event}\n\n".encode())
            self.wfile.flush()
            record = next(stream, None)
            if record is None:
                return

    # BaseHTTPRequestHandler dispatches on these names.
    def do_GET(self) -> None:  # noqa: N802 (stdlib-required name)
        """Serve the read-only endpoints."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (stdlib-required name)
        """Serve ``/v1/size``."""
        self._dispatch("POST")


def _one(params: dict, name: str) -> str | None:
    """The single value of query parameter ``name``, or None."""
    values = params.get(name)
    if not values:
        return None
    if len(values) > 1:
        raise ServiceError(f"query parameter {name!r} given more than once")
    return values[0]


def _int_param(params: dict, name: str, default: int) -> int:
    """An integer query parameter with a default; bad values are 400s."""
    raw = _one(params, name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise ServiceError(
            f"query parameter {name!r} must be an integer, got {raw!r}"
        ) from exc


def _float_param(params: dict, name: str, default: float) -> float:
    """A float query parameter with a default; bad values are 400s."""
    raw = _one(params, name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError as exc:
        raise ServiceError(
            f"query parameter {name!r} must be a number, got {raw!r}"
        ) from exc


#: Method routing for precise 405s on known paths.
_ROUTES = {
    "/v1/size": "POST",
    "/v1/jobs": "GET",
    "/v1/circuits": "GET",
    "/v1/backends": "GET",
    "/v1/healthz": "GET",
    "/v1/stats": "GET",
    "/v1/metrics": "GET",
}


def _route_label(path: str) -> str:
    """Collapse a request path to a bounded-cardinality route label."""
    path = path.partition("?")[0].rstrip("/")
    parts = path.split("/")
    if path.startswith("/v1/jobs/") and len(parts) == 5 and (
        parts[4] == "events"
    ):
        return "/v1/jobs/<id>/events"
    if path.startswith("/v1/jobs/") and len(parts) == 4:
        return "/v1/jobs/<id>"
    if path in _ROUTES:
        return path
    return "(other)"


def _circuits_body() -> dict:
    """Discovery payload: the suite plus the accepted token grammar."""
    return {
        "schema": WIRE_SCHEMA,
        "circuits": [
            {
                "name": spec.name,
                "paper_gates": spec.paper_gates,
                "delay_spec": spec.delay_spec,
                "tier": spec.tier,
            }
            for spec in SUITE
        ],
        "token_forms": [
            "a suite name listed under 'circuits'",
            "rca:N — ripple-carry adder of width N",
            "a server-side path to a .bench file",
            "or POST inline netlist text as 'bench' instead of 'circuit'",
        ],
    }


def _backends_body() -> dict:
    """Discovery payload: the flow registry's backends + capabilities."""
    return {
        "schema": WIRE_SCHEMA,
        "backends": [
            {
                "name": backend.name,
                "priority": backend.priority,
                "available": bool(backend.available()),
                "capabilities": asdict(backend.capabilities),
            }
            for backend in registered_backends()
        ],
    }


class SizingHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`SizingService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: SizingService,
                 quiet: bool = False):
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet


def make_server(
    service: SizingService, host: str = "127.0.0.1", port: int = 0,
    quiet: bool = False,
) -> SizingHTTPServer:
    """Bind (but do not run) a server; ``port=0`` picks a free port.

    The caller owns the loop: call ``serve_forever()`` (typically on a
    thread), and ``shutdown()`` + ``server_close()`` + the service's
    ``close()`` to stop.  Tests and the example use this entry point.
    """
    return SizingHTTPServer((host, port), service, quiet=quiet)


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    jobs: int = 1,
    cache: str | None = None,
    run_dir: str | None = None,
    timeout: float | None = None,
    queue: str | None = None,
    max_queue_depth: int | None = None,
    quota_rate: float | None = None,
    quota_burst: float | None = None,
    batch_drain: int | None = None,
    trace: bool = True,
    warm_corpus: str | None = None,
    visibility_timeout: float = 600.0,
    max_attempts: int = MAX_ATTEMPTS,
    faults: str | None = None,
    fault_seed: int = 0,
) -> int:
    """Run the sizing service until interrupted (the CLI entry point).

    ``cache=None`` means the default campaign cache directory; pass
    ``cache=""`` to disable caching, or a backend spec (``disk:`` /
    ``sqlite:`` / ``tiered:``) to share the cache across replicas.
    ``queue`` (a database path shared by all replicas) turns this
    process into one replica of a fleet; ``max_queue_depth`` and
    ``quota_rate``/``quota_burst`` configure admission control;
    ``batch_drain`` (queue mode) fuses leased batchable jobs into
    stacked kernel calls; ``trace=False`` (``--no-trace``) disables
    span collection; ``warm_corpus`` (a backend spec) turns on corpus
    warm starts for cache misses (results stay bitwise identical to
    cold runs).

    Failure knobs: ``visibility_timeout`` is the queue lease duration
    before a dead replica's jobs are re-claimed; ``max_attempts``
    bounds re-leases before a job is poison-parked (``--max-attempts``,
    replacing the old hardwired constant); ``faults``/``fault_seed``
    install a deterministic fault-injection schedule for chaos drills
    (``--faults "worker:kill@0.05*2;cache.get:io_error@0.1"``).
    Returns the process exit code.
    """
    from repro.runner import DEFAULT_CACHE_DIR

    cache_arg: str | None = cache if cache is not None else DEFAULT_CACHE_DIR
    if cache == "":
        cache_arg = None
    service = SizingService(
        jobs=jobs, cache=cache_arg, run_dir=run_dir, timeout=timeout,
        queue=queue, max_queue_depth=max_queue_depth,
        quota_rate=quota_rate, quota_burst=quota_burst,
        batch_drain=batch_drain, trace=trace, warm_corpus=warm_corpus,
        visibility_timeout=visibility_timeout, max_attempts=max_attempts,
        faults=faults, fault_seed=fault_seed,
    )
    server = make_server(service, host=host, port=port)
    host_shown, port_shown = server.server_address[:2]
    cache_shown = "off" if service.cache is None else service.cache.describe()
    queue_shown = f", queue {queue}" if queue else ""
    print(f"repro sizing service listening on http://{host_shown}:{port_shown}"
          f" ({jobs} worker{'s' if jobs != 1 else ''}, "
          f"cache {cache_shown}{queue_shown})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0
