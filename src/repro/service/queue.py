"""Durable work-queue job store: one job stream for N serve replicas.

:class:`WorkQueue` is the fleet-shaped counterpart of the in-process
:class:`~repro.service.jobs.JobStore`: the same record surface
(``create`` / ``get`` / ``finish`` / ``counts`` / ``list`` / ``wait``)
backed by one SQLite database (WAL mode) that any number of *serve
processes* open concurrently.  A submission enqueues a ``queued`` row;
drain workers — in any replica — claim work with :meth:`lease`, which
atomically flips the oldest claimable row to ``running`` under a
**visibility timeout**: if the leasing worker dies (process crash,
power cut), the lease expires and another worker re-claims the job,
so a job submitted anywhere eventually runs somewhere.  Execution is
therefore *at-least-once*; results are deterministic and
content-addressed, so a double execution settles on byte-identical
cache entries and the second ``finish`` is a harmless overwrite.

Rows double as the durable job record: terminal status, summary,
error, wall time and the (JSON) result payload live in the row, which
is what lets ``GET /v1/jobs/<id>`` answer on any replica for a job
another replica executed — even with caching disabled.  A job whose
lease expired ``max_attempts`` times (default :data:`MAX_ATTEMPTS`,
operator-tunable via ``serve --max-attempts``) is failed permanently
rather than crash-looping the fleet; every reclaim and failure is
appended to the row's ``history`` column, so the dead-letter tooling
(``python -m repro queue inspect``) can show *why* a job went poison
and ``queue requeue`` can send it back after a fix.

Queue sqlite operations run under a shared retry policy
(:mod:`repro.faults.retry`): ``database is locked`` under replica
contention — or an injected ``queue.lease:busy`` fault — is backed
off and retried instead of surfacing to the drain loop.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path

from repro.errors import ServiceError
from repro.faults.injector import probe
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.runner.executor import JobOutcome
from repro.runner.progress import job_summary
from repro.runner.spec import Job
from repro.service.jobs import JobRecord

__all__ = ["MAX_ATTEMPTS", "WorkQueue"]

#: Default lease claims per job before it is failed permanently — a
#: job that kills its worker three times is poison, not unlucky.
MAX_ATTEMPTS = 3

#: Backoff for contended/injected sqlite failures on queue operations.
_QUEUE_RETRY = RetryPolicy(
    attempts=4, base_delay=0.02, max_delay=0.5,
    retryable=(sqlite3.OperationalError,),
)

_SCHEMA = """
    CREATE TABLE IF NOT EXISTS jobs (
        seq INTEGER PRIMARY KEY AUTOINCREMENT,
        id TEXT UNIQUE NOT NULL,
        job TEXT NOT NULL,
        label TEXT,
        key TEXT,
        client TEXT,
        status TEXT NOT NULL DEFAULT 'queued',
        created_at REAL NOT NULL,
        lease_owner TEXT,
        lease_expires REAL,
        attempts INTEGER NOT NULL DEFAULT 0,
        cached INTEGER NOT NULL DEFAULT 0,
        wall_seconds REAL,
        duration_s REAL,
        summary TEXT,
        error TEXT,
        payload TEXT,
        finished_at REAL,
        trace TEXT,
        warm TEXT
    )
"""

#: Columns added after the first shipped schema; existing databases
#: are migrated in place with guarded ``ALTER TABLE`` on open.
_MIGRATIONS = (
    ("duration_s", "REAL"),
    ("trace", "TEXT"),
    ("warm", "TEXT"),
    ("history", "TEXT"),
)


class WorkQueue:
    """SQLite-backed durable job queue + shared job record store.

    ``path`` is the database file every replica opens;
    ``visibility_timeout`` is how long a lease holds before the job is
    considered abandoned and re-claimable (make it comfortably longer
    than the worst job, or pair it with a per-job ``timeout`` so jobs
    cannot outlive their lease); ``max_attempts`` is how many lease
    claims a job gets before it is failed permanently (poison).
    """

    def __init__(
        self,
        path: str | Path,
        visibility_timeout: float = 600.0,
        metrics=None,
        max_attempts: int = MAX_ATTEMPTS,
    ):
        if visibility_timeout <= 0:
            raise ServiceError(
                f"visibility_timeout must be positive, "
                f"got {visibility_timeout}", status=500,
            )
        if int(max_attempts) < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {max_attempts}", status=500,
            )
        self.path = Path(path)
        self.visibility_timeout = visibility_timeout
        self.max_attempts = int(max_attempts)
        self._local = threading.local()
        # Monotonic admit anchors for duration_s (this process only).
        self._anchor_lock = threading.Lock()
        self._created_mono: dict[str, float] = {}
        self._m_reclaims = self._m_poison = None
        if metrics is not None:
            self._m_reclaims = metrics.counter(
                "repro_queue_lease_reclaims_total",
                "Expired leases re-claimed from presumed-dead workers.",
            )
            self._m_poison = metrics.counter(
                "repro_queue_poison_jobs_total",
                "Jobs failed permanently after exhausting lease attempts.",
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._txn() as conn:
            conn.execute(_SCHEMA)
            conn.execute(
                "CREATE INDEX IF NOT EXISTS jobs_status ON jobs (status)"
            )
        conn = self._connect()
        for column, decl in _MIGRATIONS:
            try:
                conn.execute(f"ALTER TABLE jobs ADD COLUMN {column} {decl}")
            except sqlite3.OperationalError:
                pass  # column already present (post-migration schema)

    # -- connection plumbing ------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path, timeout=30.0)
            conn.row_factory = sqlite3.Row
            conn.isolation_level = None  # explicit transactions only
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            self._local.conn = conn
        return conn

    class _Txn:
        """``BEGIN IMMEDIATE`` write transaction (cross-process atomic)."""

        def __init__(self, conn: sqlite3.Connection):
            self.conn = conn

        def __enter__(self) -> sqlite3.Connection:
            self.conn.execute("BEGIN IMMEDIATE")
            return self.conn

        def __exit__(self, exc_type, exc, tb) -> None:
            if exc_type is None:
                self.conn.execute("COMMIT")
            else:
                self.conn.execute("ROLLBACK")

    def _txn(self) -> "WorkQueue._Txn":
        return WorkQueue._Txn(self._connect())

    # -- record construction ------------------------------------------

    @staticmethod
    def _record(row: sqlite3.Row) -> JobRecord:
        """Materialize one row as the service's common JobRecord.

        Raises :class:`~repro.errors.ServiceError` (500) when the
        row's ``job`` column does not parse — a torn write from a
        crashed replica.  :meth:`lease` quarantines such rows instead
        of crash-looping on them; :meth:`list` skips them.
        """
        try:
            job = Job.from_dict(json.loads(row["job"]))
        except Exception as exc:
            raise ServiceError(
                f"job {row['id']!r} has an unreadable record "
                f"(torn write?): {exc}", status=500,
            ) from exc
        return JobRecord(
            id=row["id"],
            job=job,
            key=row["key"],
            created_at=row["created_at"],
            status=row["status"],
            cached=bool(row["cached"]),
            wall_seconds=row["wall_seconds"],
            duration_s=row["duration_s"],
            summary=json.loads(row["summary"]) if row["summary"] else None,
            error=row["error"],
            finished_at=row["finished_at"],
            trace=row["trace"],
            warm=json.loads(row["warm"]) if row["warm"] else None,
            payload=json.loads(row["payload"]) if row["payload"] else None,
        )

    @staticmethod
    def _history(row: sqlite3.Row) -> list[dict]:
        """The row's parsed attempt history (empty when absent/torn)."""
        raw = row["history"] if "history" in row.keys() else None
        if not raw:
            return []
        try:
            history = json.loads(raw)
        except json.JSONDecodeError:
            return []
        return history if isinstance(history, list) else []

    @staticmethod
    def _append_history(
        conn: sqlite3.Connection, seq: int, row: sqlite3.Row, entry: dict,
    ) -> None:
        """Append one event to the row's history inside the caller's
        transaction (bounded: the newest 50 events are kept)."""
        history = WorkQueue._history(row)
        history.append(entry)
        conn.execute(
            "UPDATE jobs SET history = ? WHERE seq = ?",
            (json.dumps(history[-50:]), seq),
        )

    # -- the JobStore-compatible surface ------------------------------

    def create(
        self,
        job: Job,
        key: str | None,
        client: str | None = None,
        trace: str | None = None,
    ) -> JobRecord:
        """Enqueue a job: insert a ``queued`` row, allocate its id.

        ``trace`` rides in the row, which is how a trace id crosses
        from the submitting replica to whichever replica drains the
        job.
        """
        created_at = time.time()
        created_mono = time.monotonic()

        def _insert() -> str:
            probe("queue.publish")
            with self._txn() as conn:
                cursor = conn.execute(
                    "INSERT INTO jobs (id, job, label, key, client, status, "
                    "created_at, trace) VALUES ('', ?, ?, ?, ?, 'queued', ?, ?)",
                    (
                        json.dumps(job.to_dict()), job.label(), key, client,
                        created_at, trace,
                    ),
                )
                seq = cursor.lastrowid
                new_id = f"j{seq:06d}"
                conn.execute(
                    "UPDATE jobs SET id = ? WHERE seq = ?", (new_id, seq)
                )
            return new_id

        job_id = call_with_retry(_insert, _QUEUE_RETRY, "queue.publish")
        with self._anchor_lock:
            self._created_mono[job_id] = created_mono
        return JobRecord(
            id=job_id, job=job, key=key, created_at=created_at, trace=trace,
            created_mono=created_mono,
        )

    def get(self, job_id: str) -> JobRecord:
        """Look a job up by id; unknown ids are a 404-grade error."""
        row = self._connect().execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise ServiceError(f"no such job {job_id!r}", status=404)
        return self._record(row)

    def mark_running(self, job_id: str) -> None:
        """Flip a queued job to ``running`` (the local direct-run path)."""
        with self._txn() as conn:
            conn.execute(
                "UPDATE jobs SET status = 'running', lease_expires = ? "
                "WHERE id = ? AND status = 'queued'",
                (time.time() + self.visibility_timeout, job_id),
            )

    def finish(self, job_id: str, outcome: JobOutcome) -> JobRecord:
        """Record a job's outcome; returns the stored snapshot."""
        summary = job_summary(outcome)
        with self._anchor_lock:
            anchor = self._created_mono.pop(job_id, None)
        # Monotonic admit-to-finish latency when this process saw both
        # ends; a queue-sharing replica that only executed falls back
        # to the outcome's own monotonic duration.
        duration_s = (
            time.monotonic() - anchor
            if anchor is not None
            else outcome.duration_s
        )
        warm = outcome.warm_summary()

        def _write() -> None:
            probe("queue.publish")
            with self._txn() as conn:
                conn.execute(
                    "UPDATE jobs SET status = ?, cached = ?, wall_seconds = ?, "
                    "duration_s = ?, summary = ?, error = ?, payload = ?, "
                    "finished_at = ?, warm = ?, lease_owner = NULL, "
                    "lease_expires = NULL WHERE id = ?",
                    (
                        outcome.status,
                        int(outcome.cached),
                        outcome.wall_seconds,
                        duration_s,
                        json.dumps(summary) if summary is not None else None,
                        outcome.error,
                        (
                            json.dumps(outcome.payload)
                            if outcome.payload is not None else None
                        ),
                        time.time(),
                        json.dumps(warm) if warm is not None else None,
                        job_id,
                    ),
                )
                if outcome.status in ("failed", "timeout"):
                    row = conn.execute(
                        "SELECT * FROM jobs WHERE id = ?", (job_id,)
                    ).fetchone()
                    if row is not None:
                        self._append_history(conn, row["seq"], row, {
                            "event": outcome.status,
                            "error": outcome.error,
                            "attempt": row["attempts"],
                            "ts": time.time(),
                        })

        call_with_retry(_write, _QUEUE_RETRY, "queue.publish")
        return self.get(job_id)

    def counts(self) -> dict[str, int]:
        """Job tally by status (for ``/v1/stats``), fleet-wide."""
        rows = self._connect().execute(
            "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
        ).fetchall()
        return {row["status"]: row["n"] for row in rows}

    def depth(self) -> int:
        """Admitted-but-unfinished jobs (queued + running), fleet-wide."""
        return self._connect().execute(
            "SELECT COUNT(*) FROM jobs "
            "WHERE status IN ('queued', 'running')"
        ).fetchone()[0]

    def list(
        self,
        status: str | None = None,
        limit: int = 50,
        after: str | None = None,
    ) -> tuple[list[JobRecord], str | None]:
        """Page through jobs in submission order.

        ``after`` is the opaque cursor (the last job id of the previous
        page); returns ``(records, next_after)`` where ``next_after``
        is None once the listing is exhausted.
        """
        conn = self._connect()
        clauses, params = [], []
        if status is not None:
            clauses.append("status = ?")
            params.append(status)
        if after is not None:
            row = conn.execute(
                "SELECT seq FROM jobs WHERE id = ?", (after,)
            ).fetchone()
            if row is None:
                raise ServiceError(f"unknown cursor {after!r}", status=400)
            clauses.append("seq > ?")
            params.append(row["seq"])
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = conn.execute(
            f"SELECT * FROM jobs {where} ORDER BY seq LIMIT ?",  # noqa: S608
            (*params, limit + 1),
        ).fetchall()
        page = rows[:limit]
        records = []
        for row in page:
            try:
                records.append(self._record(row))
            except ServiceError:
                continue  # torn row — visible via `queue inspect`, not here
        next_after = page[-1]["id"] if len(rows) > limit else None
        return records, next_after

    def wait(
        self, job_id: str, known_status: str | None, timeout: float,
    ) -> JobRecord:
        """Block until the job's status differs from ``known_status``.

        Cross-process, so change detection is a poll loop; returns the
        latest record either on a transition, on a terminal status, or
        at the deadline (caller inspects ``status`` to tell which).
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.get(job_id)
            if record.status != known_status or record.done:
                return record
            if time.monotonic() >= deadline:
                return record
            time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))

    def __len__(self) -> int:
        return self._connect().execute(
            "SELECT COUNT(*) FROM jobs"
        ).fetchone()[0]

    # -- the queue surface (drain workers) ----------------------------

    def _claim_one(self, owner: str):
        """One lease transaction: ``("empty"|"skip"|"claimed", row)``.

        ``skip`` means the candidate was disposed of (poisoned or
        quarantined) and the caller should look again.  The
        ``queue.lease`` fault probe fires inside the retried scope, so
        an injected ``busy`` is backed off exactly like real lock
        contention.
        """
        probe("queue.lease")
        now = time.time()
        with self._txn() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE status = 'queued' "
                "OR (status = 'running' AND lease_expires IS NOT NULL "
                "AND lease_expires < ?) ORDER BY seq LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return "empty", None
            if row["attempts"] >= self.max_attempts:
                error = (
                    f"lease expired {row['attempts']} times "
                    f"(visibility timeout {self.visibility_timeout:g}s); "
                    f"job failed permanently"
                )
                conn.execute(
                    "UPDATE jobs SET status = 'failed', error = ?, "
                    "finished_at = ?, lease_owner = NULL, "
                    "lease_expires = NULL WHERE seq = ?",
                    (error, now, row["seq"]),
                )
                self._append_history(conn, row["seq"], row, {
                    "event": "poison", "error": error,
                    "attempt": row["attempts"], "ts": now,
                })
                if self._m_poison is not None:
                    self._m_poison.inc()
                return "skip", None
            if row["status"] == "running":
                self._append_history(conn, row["seq"], row, {
                    "event": "reclaim",
                    "from_owner": row["lease_owner"],
                    "attempt": row["attempts"],
                    "ts": now,
                })
                if self._m_reclaims is not None:
                    self._m_reclaims.inc()
            conn.execute(
                "UPDATE jobs SET status = 'running', lease_owner = ?, "
                "lease_expires = ?, attempts = attempts + 1 "
                "WHERE seq = ?",
                (owner, now + self.visibility_timeout, row["seq"]),
            )
            claimed = conn.execute(
                "SELECT * FROM jobs WHERE seq = ?", (row["seq"],)
            ).fetchone()
        return "claimed", claimed

    def _quarantine_row(self, seq: int, error: str) -> None:
        """Permanently fail a row whose job column does not parse."""
        with self._txn() as conn:
            conn.execute(
                "UPDATE jobs SET status = 'failed', error = ?, "
                "finished_at = ?, lease_owner = NULL, lease_expires = NULL "
                "WHERE seq = ?",
                (error, time.time(), seq),
            )
        if self._m_poison is not None:
            self._m_poison.inc()

    def lease(self, owner: str) -> JobRecord | None:
        """Claim the oldest runnable job for ``owner``, or None.

        Runnable means ``queued``, or ``running`` with an expired lease
        (its worker is presumed dead).  The claim is one atomic write
        transaction, so two workers — in different processes — can
        never lease the same job twice concurrently.  A job at its
        ``max_attempts``-th claim is failed permanently instead of
        being leased again, and a row whose job spec does not parse (a
        torn write from a crashed replica) is quarantined as a
        permanent failure — visible to the dead-letter tooling, never
        crash-looping the drain workers.
        """
        while True:
            state, row = call_with_retry(
                lambda: self._claim_one(owner), _QUEUE_RETRY, "queue.lease",
            )
            if state == "empty":
                return None
            if state == "skip":
                continue
            try:
                return self._record(row)
            except ServiceError as exc:
                self._quarantine_row(row["seq"], str(exc))

    # -- dead-letter surface ------------------------------------------

    def failed_jobs(self, limit: int = 100) -> list[dict]:
        """Permanently failed jobs with their attempt history.

        Returns plain dicts (not :class:`JobRecord`) so rows whose job
        column is torn are still inspectable — the whole point of the
        dead-letter view is to show jobs that *cannot* be handled
        normally.
        """
        rows = self._connect().execute(
            "SELECT * FROM jobs WHERE status = 'failed' "
            "ORDER BY seq LIMIT ?", (limit,),
        ).fetchall()
        out = []
        for row in rows:
            out.append({
                "id": row["id"],
                "label": row["label"],
                "key": row["key"],
                "client": row["client"],
                "attempts": row["attempts"],
                "error": row["error"],
                "created_at": row["created_at"],
                "finished_at": row["finished_at"],
                "history": self._history(row),
            })
        return out

    def requeue(self, job_id: str) -> JobRecord:
        """Send a permanently failed job back to the queue.

        Resets the attempt counter (the operator presumably fixed the
        cause) and appends a ``requeue`` event to the job's history.
        Only ``failed`` jobs can be requeued.
        """
        with self._txn() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                raise ServiceError(f"no such job {job_id!r}", status=404)
            if row["status"] != "failed":
                raise ServiceError(
                    f"job {job_id!r} is {row['status']!r}, not 'failed'; "
                    f"only failed jobs can be requeued", status=400,
                )
            try:
                Job.from_dict(json.loads(row["job"]))
            except Exception as exc:
                raise ServiceError(
                    f"job {job_id!r} has an unreadable record and cannot "
                    f"be requeued: {exc}", status=400,
                ) from exc
            self._append_history(conn, row["seq"], row, {
                "event": "requeue", "ts": time.time(),
            })
            conn.execute(
                "UPDATE jobs SET status = 'queued', attempts = 0, "
                "error = NULL, summary = NULL, payload = NULL, "
                "finished_at = NULL, lease_owner = NULL, "
                "lease_expires = NULL WHERE seq = ?",
                (row["seq"],),
            )
        return self.get(job_id)

    def poisoned_count(self) -> int:
        """Dead-letter rows that got there by exhausting lease attempts.

        Ordinary one-shot failures (a solver error, a timeout) keep
        ``attempts`` below the poison threshold; a crash-looping job
        arrives here at ``attempts >= max_attempts``.  This is the
        queue-side degradation signal ``/v1/healthz`` reports until an
        operator inspects and requeues the parked jobs.
        """
        row = self._connect().execute(
            "SELECT COUNT(*) AS n FROM jobs "
            "WHERE status = 'failed' AND attempts >= ?",
            (self.max_attempts,),
        ).fetchone()
        return int(row["n"])

    def describe(self) -> dict:
        """Operator-facing queue configuration (for ``/v1/stats``)."""
        return {
            "path": str(self.path),
            "visibility_timeout": self.visibility_timeout,
            "max_attempts": self.max_attempts,
        }
