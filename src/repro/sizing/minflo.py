"""MINFLOTRANSIT: the alternating D/W iteration (paper section 2.4).

    1. Size the circuit to meet the delay target with TILOS.
    2. Alternate the D-phase (min-cost-flow delay-budget redistribution)
       and the W-phase (SMP minimal sizing for those budgets).
    3. Stop when the area improvement after a W-phase is negligible.

The per-vertex delay-change window ``[MIN_ΔD, MAX_ΔD]`` implements the
ε-ball of the paper's Theorem 3 as a trust region: ``±α`` times the
current loading delay, with ``α`` halved whenever a step fails (upper
size bound clamping made the budgets unreachable, or the area went up)
and cautiously re-expanded after successes.  Every accepted iterate is
verified safe (``CP <= target``), so the final answer always meets
timing whenever the TILOS seed does.

Two cross-iteration accelerators exploit how little each W/D round
actually changes (both are exact — they never alter the iterates):

* **Incremental timing.**  One :class:`repro.timing.IncrementalTimer`
  lives across the whole alternation; each round feeds it only the
  vertices whose delay moved, so the per-iteration timing cost scales
  with the perturbed cone instead of |E|.  Its reports drive both the
  delay balancing and the safety check.
* **Warm-started D-phase.**  Every D-phase solves a flow instance with
  identical topology; the previous solve's basis (potentials + flow)
  seeds the next one, so only the supply drift is re-routed
  (``MinfloOptions.warm_start`` disables this for A/B comparisons).

Within each iteration the W-phase runs on the vectorized level-blocked
kernel by default (``MinfloOptions.kernel``; see
:mod:`repro.sizing.kernels` — identical iterates to the scalar loop).

Per-iteration telemetry (cone size, warm-start reuse, augmentations,
SMP sweep counts) lands in each
:class:`~repro.sizing.result.IterationRecord`; cumulative per-phase
wall times land in :attr:`~repro.sizing.result.SizingResult.phase_seconds`,
measured by the :func:`repro.obs.trace.span` context managers around
each phase — when the caller runs inside a trace scope, the same
measurements double as ``minflo.*`` spans in ``trace.jsonl``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.balancing.fsdu import balance
from repro.dag.circuit_dag import SizingDag
from repro.errors import InfeasibleTimingError, SizingError
from repro.obs.trace import span
from repro.sizing.dphase import d_phase
from repro.sizing.kernels import SMP_ENGINES
from repro.sizing.result import IterationRecord, SizingResult
from repro.sizing.tilos import TilosOptions, tilos_size
from repro.sizing.wphase import w_phase
from repro.timing.incremental import IncrementalTimer
from repro.timing.sta import GraphTimer

__all__ = ["MinfloOptions", "minflotransit"]


def _sync(inc: IncrementalTimer, delays: np.ndarray) -> int:
    """Bring the incremental engine to ``delays``; returns updates done.

    No-op (and no update counted) when nothing changed, which happens
    whenever a rejected iteration left the sizes untouched.  The work
    performed (including the lazy required-time flush the next report
    triggers) lands in the engine's cumulative counters.
    """
    changed = np.flatnonzero(delays != inc.delay)
    if changed.size == 0:
        return 0
    inc.update_delays(changed, delays)
    return 1


@dataclass(frozen=True)
class MinfloOptions:
    """Knobs of the MINFLOTRANSIT iteration."""

    #: Initial trust-region fraction of the loading delay.
    alpha: float = 0.25
    alpha_min: float = 1e-3
    alpha_max: float = 0.5
    alpha_shrink: float = 0.5
    alpha_grow: float = 1.2
    #: Convergence: relative area improvement below this for
    #: ``patience`` consecutive accepted iterations stops the loop.
    area_tolerance: float = 1e-4
    patience: int = 2
    max_iterations: int = 60
    #: Delay-balancing configuration fed to the D-phase.
    balancing: str = "asap"
    #: Min-cost-flow / LP backend: "auto" or a name registered in
    #: :mod:`repro.flow.registry` ("ssp", "ssp-legacy", "networkx",
    #: "scipy").
    flow_backend: str = "auto"
    #: Seed each D-phase solve with the previous iteration's basis
    #: (backends that cannot warm-start silently solve cold).  Exact:
    #: warm and cold solves reach the same optimum.
    warm_start: bool = True
    #: W-phase relaxation engine: "vectorized" (level-blocked kernel,
    #: :mod:`repro.sizing.kernels`) or "scalar" (per-vertex reference
    #: loop).  Identical iterates; the kernel is just faster.
    kernel: str = "vectorized"
    tilos: TilosOptions = TilosOptions()
    #: Warm-start corpus to probe for the TILOS seed: a cache backend
    #: spec (``disk:…`` / ``sqlite:…`` / ``tiered:…``) or directory
    #: path (see :mod:`repro.runner.corpus`).  Execution strategy, not
    #: result identity — it never enters cache keys, and seeded runs
    #: return bitwise-identical sizes to cold ones.
    warm_corpus: str | None = None

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= self.alpha_max:
            raise SizingError(
                f"alpha must lie in (0, {self.alpha_max}], got {self.alpha}"
            )
        if self.max_iterations < 1:
            raise SizingError("max_iterations must be positive")
        if self.kernel not in SMP_ENGINES:
            raise SizingError(
                f"unknown sizing kernel {self.kernel!r}; "
                f"pick from {SMP_ENGINES}"
            )
        if self.flow_backend != "auto":
            from repro.flow.registry import get_backend

            get_backend(self.flow_backend)  # fail fast on typos


def minflotransit(
    dag: SizingDag,
    target: float,
    options: MinfloOptions | None = None,
    x0: np.ndarray | None = None,
    warm: dict | None = None,
) -> SizingResult:
    """Size ``dag`` to meet ``target`` with minimum area.

    ``x0`` overrides the TILOS seed (it must already meet the target).
    Raises :class:`InfeasibleTimingError` when no feasible start exists.

    ``warm`` optionally carries a corpus record for the TILOS seed
    (forwarded to :func:`~repro.sizing.tilos.tilos_size`, which owns
    the divergence-safe replay); when it is absent but
    ``options.warm_corpus`` names a corpus, the record is retrieved
    here.  Either way the seed — and therefore the W/D iteration and
    the final sizes — is bitwise-identical to a cold run.
    """
    options = options or MinfloOptions()
    timer = GraphTimer(dag)
    start = time.perf_counter()

    if x0 is None:
        if warm is None and options.warm_corpus is not None:
            # Imported lazily: runner.spec imports this module at load
            # time, and the corpus lives on the runner side.
            from repro.runner.corpus import WarmSession
            from repro.tech import default_technology

            session = WarmSession.open(options.warm_corpus)
            if session is not None:
                with span("warmstart.probe", circuit=dag.name) as probe:
                    warm = session.probe_sizing(
                        dag=dag,
                        tech=default_technology(),
                        mode=dag.mode,
                        options=options.tilos,
                        delay_spec=None,
                        target=target,
                    )
                    probe.set(hit=warm is not None)
        seed = tilos_size(dag, target, options.tilos, timer=timer, warm=warm)
        if not seed.feasible:
            raise InfeasibleTimingError(
                f"target {target:.6g} unreachable: TILOS stalled at "
                f"{seed.critical_path_delay:.6g}"
            )
        x = seed.x
    else:
        x = np.array(x0, dtype=float)
        report = timer.analyze(dag.delays(x), horizon=target)
        if report.critical_path_delay > target * (1 + 1e-9):
            raise InfeasibleTimingError(
                f"provided start misses the target: "
                f"{report.critical_path_delay:.6g} > {target:.6g}"
            )

    initial_area = dag.area(x)
    best_x = x.copy()
    best_area = initial_area
    alpha = options.alpha
    records: list[IterationRecord] = []
    stall_count = 0
    converged = False

    # One incremental engine across the whole alternation: each round
    # feeds it only the delay diff (W-phase cone, or the revert diff
    # after a rejected step), never a full re-analysis.
    inc = IncrementalTimer(dag, dag.model.delays(x))
    warm = None
    phase_seconds = {
        "timing": 0.0, "balance": 0.0, "d_phase": 0.0, "w_phase": 0.0,
    }

    for iteration in range(1, options.max_iterations + 1):
        # Each phase runs inside an obs span; ``phase_seconds`` is a
        # view over those span durations, so the run report and a
        # ``trace.jsonl`` waterfall can never disagree.
        with span("minflo.timing", iteration=iteration) as timing_span:
            delays = dag.model.delays(x)
            base_work = inc.total_repropagated
            timing_updates = _sync(inc, delays)
            report = inc.report(horizon=target)
        phase_seconds["timing"] += timing_span.duration_s

        with span("minflo.balance", iteration=iteration) as balance_span:
            config = balance(
                dag,
                delays,
                horizon=target,
                method=options.balancing,
                timer=timer,
                report=report,
            )
        phase_seconds["balance"] += balance_span.duration_s
        load_delay = delays - dag.model.intrinsic
        max_dd = alpha * load_delay
        min_dd = -alpha * load_delay

        with span("minflo.d_phase", iteration=iteration) as d_span:
            dres = d_phase(
                dag,
                x,
                config,
                min_dd,
                max_dd,
                backend=options.flow_backend,
                warm_start=warm if options.warm_start else None,
            )
            d_span.set(backend=dres.backend)
        phase_seconds["d_phase"] += d_span.duration_s
        warm = dres.warm_basis
        budgets = delays + dres.delta_d

        with span("minflo.w_phase", iteration=iteration) as w_span:
            wres = w_phase(dag, budgets, engine=options.kernel)
            w_span.set(sweeps=int(wres.sweeps), engine=wres.engine)
        phase_seconds["w_phase"] += w_span.duration_s

        with span("minflo.timing", iteration=iteration) as resync_span:
            timing_updates += _sync(inc, dag.model.delays(wres.x))
            report = inc.report(horizon=target)
        phase_seconds["timing"] += resync_span.duration_s
        repropagated = inc.total_repropagated - base_work

        area = dag.area(wres.x)
        timing_ok = report.critical_path_delay <= target * (1 + 1e-9)
        improved = area < best_area * (1 - 1e-12)
        accepted = timing_ok and improved

        fstats = dres.stats
        records.append(
            IterationRecord(
                iteration=iteration,
                area=area,
                critical_path_delay=report.critical_path_delay,
                predicted_gain=dres.predicted_gain,
                alpha=alpha,
                accepted=accepted,
                backend=dres.backend,
                repropagated_vertices=repropagated,
                cone_fraction=(
                    repropagated / (2.0 * dag.n * timing_updates)
                    if timing_updates
                    else 0.0
                ),
                warm_start=bool(getattr(fstats, "warm_solves", 0)),
                augmentations=int(getattr(fstats, "augmentations", 0)),
                supply_routed=float(getattr(fstats, "supply_routed", 0.0)),
                w_sweeps=wres.sweeps,
                kernel=wres.engine,
            )
        )

        if accepted:
            gain = (best_area - area) / best_area
            x = wres.x
            best_x, best_area = wres.x.copy(), area
            if gain < options.area_tolerance:
                stall_count += 1
                if stall_count >= options.patience:
                    converged = True
                    break
            else:
                stall_count = 0
            alpha = min(alpha * options.alpha_grow, options.alpha_max)
        else:
            alpha *= options.alpha_shrink
            stall_count += 1
            if alpha < options.alpha_min or stall_count >= 2 * options.patience:
                converged = True
                break

    _sync(inc, dag.model.delays(best_x))
    final_report = inc.report(horizon=target)
    return SizingResult(
        name=dag.name,
        mode=dag.mode,
        x=best_x,
        area=best_area,
        critical_path_delay=final_report.critical_path_delay,
        target=target,
        converged=converged,
        runtime_seconds=time.perf_counter() - start,
        initial_area=initial_area,
        iterations=records,
        phase_seconds=phase_seconds,
    )
