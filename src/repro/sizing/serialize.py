"""JSON persistence for sizing results.

Downstream flows (placement, simulation, report diffing) need the size
assignment out of process; this module writes/reads a stable JSON
schema carrying the per-vertex sizes, the run metadata and the
iteration history.

Payloads carry an explicit integer ``schema_version``; the loader
rejects any version other than :data:`SCHEMA_VERSION`, and the campaign
result cache (:mod:`repro.runner.cache`) treats a mismatch as a cache
miss, so stale on-disk results can never masquerade as current ones.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.dag.circuit_dag import SizingDag
from repro.errors import SizingError
from repro.sizing.result import IterationRecord, SizingResult

__all__ = [
    "SCHEMA_VERSION",
    "VOLATILE_PAYLOAD_KEYS",
    "canonical_json",
    "comparable_payload",
    "payload_schema_version",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
]

#: Version of the persisted result schema.  Bump whenever the payload
#: layout (or the meaning of a field) changes; loaders refuse other
#: versions and cached campaign results keyed on an old version simply
#: re-run.  Version 2 added the explicit ``schema_version`` field.
SCHEMA_VERSION = 2

_SCHEMA_FAMILY = "repro.sizing-result"
_SCHEMA = f"{_SCHEMA_FAMILY}/{SCHEMA_VERSION}"


def canonical_json(payload: object) -> str:
    """Canonical JSON text: sorted keys, compact separators.

    The single serialization used wherever JSON must be *comparable or
    hashable* — the content-addressed cache fingerprint
    (:func:`repro.runner.cache.job_key`) and the service's
    byte-identity guarantee (two requests with the same fingerprint
    serve the same canonical bytes) both depend on identical payloads
    producing identical text.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


#: Payload keys that carry wall-clock measurements.  Everything else in
#: a job payload is a deterministic function of (netlist, technology,
#: job parameters), so two executions of the same job — serial vs
#: parallel, per-job vs batched, replica A vs replica B — must agree on
#: the payload after these keys are stripped.
VOLATILE_PAYLOAD_KEYS = frozenset({
    "seconds",
    "runtime_seconds",
    "wall_time_s",
    "wall_seconds",
    "phase_seconds",
    "timing_stats",
    "scan_seconds",
    "refresh_seconds",
    "build_seconds",
    "batched_seconds",
    # Observability fields (repro.obs): trace/span identity and
    # monotonic durations are per-execution telemetry, never content.
    "trace_id",
    "span_id",
    "parent_id",
    "spans",
    "duration_s",
})


def comparable_payload(payload):
    """A payload with every wall-clock field recursively removed.

    The byte-identity assertions of the batched execution path
    (``tests/test_batch.py``, the ``batch`` benchmark tier) compare
    ``canonical_json(comparable_payload(a)) ==
    canonical_json(comparable_payload(b))``: deterministic content must
    match exactly, while timing telemetry — which legitimately differs
    between a per-job loop and one stacked kernel call — is excluded.
    """
    if isinstance(payload, dict):
        return {
            key: comparable_payload(value)
            for key, value in payload.items()
            if key not in VOLATILE_PAYLOAD_KEYS
        }
    if isinstance(payload, list):
        return [comparable_payload(value) for value in payload]
    return payload


def result_to_dict(result: SizingResult, dag: SizingDag | None = None) -> dict:
    """JSON-ready dictionary; includes vertex labels when a DAG is given."""
    payload = {
        "schema": _SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "name": result.name,
        "mode": result.mode,
        "x": [float(v) for v in result.x],
        "area": result.area,
        "critical_path_delay": result.critical_path_delay,
        "target": result.target,
        "converged": result.converged,
        "runtime_seconds": result.runtime_seconds,
        "initial_area": result.initial_area,
        # Additive since the original v2 layout: loaders treat the
        # per-phase wall-time map (and the per-iteration kernel
        # counters below) as optional, so older v2 documents and
        # cached campaign payloads still load.
        "phase_seconds": result.phase_seconds,
        "iterations": [
            {
                "iteration": rec.iteration,
                "area": rec.area,
                "critical_path_delay": rec.critical_path_delay,
                "predicted_gain": rec.predicted_gain,
                "alpha": rec.alpha,
                "accepted": rec.accepted,
                "backend": rec.backend,
                "repropagated_vertices": rec.repropagated_vertices,
                "cone_fraction": rec.cone_fraction,
                "warm_start": rec.warm_start,
                "augmentations": rec.augmentations,
                "supply_routed": rec.supply_routed,
                "w_sweeps": rec.w_sweeps,
                "kernel": rec.kernel,
            }
            for rec in result.iterations
        ],
    }
    if dag is not None:
        if dag.n != len(result.x):
            raise SizingError(
                f"DAG has {dag.n} vertices, result has {len(result.x)}"
            )
        payload["labels"] = dag.labels()
    return payload


def payload_schema_version(payload: dict) -> int | None:
    """Schema version of a payload, or None when unrecognizable.

    Understands both the explicit ``schema_version`` field (v2+) and
    the version suffix of the ``schema`` family string (v1 documents).
    """
    version = payload.get("schema_version")
    if isinstance(version, int):
        return version
    schema = payload.get("schema")
    if isinstance(schema, str):
        family, _, suffix = schema.rpartition("/")
        if family == _SCHEMA_FAMILY and suffix.isdigit():
            return int(suffix)
    return None


def result_from_dict(payload: dict) -> SizingResult:
    """Rebuild a :class:`SizingResult`; rejects unknown schema versions."""
    version = payload_schema_version(payload)
    if version != SCHEMA_VERSION:
        raise SizingError(
            f"unsupported sizing-result schema version {version!r} "
            f"(schema {payload.get('schema')!r}; this build reads only "
            f"version {SCHEMA_VERSION})"
        )
    return SizingResult(
        name=payload["name"],
        mode=payload["mode"],
        x=np.array(payload["x"], dtype=float),
        area=float(payload["area"]),
        critical_path_delay=float(payload["critical_path_delay"]),
        target=float(payload["target"]),
        converged=bool(payload["converged"]),
        runtime_seconds=float(payload["runtime_seconds"]),
        initial_area=float(payload["initial_area"]),
        # Optional since mid-v2 (older documents simply lack it).
        phase_seconds=dict(payload.get("phase_seconds", {})),
        iterations=[
            IterationRecord(
                iteration=rec["iteration"],
                area=rec["area"],
                critical_path_delay=rec["critical_path_delay"],
                predicted_gain=rec["predicted_gain"],
                alpha=rec["alpha"],
                accepted=rec["accepted"],
                backend=rec["backend"],
                # Telemetry fields postdate schema v1 documents.
                repropagated_vertices=rec.get("repropagated_vertices", 0),
                cone_fraction=rec.get("cone_fraction", 1.0),
                warm_start=rec.get("warm_start", False),
                augmentations=rec.get("augmentations", 0),
                supply_routed=rec.get("supply_routed", 0.0),
                w_sweeps=rec.get("w_sweeps", 0),
                kernel=rec.get("kernel", ""),
            )
            for rec in payload["iterations"]
        ],
    )


def save_result(
    result: SizingResult, path: str | Path, dag: SizingDag | None = None
) -> Path:
    """Write a result to ``path`` as schema-versioned JSON."""
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(result_to_dict(result, dag), handle, indent=1)
    return path


def load_result(path: str | Path) -> SizingResult:
    """Read a result written by :func:`save_result`."""
    with open(path) as handle:
        return result_from_dict(json.load(handle))
