"""Greedy slack-driven size recovery.

A classic post-pass (not part of the paper's algorithm, provided as an
extra baseline): repeatedly shrink the vertex whose downsizing saves
the most area per unit of consumed slack, while the circuit keeps
meeting the delay target.  Comparing ``TILOS``, ``TILOS + recovery``
and ``MINFLOTRANSIT`` separates how much of MINFLOTRANSIT's win comes
from *global* budget redistribution versus plain slack clean-up —
the ablation benchmark ``test_bench_recovery`` reports all three.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.dag.circuit_dag import SizingDag
from repro.errors import SizingError
from repro.timing.sta import GraphTimer

__all__ = ["RecoveryResult", "greedy_downsize"]


@dataclass
class RecoveryResult:
    """Outcome of greedy area recovery: sizes, area, moves taken."""

    x: np.ndarray
    area: float
    critical_path_delay: float
    moves: int
    runtime_seconds: float


def greedy_downsize(
    dag: SizingDag,
    x0: np.ndarray,
    target: float,
    shrink: float = 1.1,
    max_moves: int | None = None,
    timer: GraphTimer | None = None,
) -> RecoveryResult:
    """Shrink sizes greedily while the target still holds.

    Each move divides one vertex size by ``shrink`` (clamped at the
    lower bound).  Candidates are ranked by area saved; a move that
    breaks timing is rolled back and the vertex is frozen until another
    vertex moves.  Runs until no vertex can shrink.
    """
    if shrink <= 1.0:
        raise SizingError(f"shrink factor must exceed 1, got {shrink}")
    timer = timer or GraphTimer(dag)
    x = np.array(x0, dtype=float)
    start = time.perf_counter()

    report = timer.analyze(dag.model.delays(x), horizon=target)
    if report.critical_path_delay > target * (1 + 1e-9):
        raise SizingError(
            "recovery needs a timing-feasible start "
            f"({report.critical_path_delay:.6g} > {target:.6g})"
        )

    weight = dag.area_weight
    lower = dag.lower
    budget = max_moves if max_moves is not None else 40 * dag.n
    frozen = np.zeros(dag.n, dtype=bool)
    moves = 0
    while moves < budget:
        shrinkable = (x > lower * (1 + 1e-12)) & ~frozen
        if not shrinkable.any():
            break
        # Rank by the area a shrink would free.
        saving = np.where(
            shrinkable, weight * (x - np.maximum(x / shrink, lower)), -1.0
        )
        v = int(np.argmax(saving))
        old = x[v]
        x[v] = max(old / shrink, lower[v])
        report = timer.analyze(dag.model.delays(x), horizon=target)
        if report.critical_path_delay > target * (1 + 1e-9):
            x[v] = old
            frozen[v] = True
        else:
            frozen[:] = False
            moves += 1
    final = timer.analyze(dag.model.delays(x), horizon=target)
    return RecoveryResult(
        x=x,
        area=dag.area(x),
        critical_path_delay=final.critical_path_delay,
        moves=moves,
        runtime_seconds=time.perf_counter() - start,
    )
