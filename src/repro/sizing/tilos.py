"""TILOS-like sensitivity-based greedy sizing (references [1], [15]).

The baseline of the paper's Table 1 and the initial solution of
MINFLOTRANSIT (section 2.4, step 1).  Starting from minimum sizes, the
most *sensitive* vertex on the critical path — the one whose unit area
increase buys the largest path-delay decrease — is bumped by a constant
factor (1.1 in the paper) until the delay target is met.

The sensitivity of bumping vertex ``v`` on the critical path accounts
for both local effects of the resize:

* ``v`` itself speeds up (its drive resistance drops), and
* the critical predecessor of ``v`` slows down (its load grows by
  ``a_pv * dx``).

Greedy and without convergence guarantees — exactly the drawback the
paper's Example 1 illustrates and the D/W iteration repairs.

Two timing engines produce identical results (asserted by tests):
``engine="incremental"`` (default) re-propagates timing only through
the cone a bump disturbs (see :class:`repro.timing.IncrementalTimer`);
``engine="full"`` re-times the whole circuit per bump, which is the
straightforward reading of [1].  Orthogonally, two *sensitivity
kernels* produce identical bump sequences (parity-tested):
``kernel="vectorized"`` (default) scores the whole critical path and
refreshes the disturbed delays with the cached array plan of
:mod:`repro.sizing.kernels`; ``kernel="scalar"`` is the per-candidate
reference loop.  ``TilosResult.timing_stats`` records how much of the
circuit each engine actually touched plus the kernel's per-phase wall
time.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.dag.circuit_dag import SizingDag
from repro.errors import InfeasibleTimingError, SizingError
from repro.sizing.fingerprint import dag_digest
from repro.sizing.kernels import get_tilos_plan
from repro.timing.incremental import IncrementalTimer
from repro.timing.sta import GraphTimer

__all__ = ["TilosOptions", "TilosResult", "require_feasible", "tilos_size"]

_ENGINES = ("incremental", "full")
_KERNELS = ("vectorized", "scalar")


@dataclass(frozen=True)
class TilosOptions:
    """Knobs of the greedy sizer."""

    bump: float = 1.1
    max_iterations: int = 500_000
    #: Bump up to this many distinct critical vertices per pass (1 is
    #: the classic algorithm; larger values are an ablation knob).
    batch: int = 1
    #: Timing engine: "incremental" or "full" (identical results).
    engine: str = "incremental"
    #: Sensitivity kernel: "vectorized" (array scoring over the whole
    #: critical path) or "scalar" (per-candidate reference loop);
    #: identical bump sequences.
    kernel: str = "vectorized"

    def __post_init__(self) -> None:
        if self.bump <= 1.0:
            raise SizingError(f"bump factor must exceed 1, got {self.bump}")
        if self.batch < 1:
            raise SizingError(f"batch must be >= 1, got {self.batch}")
        if self.engine not in _ENGINES:
            raise SizingError(
                f"unknown engine {self.engine!r}; pick from {_ENGINES}"
            )
        if self.kernel not in _KERNELS:
            raise SizingError(
                f"unknown kernel {self.kernel!r}; pick from {_KERNELS}"
            )


@dataclass
class TilosResult:
    """Outcome of the greedy TILOS baseline (the W/D loop's seed)."""

    x: np.ndarray
    area: float
    critical_path_delay: float
    target: float
    iterations: int
    feasible: bool
    runtime_seconds: float
    #: Critical path delay after every bump (diagnostic trace).
    trace: list[float] = field(default_factory=list)
    #: Timing-engine work telemetry: ``repropagated_vertices`` (total
    #: vertices the engine touched across all bumps),
    #: ``full_pass_equivalent`` (what a from-scratch engine would have
    #: touched: ``2 * n`` per bump) and their ratio ``cone_fraction``;
    #: plus the sensitivity kernel's identity (``kernel``) and wall
    #: time split (``scan_seconds`` for candidate scoring,
    #: ``refresh_seconds`` for post-bump delay updates).
    timing_stats: dict = field(default_factory=dict)
    #: Vertices bumped at each iteration, recorded alongside ``trace``
    #: when ``keep_trace`` is on — the trajectory the warm-start corpus
    #: stores and :func:`tilos_size` can replay.
    bumps: list[list[int]] | None = None
    #: Warm-start telemetry, set only when a donor record was offered:
    #: ``result`` ("seeded" or "fallback"), ``replayed`` (bumps
    #: fast-forwarded) and, on fallback, the ``reason``.
    warm: dict | None = None


class _TimingFacade:
    """Uniform view over the two engines for the greedy loop."""

    def __init__(self, dag: SizingDag, delays: np.ndarray, engine: str,
                 timer: GraphTimer | None):
        self.dag = dag
        self.engine = engine
        self.updates = 0
        self.repropagated = 0
        if engine == "incremental":
            self._inc = IncrementalTimer(dag, delays)
            self._timer = None
        else:
            self._timer = timer or GraphTimer(dag)
            self._report = self._timer.analyze(delays)

    def refresh_full(self, delays: np.ndarray) -> None:
        if self._timer is not None:
            self._report = self._timer.analyze(delays)

    def update(self, changed, delays: np.ndarray) -> None:
        self.updates += 1
        if self._timer is None:
            stats = self._inc.update_delays(changed, delays)
            self.repropagated += stats.repropagated
        else:
            self._report = self._timer.analyze(delays)
            self.repropagated += 2 * self.dag.n

    @property
    def critical_path_delay(self) -> float:
        if self._timer is None:
            return self._inc.critical_path_delay
        return self._report.critical_path_delay

    def critical_path(self) -> list[int]:
        if self._timer is None:
            return self._inc.critical_path()
        return self._report.critical_path()

    def timing_stats(self) -> dict:
        """Work summary vs a full pass per update (``2n`` vertices)."""
        full_equiv = 2 * self.dag.n * self.updates
        return {
            "engine": self.engine,
            "updates": self.updates,
            "repropagated_vertices": self.repropagated,
            "full_pass_equivalent": full_equiv,
            "cone_fraction": (
                self.repropagated / full_equiv if full_equiv else 0.0
            ),
        }


class _KernelClock:
    """Wall-time split of the sensitivity kernel's two hot phases."""

    def __init__(self, kernel: str):
        self.kernel = kernel
        self.scan_seconds = 0.0
        self.refresh_seconds = 0.0


def tilos_size(
    dag: SizingDag,
    target: float,
    options: TilosOptions | None = None,
    x0: np.ndarray | None = None,
    timer: GraphTimer | None = None,
    keep_trace: bool = False,
    warm: dict | None = None,
) -> TilosResult:
    """Size ``dag`` to meet ``target`` with the TILOS greedy heuristic.

    Returns an infeasible result (``feasible=False``) when the target
    cannot be reached — callers that require success should check or
    use :func:`require_feasible`.

    ``warm`` optionally carries a corpus record (see
    :mod:`repro.runner.corpus`) with a previously recorded trajectory
    for the *same* instance at a possibly different target.  The greedy
    bump choice depends only on the current state — the target merely
    decides where the loop stops — so a donor trajectory can be
    fast-forwarded exactly: replay the recorded bumps up to the first
    point whose recorded delay meets the new target, using the
    identical arithmetic as the cold loop, then resume the loop from
    there.  A structural digest gate, exact option match and a bitwise
    check of the replayed critical-path delay guard the shortcut; any
    mismatch restarts cold, so the returned sizes are bitwise-identical
    to a cold run either way.
    """
    options = options or TilosOptions()
    model = dag.model
    law = model.law
    weight = dag.area_weight
    upper = dag.upper
    indptr = model.a_matrix.indptr
    indices = model.a_matrix.indices
    data = model.a_matrix.data
    plan = get_tilos_plan(dag)
    vectorized = options.kernel == "vectorized"

    x = dag.min_sizes() if x0 is None else np.array(x0, dtype=float)
    coupling = plan.coupling

    def vertex_load(i: int) -> float:
        lo, hi = indptr[i], indptr[i + 1]
        return float(data[lo:hi] @ x[indices[lo:hi]]) + model.b[i]

    def vertex_delay(i: int) -> float:
        return model.intrinsic[i] + law.g(x[i]) * vertex_load(i)

    def scan_scalar(path: list[int]) -> list[tuple[float, int]]:
        candidates: list[tuple[float, int]] = []
        for position, v in enumerate(path):
            if x[v] >= upper[v] * (1 - 1e-12):
                continue
            new_size = min(x[v] * options.bump, upper[v])
            dx = new_size - x[v]
            if dx <= 0:
                continue
            delta = (law.g(new_size) - law.g(x[v])) * vertex_load(v)
            if position > 0:
                pred = path[position - 1]
                delta += law.g(x[pred]) * coupling.get((pred, v), 0.0) * dx
            sensitivity = -delta / (weight[v] * dx)
            candidates.append((sensitivity, v))
        candidates.sort(reverse=True)
        return candidates

    start = time.perf_counter()
    delays = model.delays(x)
    trace: list[float] = []
    bumps: list[list[int]] = []
    iterations = 0
    warm_info: dict | None = None
    if warm is not None:
        warm_info = {"result": "fallback", "replayed": 0}
        reason = _warm_gate(warm, dag, options, x0)
        warm_bumps: list = []
        warm_trace: list = []
        j = 0
        attempted = False
        if reason is None:
            attempted = True
            warm_bumps = warm["data"]["bumps"]
            warm_trace = warm["data"]["trace"]
            # First recorded point that already meets the new target —
            # replay exactly that many bumps (the donor's own stopping
            # point when no recorded delay is small enough), bounded by
            # the iteration cap the cold loop would hit first.
            j = len(warm_bumps)
            for i, cp_i in enumerate(warm_trace):
                if cp_i <= target:
                    j = i
                    break
            j = min(j, options.max_iterations)
            try:
                for step in warm_bumps[:j]:
                    # Identical arithmetic to the cold loop's bump +
                    # refresh below — bitwise equality by construction.
                    if vectorized:
                        chosen = np.asarray(step, dtype=np.int64)
                        x[chosen] = np.minimum(
                            x[chosen] * options.bump, upper[chosen]
                        )
                        changed = np.unique(np.concatenate(
                            [chosen]
                            + [plan.dependents(int(v)) for v in chosen]
                        ))
                        plan.refresh_delays(model, changed, x, delays)
                    else:
                        touched: set[int] = set()
                        for v in step:
                            x[v] = min(x[v] * options.bump, upper[v])
                            touched.add(v)
                            touched.update(plan.dependents(v).tolist())
                        for u in sorted(touched):
                            delays[u] = vertex_delay(u)
            except Exception:  # noqa: BLE001 — any replay error → cold
                reason = "replay failed"
        if reason is None:
            facade = _TimingFacade(dag, delays, options.engine, timer)
            if facade.critical_path_delay == warm_trace[j]:
                iterations = j
                if keep_trace:
                    trace = [float(cp_i) for cp_i in warm_trace[:j]]
                    bumps = [
                        [int(v) for v in step] for step in warm_bumps[:j]
                    ]
                warm_info["result"] = "seeded"
                warm_info["replayed"] = j
            else:
                reason = "replayed delay trace diverged"
        if reason is not None:
            warm_info["reason"] = reason
            if attempted:
                # Cold restart: rebuild every piece of replay-touched
                # state (the gate admits only x0=None runs, so minimum
                # sizes are the cold starting point by definition).
                x = dag.min_sizes()
                delays = model.delays(x)
                trace = []
                bumps = []
                iterations = 0
            facade = _TimingFacade(dag, delays, options.engine, timer)
    else:
        facade = _TimingFacade(dag, delays, options.engine, timer)
    clock = _KernelClock(options.kernel)
    while True:
        cp = facade.critical_path_delay
        if keep_trace:
            trace.append(cp)
        if cp <= target:
            return _result(
                dag, x, cp, target, iterations, True, start, trace,
                bumps if keep_trace else None, facade, clock, warm_info,
            )
        if iterations >= options.max_iterations:
            return _result(
                dag, x, cp, target, iterations, False, start, trace,
                bumps if keep_trace else None, facade, clock, warm_info,
            )

        path = facade.critical_path()
        tick = time.perf_counter()
        if vectorized:
            sensitivities, verts = plan.score_path(
                dag, x, path, options.bump
            )
            no_candidates = verts.size == 0
            best_sensitivity = (
                float(sensitivities[0]) if verts.size else 0.0
            )
        else:
            candidates = scan_scalar(path)
            no_candidates = not candidates
            best_sensitivity = candidates[0][0] if candidates else 0.0
        clock.scan_seconds += time.perf_counter() - tick
        if no_candidates or best_sensitivity <= 0:
            # No critical-path resize helps: greedy is stuck.
            return _result(
                dag, x, cp, target, iterations, False, start, trace,
                bumps if keep_trace else None, facade, clock, warm_info,
            )

        tick = time.perf_counter()
        if vectorized:
            chosen = verts[: options.batch]
            x[chosen] = np.minimum(x[chosen] * options.bump, upper[chosen])
            changed = np.unique(np.concatenate(
                [chosen] + [plan.dependents(int(v)) for v in chosen]
            ))
            plan.refresh_delays(model, changed, x, delays)
            if keep_trace:
                bumps.append([int(v) for v in chosen])
        else:
            touched = set()
            for _sens, v in candidates[: options.batch]:
                x[v] = min(x[v] * options.bump, upper[v])
                touched.add(v)
                touched.update(plan.dependents(v).tolist())
            changed = sorted(touched)
            for u in changed:
                delays[u] = vertex_delay(u)
            if keep_trace:
                bumps.append([int(v) for _sens, v in
                              candidates[: options.batch]])
        clock.refresh_seconds += time.perf_counter() - tick
        facade.update(changed, delays)
        iterations += 1


def require_feasible(result: TilosResult) -> TilosResult:
    """Raise :class:`InfeasibleTimingError` unless the target was met."""
    if not result.feasible:
        raise InfeasibleTimingError(
            f"TILOS could not reach target {result.target:.6g} "
            f"(stopped at {result.critical_path_delay:.6g} after "
            f"{result.iterations} bumps)"
        )
    return result


def _warm_gate(
    warm: object,
    dag: SizingDag,
    options: TilosOptions,
    x0: np.ndarray | None,
) -> str | None:
    """Why a warm record may NOT be replayed (None when it may).

    Replay is bitwise-equal to a cold run only when the instance
    (structural digest) and the full option vector match exactly and
    the run starts from minimum sizes — anything else falls back.
    """
    if x0 is not None:
        return "explicit x0 seed"
    if not isinstance(warm, dict):
        return "not a record"
    if warm.get("kind") != "sizing":
        return "wrong record kind"
    if warm.get("options") != asdict(options):
        return "option vector mismatch"
    data = warm.get("data")
    if not isinstance(data, dict):
        return "missing data"
    bumps, trace = data.get("bumps"), data.get("trace")
    if not isinstance(bumps, list) or not isinstance(trace, list):
        return "missing trajectory"
    if len(trace) != len(bumps) + 1:
        return "trace/bump length mismatch"
    n = dag.n
    for step in bumps:
        if not isinstance(step, list) or not step:
            return "malformed bump step"
        for v in step:
            if (not isinstance(v, int) or isinstance(v, bool)
                    or not 0 <= v < n):
                return "bump vertex out of range"
    for cp in trace:
        if not isinstance(cp, (int, float)) or isinstance(cp, bool):
            return "malformed delay trace"
    if warm.get("dag_sha") != dag_digest(dag):
        return "instance mismatch"
    return None


def _result(
    dag: SizingDag,
    x: np.ndarray,
    cp: float,
    target: float,
    iterations: int,
    feasible: bool,
    start: float,
    trace: list[float],
    bumps: list[list[int]] | None,
    facade: _TimingFacade,
    clock: _KernelClock,
    warm_info: dict | None,
) -> TilosResult:
    stats = facade.timing_stats()
    stats["kernel"] = clock.kernel
    stats["scan_seconds"] = clock.scan_seconds
    stats["refresh_seconds"] = clock.refresh_seconds
    return TilosResult(
        x=x,
        area=dag.area(x),
        critical_path_delay=cp,
        target=target,
        iterations=iterations,
        feasible=feasible,
        runtime_seconds=time.perf_counter() - start,
        trace=trace,
        timing_stats=stats,
        bumps=bumps,
        warm=warm_info,
    )
