"""TILOS-like sensitivity-based greedy sizing (references [1], [15]).

The baseline of the paper's Table 1 and the initial solution of
MINFLOTRANSIT (section 2.4, step 1).  Starting from minimum sizes, the
most *sensitive* vertex on the critical path — the one whose unit area
increase buys the largest path-delay decrease — is bumped by a constant
factor (1.1 in the paper) until the delay target is met.

The sensitivity of bumping vertex ``v`` on the critical path accounts
for both local effects of the resize:

* ``v`` itself speeds up (its drive resistance drops), and
* the critical predecessor of ``v`` slows down (its load grows by
  ``a_pv * dx``).

Greedy and without convergence guarantees — exactly the drawback the
paper's Example 1 illustrates and the D/W iteration repairs.

Two timing engines produce identical results (asserted by tests):
``engine="incremental"`` (default) re-propagates timing only through
the cone a bump disturbs (see :class:`repro.timing.IncrementalTimer`);
``engine="full"`` re-times the whole circuit per bump, which is the
straightforward reading of [1].  ``TilosResult.timing_stats`` records
how much of the circuit each engine actually touched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.dag.circuit_dag import SizingDag
from repro.errors import InfeasibleTimingError, SizingError
from repro.timing.incremental import IncrementalTimer
from repro.timing.sta import GraphTimer

__all__ = ["TilosOptions", "TilosResult", "require_feasible", "tilos_size"]

_ENGINES = ("incremental", "full")


@dataclass(frozen=True)
class TilosOptions:
    """Knobs of the greedy sizer."""

    bump: float = 1.1
    max_iterations: int = 500_000
    #: Bump up to this many distinct critical vertices per pass (1 is
    #: the classic algorithm; larger values are an ablation knob).
    batch: int = 1
    #: Timing engine: "incremental" or "full" (identical results).
    engine: str = "incremental"

    def __post_init__(self) -> None:
        if self.bump <= 1.0:
            raise SizingError(f"bump factor must exceed 1, got {self.bump}")
        if self.batch < 1:
            raise SizingError(f"batch must be >= 1, got {self.batch}")
        if self.engine not in _ENGINES:
            raise SizingError(
                f"unknown engine {self.engine!r}; pick from {_ENGINES}"
            )


@dataclass
class TilosResult:
    """Outcome of the greedy TILOS baseline (the W/D loop's seed)."""

    x: np.ndarray
    area: float
    critical_path_delay: float
    target: float
    iterations: int
    feasible: bool
    runtime_seconds: float
    #: Critical path delay after every bump (diagnostic trace).
    trace: list[float] = field(default_factory=list)
    #: Timing-engine work telemetry: ``repropagated_vertices`` (total
    #: vertices the engine touched across all bumps),
    #: ``full_pass_equivalent`` (what a from-scratch engine would have
    #: touched: ``2 * n`` per bump) and their ratio ``cone_fraction``.
    timing_stats: dict = field(default_factory=dict)


class _TimingFacade:
    """Uniform view over the two engines for the greedy loop."""

    def __init__(self, dag: SizingDag, delays: np.ndarray, engine: str,
                 timer: GraphTimer | None):
        self.dag = dag
        self.engine = engine
        self.updates = 0
        self.repropagated = 0
        if engine == "incremental":
            self._inc = IncrementalTimer(dag, delays)
            self._timer = None
        else:
            self._timer = timer or GraphTimer(dag)
            self._report = self._timer.analyze(delays)

    def refresh_full(self, delays: np.ndarray) -> None:
        if self._timer is not None:
            self._report = self._timer.analyze(delays)

    def update(self, changed: list[int], delays: np.ndarray) -> None:
        self.updates += 1
        if self._timer is None:
            stats = self._inc.update_delays(changed, delays)
            self.repropagated += stats.repropagated
        else:
            self._report = self._timer.analyze(delays)
            self.repropagated += 2 * self.dag.n

    @property
    def critical_path_delay(self) -> float:
        if self._timer is None:
            return self._inc.critical_path_delay
        return self._report.critical_path_delay

    def critical_path(self) -> list[int]:
        if self._timer is None:
            return self._inc.critical_path()
        return self._report.critical_path()

    def timing_stats(self) -> dict:
        """Work summary vs a full pass per update (``2n`` vertices)."""
        full_equiv = 2 * self.dag.n * self.updates
        return {
            "engine": self.engine,
            "updates": self.updates,
            "repropagated_vertices": self.repropagated,
            "full_pass_equivalent": full_equiv,
            "cone_fraction": (
                self.repropagated / full_equiv if full_equiv else 0.0
            ),
        }


def tilos_size(
    dag: SizingDag,
    target: float,
    options: TilosOptions | None = None,
    x0: np.ndarray | None = None,
    timer: GraphTimer | None = None,
    keep_trace: bool = False,
) -> TilosResult:
    """Size ``dag`` to meet ``target`` with the TILOS greedy heuristic.

    Returns an infeasible result (``feasible=False``) when the target
    cannot be reached — callers that require success should check or
    use :func:`require_feasible`.
    """
    options = options or TilosOptions()
    model = dag.model
    law = model.law
    weight = dag.area_weight
    upper = dag.upper
    indptr = model.a_matrix.indptr
    indices = model.a_matrix.indices
    data = model.a_matrix.data
    transpose = model.a_matrix.T.tocsr()

    x = dag.min_sizes() if x0 is None else np.array(x0, dtype=float)
    coupling = _coupling_lookup(dag)

    def vertex_load(i: int) -> float:
        lo, hi = indptr[i], indptr[i + 1]
        return float(data[lo:hi] @ x[indices[lo:hi]]) + model.b[i]

    def vertex_delay(i: int) -> float:
        return model.intrinsic[i] + law.g(x[i]) * vertex_load(i)

    def dependents(i: int) -> list[int]:
        lo, hi = transpose.indptr[i], transpose.indptr[i + 1]
        return transpose.indices[lo:hi].tolist()

    start = time.perf_counter()
    delays = model.delays(x)
    facade = _TimingFacade(dag, delays, options.engine, timer)
    trace: list[float] = []
    iterations = 0
    while True:
        cp = facade.critical_path_delay
        if keep_trace:
            trace.append(cp)
        if cp <= target:
            return _result(
                dag, x, cp, target, iterations, True, start, trace, facade
            )
        if iterations >= options.max_iterations:
            return _result(
                dag, x, cp, target, iterations, False, start, trace, facade
            )

        path = facade.critical_path()
        candidates: list[tuple[float, int]] = []
        for position, v in enumerate(path):
            if x[v] >= upper[v] * (1 - 1e-12):
                continue
            new_size = min(x[v] * options.bump, upper[v])
            dx = new_size - x[v]
            if dx <= 0:
                continue
            delta = (law.g(new_size) - law.g(x[v])) * vertex_load(v)
            if position > 0:
                pred = path[position - 1]
                delta += law.g(x[pred]) * coupling.get((pred, v), 0.0) * dx
            sensitivity = -delta / (weight[v] * dx)
            candidates.append((sensitivity, v))
        if not candidates:
            return _result(
                dag, x, cp, target, iterations, False, start, trace, facade
            )
        candidates.sort(reverse=True)
        best_sensitivity = candidates[0][0]
        if best_sensitivity <= 0:
            # No critical-path resize helps: greedy is stuck.
            return _result(
                dag, x, cp, target, iterations, False, start, trace, facade
            )

        changed: set[int] = set()
        for _sens, v in candidates[: options.batch]:
            x[v] = min(x[v] * options.bump, upper[v])
            changed.add(v)
            changed.update(dependents(v))
        for u in changed:
            delays[u] = vertex_delay(u)
        facade.update(sorted(changed), delays)
        iterations += 1


def require_feasible(result: TilosResult) -> TilosResult:
    """Raise :class:`InfeasibleTimingError` unless the target was met."""
    if not result.feasible:
        raise InfeasibleTimingError(
            f"TILOS could not reach target {result.target:.6g} "
            f"(stopped at {result.critical_path_delay:.6g} after "
            f"{result.iterations} bumps)"
        )
    return result


def _coupling_lookup(dag: SizingDag) -> dict[tuple[int, int], float]:
    """(i, j) -> a_ij for the delay coupling used by sensitivities."""
    coo = dag.model.a_matrix.tocoo()
    return {
        (int(i), int(j)): float(a)
        for i, j, a in zip(coo.row, coo.col, coo.data)
    }


def _result(
    dag: SizingDag,
    x: np.ndarray,
    cp: float,
    target: float,
    iterations: int,
    feasible: bool,
    start: float,
    trace: list[float],
    facade: _TimingFacade,
) -> TilosResult:
    return TilosResult(
        x=x,
        area=dag.area(x),
        critical_path_delay=cp,
        target=target,
        iterations=iterations,
        feasible=feasible,
        runtime_seconds=time.perf_counter() - start,
        trace=trace,
        timing_stats=facade.timing_stats(),
    )
