"""D-phase: optimal delay-budget redistribution (paper section 2.3.1).

Given the current sizes (fixed), the D-phase finds per-vertex delay
changes ``ΔD`` that (a) keep every path within the horizon — enforced
through FSDU non-negativity on a delay-balanced configuration — and
(b) maximize the first-order predicted area reduction

    sum_i C_i * ΔD_i ,   C_i = x_i * [ (D - A)^{-T} w ]_i  > 0

(the Taylor-expansion coefficients of equation (7), generalized to a
weighted area objective ``w``).  The optimization is a difference-
constraint LP over displacement potentials ``r`` whose dual is a
min-cost network flow; any backend of :mod:`repro.flow` solves it.

Costs and supplies are integerized by decimal scaling exactly as the
paper prescribes, with FSDU costs rounded *down* so the integerized
LP's feasible set is contained in the true one (a solution can never
overdraw slack because of rounding).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.balancing.fsdu import FsduConfiguration
from repro.dag.circuit_dag import SizingDag
from repro.dag.transform import transform_dag
from repro.errors import SizingError
from repro.flow.duality import (
    DifferenceConstraintLP,
    integerize_values,
    solve_difference_lp,
)

__all__ = ["DPhaseResult", "area_sensitivities", "build_dphase_lp", "d_phase"]


@dataclass
class DPhaseResult:
    """Outcome of one D-phase solve."""

    delta_d: np.ndarray
    r_vertex: np.ndarray
    r_dummy: np.ndarray
    sensitivities: np.ndarray
    #: Predicted first-order area decrease, sum_i C_i * ΔD_i (>= 0).
    predicted_gain: float
    backend: str
    #: Flow-solver counters for this solve (see
    #: :class:`repro.flow.registry.SolveStats`).
    stats: object | None = None
    #: Starting basis for the next D-phase solve (see
    #: :class:`repro.flow.arrayssp.WarmStartBasis`); None when the
    #: backend does not support warm starts.
    warm_basis: object | None = None


def area_sensitivities(dag: SizingDag, x: np.ndarray) -> np.ndarray:
    """The paper's C coefficients: ``C = x ∘ (D - A)^{-T} w``.

    ``D`` is the diagonal of *loading* delays (total minus intrinsic) at
    sizes ``x``; ``w`` is the area weight vector.  Solved by forward
    substitution over the DAG's blocks — exploiting the (block) upper
    triangular structure the paper establishes in section 2.3.
    """
    model = dag.model
    load_delay = model.load_delays(x)
    tiny = 1e-12 * max(float(load_delay.max(initial=0.0)), 1.0)
    if np.any(load_delay <= tiny):
        vertex = int(np.argmin(load_delay))
        raise SizingError(
            f"vertex {vertex} ({dag.vertices[vertex].label}) has no load "
            "delay; dangling vertices must be removed before sizing"
        )

    transpose = model.a_matrix.T.tocsr()
    indptr, indices, data = (
        transpose.indptr,
        transpose.indices,
        transpose.data,
    )
    w = dag.area_weight
    y = np.zeros(dag.n)
    for block in dag.blocks:
        if len(block) == 1:
            i = block[0]
            start, end = indptr[i], indptr[i + 1]
            acc = float(data[start:end] @ y[indices[start:end]])
            y[i] = (w[i] + acc) / load_delay[i]
            continue
        block_pos = {i: k for k, i in enumerate(block)}
        size = len(block)
        matrix = np.zeros((size, size))
        rhs = np.zeros(size)
        for k, i in enumerate(block):
            matrix[k, k] = load_delay[i]
            rhs[k] = w[i]
            start, end = indptr[i], indptr[i + 1]
            for j, a_ji in zip(indices[start:end], data[start:end]):
                if j in block_pos:
                    matrix[k, block_pos[j]] -= a_ji
                else:
                    rhs[k] += a_ji * y[j]
        solution = np.linalg.solve(matrix, rhs)
        for k, i in enumerate(block):
            y[i] = solution[k]
    if np.any(y <= 0):
        vertex = int(np.argmin(y))
        raise SizingError(
            f"non-positive area sensitivity at vertex {vertex}; the "
            "(D - A) system is not an M-matrix here (model bug?)"
        )
    return x * y


def build_dphase_lp(
    dag: SizingDag,
    config: FsduConfiguration,
    sensitivities: np.ndarray,
    min_dd: np.ndarray,
    max_dd: np.ndarray,
    cost_scale: float,
    weight_scale: float,
) -> DifferenceConstraintLP:
    """Assemble the (integerized) difference-constraint LP of eq. (10)."""
    transformed = transform_dag(dag)
    n = dag.n
    weights = np.zeros(transformed.n_nodes)
    scaled_c = integerize_values(sensitivities * weight_scale)
    weights[:n] = -scaled_c
    weights[n : 2 * n] = scaled_c

    lp = DifferenceConstraintLP(
        n_nodes=transformed.n_nodes,
        weights=weights,
        pinned=transformed.pinned,
    )
    edge_lookup = {edge: k for k, edge in enumerate(dag.edges)}
    po_lookup = {leaf: k for k, leaf in enumerate(dag.po_vertices)}
    for arc in transformed.arcs:
        if arc.kind == "delay":
            i = arc.src
            fsdu = config.delay_fsdu[i]
            # r(i) - r(Dmy(i)) <= fsdu - MIN_ΔD(i)
            lp.add(i, arc.dst, integerize_values(
                (fsdu - min_dd[i]) * cost_scale, mode="floor"))
            # r(Dmy(i)) - r(i) <= MAX_ΔD(i) - fsdu
            lp.add(arc.dst, i, integerize_values(
                (max_dd[i] - fsdu) * cost_scale, mode="floor"))
        elif arc.kind == "wire":
            assert arc.origin is not None
            fsdu = config.wire_fsdu[edge_lookup[arc.origin]]
            lp.add(arc.src, arc.dst, integerize_values(
                fsdu * cost_scale, mode="floor"))
        else:  # po
            leaf = arc.src - n
            fsdu = config.po_fsdu[po_lookup[leaf]]
            lp.add(arc.src, arc.dst, integerize_values(
                fsdu * cost_scale, mode="floor"))
    return lp


def d_phase(
    dag: SizingDag,
    x: np.ndarray,
    config: FsduConfiguration,
    min_dd: np.ndarray,
    max_dd: np.ndarray,
    backend: str = "auto",
    warm_start: object | None = None,
) -> DPhaseResult:
    """Run one D-phase: redistribute delay budgets at fixed sizes.

    ``warm_start`` is the ``warm_basis`` of a previous D-phase on the
    same DAG (the W/D alternation produces structurally identical flow
    instances every iteration); it accelerates supporting backends and
    never changes the optimum.
    """
    if np.any(max_dd < min_dd):
        raise SizingError("MAX_ΔD must dominate MIN_ΔD componentwise")
    sensitivities = area_sensitivities(dag, x)

    # Decimal integerization (paper: "multiplying every constant term by
    # some power of 10 and rounding").
    span = max(float(np.max(max_dd)), float(config.horizon), 1e-30)
    cost_scale = 10.0 ** (6 - int(np.floor(np.log10(span))))
    weight_scale = 10.0 ** (
        6 - int(np.floor(np.log10(max(float(sensitivities.max()), 1e-30))))
    )

    lp = build_dphase_lp(
        dag, config, sensitivities, min_dd, max_dd, cost_scale, weight_scale
    )
    solution = solve_difference_lp(lp, backend=backend, warm_start=warm_start)

    n = dag.n
    r_vertex = solution.r[:n] / cost_scale
    r_dummy = solution.r[n : 2 * n] / cost_scale
    delta_d = config.delay_fsdu + r_dummy - r_vertex
    # The floor() integerization keeps ΔD within the trust region up to
    # one cost-scale quantum; clip the residual quantization noise.
    delta_d = np.clip(delta_d, min_dd, max_dd)
    predicted = float(sensitivities @ delta_d)
    return DPhaseResult(
        delta_d=delta_d,
        r_vertex=r_vertex,
        r_dummy=r_dummy,
        sensitivities=sensitivities,
        predicted_gain=predicted,
        backend=solution.backend,
        stats=solution.stats,
        warm_basis=solution.warm_basis,
    )
