"""W-phase: minimum-area sizes for fixed delay budgets (paper eq. (11)).

Thin orchestration over :mod:`repro.sizing.smp`: derives the sweep
order from the DAG (reverse topological order, which makes the
relaxation a single backward-substitution pass for gate sizing, per the
paper's section 2.3) and verifies the resulting delays against the
budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.circuit_dag import SizingDag
from repro.sizing.smp import SmpResult, solve_smp

__all__ = ["WPhaseResult", "w_phase"]


@dataclass
class WPhaseResult:
    """Sizes meeting the budgets, plus violation diagnostics."""

    x: np.ndarray
    delays: np.ndarray
    budgets: np.ndarray
    clamped: list[int]
    sweeps: int

    @property
    def feasible(self) -> bool:
        """True when every budget was met without clamping."""
        return not self.clamped

    @property
    def worst_violation(self) -> float:
        """Largest delay-over-budget excess (<= 0 when feasible)."""
        return float(np.max(self.delays - self.budgets))


def w_phase(
    dag: SizingDag,
    budgets: np.ndarray,
    max_sweeps: int = 200,
) -> WPhaseResult:
    """Solve the W-phase SMP for ``dag`` under per-vertex ``budgets``."""
    sweep_order = dag.topo_order[::-1]
    result: SmpResult = solve_smp(
        model=dag.model,
        budgets=budgets,
        lower=dag.lower,
        upper=dag.upper,
        sweep_order=sweep_order,
        max_sweeps=max_sweeps,
    )
    delays = dag.model.delays(result.x)
    return WPhaseResult(
        x=result.x,
        delays=delays,
        budgets=np.asarray(budgets, dtype=float),
        clamped=result.clamped,
        sweeps=result.sweeps,
    )
