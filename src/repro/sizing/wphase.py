"""W-phase: minimum-area sizes for fixed delay budgets (paper eq. (11)).

Thin orchestration over the SMP solvers: derives the sweep order from
the DAG (reverse topological order, which makes the relaxation a single
backward-substitution pass for gate sizing, per the paper's section
2.3), dispatches to the selected relaxation engine and verifies the
resulting delays against the budgets.

Two engines produce identical iterates (parity-tested in
``tests/test_kernels.py``):

* ``engine="vectorized"`` (default) — the level-blocked kernel of
  :mod:`repro.sizing.kernels`, relaxing whole dependency levels with
  sliced CSR matvecs; the level plan is cached on the DAG so repeated
  W-phases (one per MINFLOTRANSIT iteration) pay the analysis once.
* ``engine="scalar"`` — the per-vertex Gauss-Seidel reference loop of
  :mod:`repro.sizing.smp`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.circuit_dag import SizingDag
from repro.errors import SizingError
from repro.sizing.kernels import SMP_ENGINES, get_smp_plan, solve_smp_blocked
from repro.sizing.smp import SmpResult, solve_smp

__all__ = ["WPhaseResult", "w_phase"]


@dataclass
class WPhaseResult:
    """Sizes meeting the budgets, plus violation diagnostics."""

    x: np.ndarray
    delays: np.ndarray
    budgets: np.ndarray
    clamped: list[int]
    sweeps: int
    #: Relaxation engine that produced the solution.
    engine: str = "scalar"
    #: Wall time of the relaxation itself (excludes the delay check).
    seconds: float = 0.0

    @property
    def feasible(self) -> bool:
        """True when every budget was met without clamping."""
        return not self.clamped

    @property
    def worst_violation(self) -> float:
        """Largest delay-over-budget excess (<= 0 when feasible)."""
        return float(np.max(self.delays - self.budgets))


def w_phase(
    dag: SizingDag,
    budgets: np.ndarray,
    max_sweeps: int = 200,
    engine: str = "vectorized",
) -> WPhaseResult:
    """Solve the W-phase SMP for ``dag`` under per-vertex ``budgets``.

    ``engine`` picks the relaxation implementation (``"vectorized"``
    level-blocked kernel by default, ``"scalar"`` reference loop); both
    produce the same least fixed point, clamped set and sweep count.
    """
    if engine not in SMP_ENGINES:
        raise SizingError(
            f"unknown W-phase engine {engine!r}; pick from {SMP_ENGINES}"
        )
    if engine == "vectorized":
        result: SmpResult = solve_smp_blocked(
            model=dag.model,
            budgets=budgets,
            lower=dag.lower,
            upper=dag.upper,
            plan=get_smp_plan(dag),
            max_sweeps=max_sweeps,
        )
    else:
        result = solve_smp(
            model=dag.model,
            budgets=budgets,
            lower=dag.lower,
            upper=dag.upper,
            sweep_order=dag.topo_order[::-1],
            max_sweeps=max_sweeps,
        )
    delays = dag.model.delays(result.x)
    return WPhaseResult(
        x=result.x,
        delays=delays,
        budgets=np.asarray(budgets, dtype=float),
        clamped=result.clamped,
        sweeps=result.sweeps,
        engine=result.engine,
        seconds=result.seconds,
    )
