"""W-phase: minimum-area sizes for fixed delay budgets (paper eq. (11)).

Thin orchestration over the SMP solvers: derives the sweep order from
the DAG (reverse topological order, which makes the relaxation a single
backward-substitution pass for gate sizing, per the paper's section
2.3), dispatches to the selected relaxation engine and verifies the
resulting delays against the budgets.

Two engines produce identical iterates (parity-tested in
``tests/test_kernels.py``):

* ``engine="vectorized"`` (default) — the level-blocked kernel of
  :mod:`repro.sizing.kernels`, relaxing whole dependency levels with
  sliced CSR matvecs; the level plan is cached on the DAG so repeated
  W-phases (one per MINFLOTRANSIT iteration) pay the analysis once.
* ``engine="scalar"`` — the per-vertex Gauss-Seidel reference loop of
  :mod:`repro.sizing.smp`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.circuit_dag import SizingDag
from repro.errors import SizingError
from repro.sizing.fingerprint import dag_digest
from repro.sizing.kernels import SMP_ENGINES, get_smp_plan, solve_smp_blocked
from repro.sizing.smp import SmpResult, smp_headroom, solve_smp

__all__ = ["WPhaseResult", "w_phase"]

#: The SMP solvers' default convergence threshold factor (see
#: ``solve_smp``/``solve_smp_blocked``): needed here to derive the
#: cold-equivalent sweep count of a seeded solve.
_SMP_TOL = 1e-10


@dataclass
class WPhaseResult:
    """Sizes meeting the budgets, plus violation diagnostics."""

    x: np.ndarray
    delays: np.ndarray
    budgets: np.ndarray
    clamped: list[int]
    sweeps: int
    #: Relaxation engine that produced the solution.
    engine: str = "scalar"
    #: Wall time of the relaxation itself (excludes the delay check).
    seconds: float = 0.0
    #: Warm-start status when a donor seed was offered ("seeded", or
    #: the fallback reason); None on cold calls.  Telemetry only —
    #: never part of job payloads.
    warm: str | None = None

    @property
    def feasible(self) -> bool:
        """True when every budget was met without clamping."""
        return not self.clamped

    @property
    def worst_violation(self) -> float:
        """Largest delay-over-budget excess (<= 0 when feasible)."""
        return float(np.max(self.delays - self.budgets))


def _solve(
    dag: SizingDag,
    budgets: np.ndarray,
    max_sweeps: int,
    engine: str,
    x0: np.ndarray | None,
) -> SmpResult:
    if engine == "vectorized":
        return solve_smp_blocked(
            model=dag.model,
            budgets=budgets,
            lower=dag.lower,
            upper=dag.upper,
            plan=get_smp_plan(dag),
            max_sweeps=max_sweeps,
            x0=x0,
        )
    return solve_smp(
        model=dag.model,
        budgets=budgets,
        lower=dag.lower,
        upper=dag.upper,
        sweep_order=dag.topo_order[::-1],
        max_sweeps=max_sweeps,
        x0=x0,
    )


def _warm_gate(dag: SizingDag, budgets: np.ndarray, warm: object) -> str | None:
    """Why a donor seed may NOT be used (None when it may).

    The exactness certificate: in gate mode the relaxation is backward
    substitution and only moves sizes up, so any seed with
    ``lower <= x0 <= lfp`` converges to the identical least fixed
    point.  A donor that solved the *same* instance under budgets that
    dominate (are everywhere >=) the new ones has ``lfp_donor <= lfp``
    by monotonicity, which is exactly that certificate.
    """
    if not isinstance(warm, dict):
        return "not a seed record"
    if dag.mode != "gate":
        return "transistor blocks couple mutually"
    try:
        x = np.asarray(warm.get("x"), dtype=float)
        donor = np.asarray(warm.get("budgets"), dtype=float)
    except (TypeError, ValueError):
        return "malformed seed arrays"
    if x.shape != (dag.n,) or donor.shape != (dag.n,):
        return "seed shape mismatch"
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(donor))):
        return "non-finite seed"
    if np.any(x < dag.lower) or np.any(x > dag.upper):
        return "seed outside size bounds"
    if not np.all(donor >= np.asarray(budgets, dtype=float)):
        return "donor budgets do not dominate"
    if warm.get("dag_sha") != dag_digest(dag):
        return "instance mismatch"
    return None


def _seed_exact(dag: SizingDag, budgets: np.ndarray, x: np.ndarray) -> bool:
    """Bitwise fixed-point check of a seeded solution (the monitor).

    In gate mode the least fixed point satisfies, exactly in floats:
    every live relaxed vertex equals the clipped requirement derived
    from its (final) downstream sizes, and every never-relaxed vertex
    sits at its lower bound.  A seed that started above the fixed point
    survives relaxation unchanged (updates only move up) and fails
    precisely this test, which forces the cold fallback.
    """
    model = dag.model
    headroom, _no_load = smp_headroom(model, budgets)
    law = model.law
    relaxed = np.zeros(dag.n, dtype=bool)
    for rows, matrix in get_smp_plan(dag).blocks:
        loads = matrix @ x + model.b[rows]
        live = loads > 0.0
        rows_live = rows[live]
        relaxed[rows_live] = True
        required = law.g_inverse_array(headroom[rows_live] / loads[live])
        value = np.minimum(
            np.maximum(required, dag.lower[rows_live]), dag.upper[rows_live]
        )
        if not np.array_equal(x[rows_live], value):
            return False
    return bool(np.array_equal(x[~relaxed], dag.lower[~relaxed]))


def w_phase(
    dag: SizingDag,
    budgets: np.ndarray,
    max_sweeps: int = 200,
    engine: str = "vectorized",
    warm: dict | None = None,
) -> WPhaseResult:
    """Solve the W-phase SMP for ``dag`` under per-vertex ``budgets``.

    ``engine`` picks the relaxation implementation (``"vectorized"``
    level-blocked kernel by default, ``"scalar"`` reference loop); both
    produce the same least fixed point, clamped set and sweep count.

    ``warm`` optionally carries a corpus seed — ``{"x", "budgets",
    "dag_sha"}`` from :mod:`repro.runner.corpus` — used as the
    relaxation's starting point when the dominated-budget gate admits
    it (same instance, donor budgets everywhere >= the new ones, gate
    mode).  A bitwise exactness monitor verifies the converged solution
    against the fixed-point equations and re-solves cold on any
    mismatch, so the returned sizes are identical to a cold solve in
    all cases; only the sweep count may shrink.
    """
    if engine not in SMP_ENGINES:
        raise SizingError(
            f"unknown W-phase engine {engine!r}; pick from {SMP_ENGINES}"
        )
    x0: np.ndarray | None = None
    warm_status: str | None = None
    if warm is not None:
        # The exactness monitor recomputes the fixed point with the
        # level-blocked matvecs, which certify the vectorized engine's
        # iterate bitwise; the scalar loop's summation order differs in
        # the last ulp, so a seeded scalar solve would always fail the
        # monitor and re-solve cold — skip the wasted work up front.
        if engine != "vectorized":
            warm_status = "no exactness certificate for scalar engine"
            warm = None
    if warm is not None:
        reason = _warm_gate(dag, budgets, warm)
        if reason is None:
            x0 = np.array(warm["x"], dtype=float)
            warm_status = "seeded"
        else:
            warm_status = reason
    result: SmpResult | None = None
    sweeps: int | None = None
    if x0 is not None:
        try:
            seeded = _solve(dag, budgets, max_sweeps, engine, x0)
            if _seed_exact(dag, budgets, seeded.x):
                result = seeded
                # A seeded run can converge in fewer sweeps than a
                # cold one, but the sweep count is part of the cached
                # payload and must not depend on corpus state.  In
                # gate mode the cold figure is derivable exactly from
                # the (verified) fixed point: one sweep when no size
                # moved past the solvers' convergence threshold, two
                # otherwise — so report that, not the seeded count.
                scale = float(np.max(np.abs(dag.upper))) or 1.0
                moved = (
                    float(np.max(result.x - dag.lower)) if dag.n else 0.0
                )
                sweeps = 2 if moved > _SMP_TOL * scale else 1
            else:
                warm_status = "seeded iterate left the cold basin"
        except SizingError:
            warm_status = "seeded relaxation failed"
    if result is None:
        result = _solve(dag, budgets, max_sweeps, engine, None)
        sweeps = result.sweeps
    delays = dag.model.delays(result.x)
    return WPhaseResult(
        x=result.x,
        delays=delays,
        budgets=np.asarray(budgets, dtype=float),
        clamped=result.clamped,
        sweeps=sweeps,
        engine=result.engine,
        seconds=result.seconds,
        warm=warm_status,
    )
