"""Sizing optimizers: TILOS baseline, D-phase, W-phase, MINFLOTRANSIT."""

from repro.sizing.batch import (
    BatchedSmpPlan,
    build_batched_smp_plan,
    solve_smp_batched,
)
from repro.sizing.dphase import (
    DPhaseResult,
    area_sensitivities,
    build_dphase_lp,
    d_phase,
)
from repro.sizing.kernels import (
    SMP_ENGINES,
    SmpPlan,
    TilosPlan,
    get_smp_plan,
    get_tilos_plan,
    solve_smp_blocked,
)
from repro.sizing.lagrangian import (
    LagrangianOptions,
    LagrangianResult,
    lagrangian_size,
)
from repro.sizing.minflo import MinfloOptions, minflotransit
from repro.sizing.recovery import RecoveryResult, greedy_downsize
from repro.sizing.result import IterationRecord, SizingResult
from repro.sizing.serialize import load_result, save_result
from repro.sizing.smp import SmpResult, solve_smp
from repro.sizing.tilos import TilosOptions, TilosResult, require_feasible, tilos_size
from repro.sizing.wphase import WPhaseResult, w_phase

__all__ = [
    "BatchedSmpPlan",
    "DPhaseResult",
    "IterationRecord",
    "LagrangianOptions",
    "LagrangianResult",
    "MinfloOptions",
    "RecoveryResult",
    "SMP_ENGINES",
    "SizingResult",
    "SmpPlan",
    "SmpResult",
    "TilosOptions",
    "TilosPlan",
    "TilosResult",
    "WPhaseResult",
    "area_sensitivities",
    "build_batched_smp_plan",
    "build_dphase_lp",
    "d_phase",
    "get_smp_plan",
    "get_tilos_plan",
    "greedy_downsize",
    "lagrangian_size",
    "load_result",
    "minflotransit",
    "require_feasible",
    "save_result",
    "solve_smp",
    "solve_smp_batched",
    "solve_smp_blocked",
    "tilos_size",
    "w_phase",
]
