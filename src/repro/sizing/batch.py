"""Batched multi-circuit SMP kernels: one matvec per level, many jobs.

The PR 5 kernels vectorize *within* one circuit: a campaign of hundreds
of small W-phase jobs still pays one kernel invocation — plan lookup,
a handful of tiny-array numpy calls, result assembly — per circuit.
This module stacks N independent instances into a single block-diagonal
system so a whole batch relaxes together:

* :func:`build_batched_smp_plan` concatenates the per-circuit
  :class:`~repro.sizing.kernels.SmpPlan` level buckets *by level
  position*: the stacked level-``k`` block holds level ``k`` of every
  circuit that has one, as one CSR matrix over the stacked size vector
  (each circuit's rows read only its own column span — independent
  circuits share no coupling terms, so the stacked matrix is
  block-diagonal by construction).
* :func:`solve_smp_batched` then runs the level-blocked Gauss-Seidel
  relaxation of :func:`~repro.sizing.kernels.solve_smp_blocked` on the
  stacked system: one sliced matvec relaxes level ``k`` of *every*
  circuit at once, and one ``SizeLaw.g_inverse_array`` call serves the
  whole batch (the instances must share one size law for exactly this
  reason).

**Exactness.**  Every stacked row is a verbatim copy of the same CSR
row the single-circuit kernel would multiply — same data, same in-row
column order, columns shifted by the circuit's offset — so scipy's
row-wise matvec accumulates the identical float sequence and produces
bitwise-identical loads.  All remaining per-level arithmetic
(``g_inverse``, clip, move computation) is elementwise.  Convergence is
tracked *per circuit* (each against its own ``tol * max|upper|``
threshold, reduced with an order-insensitive maximum): a converged
circuit freezes — its rows are masked out of subsequent updates, which
is required for bit-identity because the scalar solver stops sweeping
it, and continued relaxation would keep applying sub-threshold
``value > x`` bumps.  Frozen circuits therefore keep their scalar sweep
count, and their clamped set is computed at freeze time with the same
:func:`~repro.sizing.smp.find_clamped` call the per-circuit kernel
makes.  ``tests/test_batch.py`` asserts all of this differentially
(``==`` on sizes, sweep counts and clamped sets, across generator
families, both sizing modes, ragged and mid-batch-infeasible batches);
``tests/test_properties.py`` adds grouping/permutation invariance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.delay.model import VertexDelayModel
from repro.errors import SizingError
from repro.sizing.kernels import SmpPlan
from repro.sizing.smp import SmpResult, find_clamped, smp_headroom

__all__ = [
    "BatchedSmpPlan",
    "build_batched_smp_plan",
    "solve_smp_batched",
]


@dataclass(frozen=True)
class BatchedSmpPlan:
    """Stacked level schedule for a batch of independent SMP instances.

    ``blocks`` holds one ``(rows, matrix, circuits)`` triple per stacked
    level: the *global* vertex ids relaxed by that level (per-circuit
    ids shifted by the circuit's offset), the block-diagonal row slice
    of the stacked coupling matrix, and the circuit index owning each
    row (for per-circuit convergence masks).  Circuits live in disjoint
    ``offsets[c]:offsets[c + 1]`` spans of the stacked size vector.
    """

    n_circuits: int
    #: Total stacked vertex count (``offsets[-1]``).
    n_total: int
    #: Per-circuit spans of the stacked vectors, ``n_circuits + 1`` long.
    offsets: np.ndarray
    #: ``(rows, matrix, circuits)`` per stacked level, in level order.
    blocks: list[tuple[np.ndarray, sparse.csr_matrix, np.ndarray]]
    #: Wall time spent stacking the per-circuit plans.
    build_seconds: float

    @property
    def n_levels(self) -> int:
        """Stacked levels per sweep (the deepest member circuit's count)."""
        return len(self.blocks)


def build_batched_smp_plan(
    models: list[VertexDelayModel], plans: list[SmpPlan]
) -> BatchedSmpPlan:
    """Stack per-circuit level plans into one block-diagonal schedule.

    Level buckets are aligned by position: the stacked level ``k`` holds
    the ``k``-th block of every plan deep enough to have one.  That
    preserves each circuit's own level order within a sweep (its level
    ``k`` always relaxes before its level ``k + 1``), which is the only
    ordering the read-order argument of
    :mod:`repro.sizing.kernels` needs — circuits are independent, so
    their relative interleaving is irrelevant.  Row data is copied
    verbatim from the per-circuit CSR slices (column indices shifted by
    the circuit offset), keeping the stacked matvec bitwise-faithful.
    """
    start = time.perf_counter()
    if len(models) != len(plans):
        raise SizingError(
            f"batched plan needs one model per plan "
            f"(got {len(models)} models, {len(plans)} plans)"
        )
    offsets = np.zeros(len(plans) + 1, dtype=np.int64)
    np.cumsum([plan.n for plan in plans], out=offsets[1:])
    n_total = int(offsets[-1])

    blocks: list[tuple[np.ndarray, sparse.csr_matrix, np.ndarray]] = []
    depth = max((plan.n_levels for plan in plans), default=0)
    for level in range(depth):
        rows_parts: list[np.ndarray] = []
        circ_parts: list[np.ndarray] = []
        data_parts: list[np.ndarray] = []
        index_parts: list[np.ndarray] = []
        count_parts: list[np.ndarray] = []
        for c, plan in enumerate(plans):
            if level >= plan.n_levels:
                continue
            rows, matrix = plan.blocks[level]
            rows_parts.append(rows + offsets[c])
            circ_parts.append(np.full(rows.size, c, dtype=np.int64))
            data_parts.append(matrix.data)
            index_parts.append(matrix.indices.astype(np.int64) + offsets[c])
            count_parts.append(np.diff(matrix.indptr))
        if not rows_parts:
            continue
        counts = np.concatenate(count_parts)
        indptr = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        stacked = sparse.csr_matrix(
            (
                np.concatenate(data_parts),
                np.concatenate(index_parts),
                indptr,
            ),
            shape=(counts.size, n_total),
        )
        blocks.append((
            np.concatenate(rows_parts),
            stacked,
            np.concatenate(circ_parts),
        ))
    return BatchedSmpPlan(
        n_circuits=len(plans),
        n_total=n_total,
        offsets=offsets,
        blocks=blocks,
        build_seconds=time.perf_counter() - start,
    )


def solve_smp_batched(
    models: list[VertexDelayModel],
    budgets: list[np.ndarray],
    lowers: list[np.ndarray],
    uppers: list[np.ndarray],
    plan: BatchedSmpPlan,
    max_sweeps: int = 200,
    tol: float = 1e-10,
) -> list[SmpResult | None]:
    """Relax a whole batch of SMP instances in stacked level sweeps.

    The batched twin of
    :func:`~repro.sizing.kernels.solve_smp_blocked`: one entry per
    instance comes back as the *identical* :class:`SmpResult` the
    single-circuit kernel would produce — same sizes, sweep count and
    clamped set, because every instance converges against its own
    threshold and freezes the moment it would have stopped sweeping
    alone.  An instance that does not converge within ``max_sweeps``
    yields ``None`` (its slot only — the rest of the batch still
    solves); callers re-run such stragglers through the per-job path,
    which raises the same :class:`SizingError` a solo solve would.

    All instances must share one size law (checked), so the batched
    ``g_inverse_array`` is a single call over the stacked rows.
    Instance budgets must be individually valid — callers validate via
    :func:`~repro.sizing.smp.smp_headroom` per instance first, so one
    infeasible-budget job fails alone instead of poisoning the batch.
    """
    start = time.perf_counter()
    k = plan.n_circuits
    if k == 0:
        return []
    if not (len(models) == len(budgets) == len(lowers) == len(uppers) == k):
        raise SizingError(
            f"batched solve arity mismatch: plan has {k} circuits, got "
            f"{len(models)} models / {len(budgets)} budgets / "
            f"{len(lowers)} lowers / {len(uppers)} uppers"
        )
    law = models[0].law
    for model in models[1:]:
        if model.law != law:
            raise SizingError(
                "batched SMP relaxation needs one shared size law; "
                "got mixed laws across the batch"
            )

    offsets = plan.offsets
    headroom = np.empty(plan.n_total)
    b = np.empty(plan.n_total)
    budget_arrays: list[np.ndarray] = []
    for c, (model, budget) in enumerate(zip(models, budgets)):
        budget = np.asarray(budget, dtype=float)
        budget_arrays.append(budget)
        per_circuit, _no_load = smp_headroom(model, budget)
        headroom[offsets[c]:offsets[c + 1]] = per_circuit
        b[offsets[c]:offsets[c + 1]] = model.b
    lower = np.concatenate(
        [np.asarray(lo, dtype=float) for lo in lowers]
    )
    upper = np.concatenate(
        [np.asarray(up, dtype=float) for up in uppers]
    )
    # Per-circuit convergence thresholds: each instance converges
    # against its own tol * max|upper| scale, exactly as it would solo.
    thresholds = np.array([
        tol * (float(np.max(np.abs(np.asarray(up)))) or 1.0)
        for up in uppers
    ])

    x = lower.copy()
    active = np.ones(k, dtype=bool)
    results: list[SmpResult | None] = [None] * k
    for sweep in range(1, max_sweeps + 1):
        largest = np.zeros(k)
        for rows, matrix, circuits in plan.blocks:
            mask = active[circuits]
            if not mask.any():
                continue
            # Full stacked matvec: each row bitwise-equals the
            # single-circuit kernel's sliced matvec for that row.
            # Frozen circuits' rows are computed (their x no longer
            # changes, so the flops are harmless) and masked out of the
            # update below — freezing is what preserves per-circuit
            # sweep counts.
            loads = matrix @ x
            if not mask.all():
                rows = rows[mask]
                loads = loads[mask]
                circuits = circuits[mask]
            loads = loads + b[rows]
            live = loads > 0.0
            if not live.all():
                if not live.any():
                    continue
                rows = rows[live]
                loads = loads[live]
                circuits = circuits[live]
            required = law.g_inverse_array(headroom[rows] / loads)
            value = np.minimum(
                np.maximum(required, lower[rows]), upper[rows]
            )
            moves = value - x[rows]
            grew = moves > 0.0
            if grew.any():
                np.maximum.at(largest, circuits[grew], moves[grew])
                x[rows[grew]] = value[grew]
        converged = np.flatnonzero(active & (largest <= thresholds))
        for c in converged:
            sizes = x[offsets[c]:offsets[c + 1]].copy()
            results[c] = SmpResult(
                x=sizes,
                clamped=find_clamped(
                    models[c], budget_arrays[c], sizes, uppers[c], tol
                ),
                sweeps=sweep,
                engine="vectorized",
                seconds=time.perf_counter() - start,
            )
        active[converged] = False
        if not active.any():
            break
    return results
