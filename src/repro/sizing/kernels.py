"""Vectorized sizing kernels: level-blocked SMP + array TILOS scoring.

The two sizing phases that still ran scalar Python after the flow and
timing engines were vectorized are the W-phase relaxation
(:func:`repro.sizing.smp.solve_smp` — a per-vertex Gauss-Seidel loop
with a CSR row dot product per vertex per sweep) and the TILOS
sensitivity scan (:func:`repro.sizing.tilos.tilos_size` — per-candidate
Python closures plus an ``(i, j) -> a_ij`` dict rebuilt on every call).
This module turns both inner loops into precomputed array kernels; the
scalar paths remain selectable (``engine="scalar"`` /
``kernel="scalar"``) and the two implementations are parity-tested
against each other (``tests/test_kernels.py``).

**Level-blocked SMP.**  One relaxation sweep updates each vertex ``i``
to ``clip(g^{-1}(headroom_i / load_i(x)))`` where ``load_i`` reads the
sizes of the vertices in row ``i`` of the coupling matrix ``A``.  The
scalar sweep visits vertices in ``sweep_order`` (reverse topological
order); :func:`build_smp_plan` buckets that order into *levels* such
that the blocked sweep reads exactly the values the scalar sweep reads:

* if the scalar sweep reads an **updated** value (``a_ij != 0`` and
  ``j`` earlier in ``sweep_order``), then ``level(i) > level(j)`` — the
  dependency is relaxed in an earlier level;
* if the scalar sweep reads a **stale** value (``a_ij != 0`` and ``j``
  later in ``sweep_order``), then ``level(i) <= level(j)`` — the
  dependency has not been touched yet when ``i``'s level runs.

Both constraint families point from earlier to later sweep positions,
so ``level(i) = position(i)`` always satisfies them: the system is
feasible and the longest-path assignment computed by
:func:`build_smp_plan` is its componentwise-minimal solution.  Within a
level no vertex reads another (an intra-level read would be either an
updated read, forcing different levels, or a stale read whose reverse
coupling would), so a whole level relaxes as one sliced CSR
matvec and the blocked sweep produces the *same iterates* as the scalar
sweep — same fixed point, same clamped set, same sweep count — for
gate-mode DAGs and transistor-mode coupled blocks alike.

**Array-based TILOS.**  :func:`get_tilos_plan` caches per DAG (the
structure never changes across calls, but campaigns and warm-started
sweeps used to rebuild it per ``tilos_size`` call): the transpose
adjacency in CSR form (who reads a resized vertex), the coupling
coefficients as a sorted edge-key array for vectorized
``a[pred, v]`` lookups along a critical path, and the legacy
``(i, j) -> a_ij`` dict the scalar kernel consumes.  With the plan, a
whole critical path scores in a handful of numpy expressions
(:meth:`TilosPlan.score_path`) and the post-bump delay refresh over the
disturbed vertices is one gathered segment sum
(:meth:`TilosPlan.refresh_delays`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.delay.model import VertexDelayModel
from repro.errors import SizingError
from repro.sizing.smp import SmpResult, find_clamped, smp_headroom

__all__ = [
    "SMP_ENGINES",
    "SmpPlan",
    "TilosPlan",
    "build_smp_plan",
    "build_tilos_plan",
    "get_smp_plan",
    "get_tilos_plan",
    "solve_smp_blocked",
]

#: Selectable W-phase relaxation engines (vectorized is the default).
SMP_ENGINES = ("vectorized", "scalar")


def _gathered_loads(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    b: np.ndarray,
    rows: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """``A[rows] @ x + b[rows]`` without materializing a submatrix.

    One gather of the rows' CSR segments plus a ``bincount`` segment
    sum; empty rows contribute only their constant load.
    """
    counts = indptr[rows + 1] - indptr[rows]
    total = int(counts.sum())
    if total == 0:
        return b[rows].astype(float)
    offsets = np.zeros(rows.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    seq = np.arange(total, dtype=np.int64) + np.repeat(
        indptr[rows] - offsets, counts
    )
    values = data[seq] * x[indices[seq]]
    loads = np.bincount(
        np.repeat(np.arange(rows.size), counts),
        weights=values,
        minlength=rows.size,
    )
    return loads + b[rows]


# -- level-blocked SMP -------------------------------------------------


@dataclass(frozen=True)
class SmpPlan:
    """Precomputed level schedule for the blocked W-phase relaxation.

    ``blocks`` holds one ``(rows, matrix)`` pair per non-empty level:
    the vertex ids relaxed by that level (no-load vertices are dropped
    at build time, mirroring the scalar sweep's skip) and the matching
    row slice of the coupling matrix, so one sweep is
    ``len(blocks)`` sliced matvecs instead of ``n`` Python iterations.
    """

    n: int
    #: Per-vertex level of the blocked schedule (diagnostic/testing).
    level: np.ndarray
    #: ``(rows, A[rows])`` per level, in level order.
    blocks: list[tuple[np.ndarray, sparse.csr_matrix]]
    #: Wall time spent building the plan (amortized once per DAG).
    build_seconds: float

    @property
    def n_levels(self) -> int:
        """Number of relaxation levels (the blocked sweep's length)."""
        return len(self.blocks)


def build_smp_plan(
    model: VertexDelayModel, sweep_order: np.ndarray
) -> SmpPlan:
    """Bucket ``sweep_order`` into levels the blocked sweep can batch.

    Levels are the longest-path solution of the read-order constraints
    described in the module docstring, computed in one pass over
    ``sweep_order`` (each vertex consults the already-levelled subset
    of its coupling row and column).  Cost is ``O(|V| + |E|)`` with
    small numpy constants; :func:`get_smp_plan` caches the result per
    DAG so campaigns pay it once.
    """
    start = time.perf_counter()
    n = model.n
    order = np.asarray(sweep_order, dtype=np.int64)
    if order.shape != (n,):
        raise SizingError(
            f"sweep order covers {order.size} vertices, model has {n}"
        )
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)
    a = model.a_matrix
    a_t = a.T.tocsr()
    indptr, indices = a.indptr, a.indices
    t_indptr, t_indices = a_t.indptr, a_t.indices

    level = np.zeros(n, dtype=np.int64)
    for v in order.tolist():
        best = 0
        deps = indices[indptr[v]:indptr[v + 1]]
        if deps.size:
            early = deps[rank[deps] < rank[v]]
            if early.size:
                best = int(level[early].max()) + 1
        readers = t_indices[t_indptr[v]:t_indptr[v + 1]]
        if readers.size:
            early = readers[rank[readers] < rank[v]]
            if early.size:
                best = max(best, int(level[early].max()))
        level[v] = best

    no_load = (model.b == 0) & (np.diff(indptr) == 0)
    relaxed = order[~no_load[order]]
    blocks: list[tuple[np.ndarray, sparse.csr_matrix]] = []
    if relaxed.size:
        stable = np.argsort(level[relaxed], kind="stable")
        by_level = relaxed[stable]
        bounds = np.flatnonzero(np.diff(level[by_level])) + 1
        for rows in np.split(by_level, bounds):
            blocks.append((rows, a[rows]))
    return SmpPlan(
        n=n,
        level=level,
        blocks=blocks,
        build_seconds=time.perf_counter() - start,
    )


def get_smp_plan(dag) -> SmpPlan:
    """The cached :class:`SmpPlan` of ``dag`` (built on first use).

    The plan depends only on the DAG's coupling structure and its
    canonical sweep order (reverse topological order), both immutable,
    so one plan serves every W-phase solve on the DAG.
    """
    plan = dag.kernel_cache.get("smp_plan")
    if plan is None:
        plan = build_smp_plan(dag.model, dag.topo_order[::-1])
        dag.kernel_cache["smp_plan"] = plan
    return plan


def solve_smp_blocked(
    model: VertexDelayModel,
    budgets: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    plan: SmpPlan,
    max_sweeps: int = 200,
    tol: float = 1e-10,
    x0: np.ndarray | None = None,
) -> SmpResult:
    """Level-blocked relaxation: the vectorized twin of ``solve_smp``.

    Runs the same Gauss-Seidel recurrence as the scalar solver but
    relaxes whole levels per step — a sliced CSR matvec for the loads,
    one array ``g_inverse`` and clip for the update.  Produces the same
    iterates as the scalar sweep (see the module docstring for the
    read-order argument), so results agree to float reassociation
    noise and the sweep count is identical.

    ``x0`` optionally replaces ``lower`` as the starting point; the
    relaxation only moves sizes up, so the least fixed point is reached
    unchanged exactly when ``lower <= x0 <= lfp`` — the caller owns
    that certificate (see :func:`repro.sizing.wphase.w_phase`).
    """
    start = time.perf_counter()
    budgets = np.asarray(budgets, dtype=float)
    headroom, _no_load = smp_headroom(model, budgets)
    law = model.law
    b = model.b

    x = lower.astype(float).copy() if x0 is None else np.array(x0, dtype=float)
    scale = float(np.max(np.abs(upper))) or 1.0
    threshold = tol * scale
    for sweep in range(1, max_sweeps + 1):
        largest_move = 0.0
        for rows, matrix in plan.blocks:
            loads = matrix @ x
            loads += b[rows]
            live = loads > 0.0
            if not live.all():
                if not live.any():
                    continue
                rows = rows[live]
                loads = loads[live]
            required = law.g_inverse_array(headroom[rows] / loads)
            value = np.minimum(
                np.maximum(required, lower[rows]), upper[rows]
            )
            moves = value - x[rows]
            grew = moves > 0.0
            if grew.any():
                move = float(moves.max())
                if move > largest_move:
                    largest_move = move
                x[rows[grew]] = value[grew]
        if largest_move <= threshold:
            clamped = find_clamped(model, budgets, x, upper, tol)
            return SmpResult(
                x=x,
                clamped=clamped,
                sweeps=sweep,
                engine="vectorized",
                seconds=time.perf_counter() - start,
            )
    raise SizingError(
        f"SMP relaxation did not converge in {max_sweeps} sweeps"
    )


# -- array-based TILOS sensitivities -----------------------------------


@dataclass(frozen=True)
class TilosPlan:
    """Cached TILOS coupling structure for one DAG.

    Everything ``tilos_size`` used to rebuild per call: the transpose
    adjacency (who must have its delay refreshed when a vertex is
    resized), the coupling coefficients as a sorted edge-key array for
    vectorized point lookups, and the scalar kernel's
    ``(i, j) -> a_ij`` dict.
    """

    n: int
    #: Transpose CSR adjacency: readers of vertex ``v`` live at
    #: ``t_indices[t_indptr[v]:t_indptr[v + 1]]``.
    t_indptr: np.ndarray
    t_indices: np.ndarray
    #: Coupling entries keyed by ``row * n + col``, sorted for
    #: :meth:`coupling_at` binary searches.
    edge_keys: np.ndarray
    edge_values: np.ndarray
    #: The scalar kernel's lookup dict (kept for the fallback path).
    coupling: dict[tuple[int, int], float]

    def dependents(self, vertex: int) -> np.ndarray:
        """Vertices whose delay reads ``vertex``'s size (``a_uv != 0``)."""
        return self.t_indices[
            self.t_indptr[vertex]:self.t_indptr[vertex + 1]
        ]

    def coupling_at(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """``a[rows, cols]`` for paired index arrays (0 where absent)."""
        if self.edge_keys.size == 0 or rows.size == 0:
            return np.zeros(rows.size, dtype=float)
        query = rows.astype(np.int64) * self.n + cols
        pos = np.searchsorted(self.edge_keys, query)
        pos = np.minimum(pos, self.edge_keys.size - 1)
        hit = self.edge_keys[pos] == query
        return np.where(hit, self.edge_values[pos], 0.0)

    def score_path(
        self,
        dag,
        x: np.ndarray,
        path: list[int],
        bump: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sensitivities of bumping each eligible critical-path vertex.

        Vectorized version of the scalar candidate loop: one gathered
        load computation for the whole path, one coupling lookup for
        the consecutive (predecessor, vertex) pairs, one array of
        sensitivities.  Returns ``(sensitivities, vertices)`` sorted
        the way the scalar kernel sorts its candidate list —
        descending sensitivity, ties broken toward the larger vertex
        id — so both kernels pick identical bump sequences.
        """
        model = dag.model
        law = model.law
        verts = np.asarray(path, dtype=np.int64)
        xp = x[verts]
        cap = dag.upper[verts]
        new_size = np.minimum(xp * bump, cap)
        dx = new_size - xp
        eligible = (xp < cap * (1 - 1e-12)) & (dx > 0)
        if not eligible.any():
            return np.empty(0), np.empty(0, dtype=np.int64)
        a = model.a_matrix
        loads = _gathered_loads(
            a.indptr, a.indices, a.data, model.b, verts, x
        )
        delta = (law.g_array(new_size) - law.g_array(xp)) * loads
        if verts.size > 1:
            coupling = self.coupling_at(verts[:-1], verts[1:])
            delta[1:] = delta[1:] + law.g_array(xp[:-1]) * coupling * dx[1:]
        verts = verts[eligible]
        sensitivity = -delta[eligible] / (
            dag.area_weight[verts] * dx[eligible]
        )
        order = np.lexsort((verts, sensitivity))[::-1]
        return sensitivity[order], verts[order]

    def refresh_delays(
        self,
        model: VertexDelayModel,
        changed: np.ndarray,
        x: np.ndarray,
        delays: np.ndarray,
    ) -> None:
        """Recompute ``delays[changed]`` in place after a resize.

        The vectorized form of the scalar kernel's per-vertex
        ``delays[u] = vertex_delay(u)`` refresh loop.
        """
        a = model.a_matrix
        loads = _gathered_loads(
            a.indptr, a.indices, a.data, model.b, changed, x
        )
        delays[changed] = (
            model.intrinsic[changed] + model.law.g_array(x[changed]) * loads
        )


def build_tilos_plan(dag) -> TilosPlan:
    """Extract the TILOS coupling structure from a DAG's delay model."""
    model = dag.model
    n = model.n
    transpose = model.a_matrix.T.tocsr()
    coo = model.a_matrix.tocoo()
    keys = coo.row.astype(np.int64) * n + coo.col
    order = np.argsort(keys)
    coupling = {
        (int(i), int(j)): float(value)
        for i, j, value in zip(coo.row, coo.col, coo.data)
    }
    return TilosPlan(
        n=n,
        t_indptr=transpose.indptr,
        t_indices=transpose.indices,
        edge_keys=keys[order],
        edge_values=coo.data[order].astype(float),
        coupling=coupling,
    )


def get_tilos_plan(dag) -> TilosPlan:
    """The cached :class:`TilosPlan` of ``dag`` (built on first use).

    Replaces the per-call ``O(|E|)`` dict rebuild the scalar
    implementation paid on every ``tilos_size`` invocation — campaigns
    and warm-started sweeps now pay the extraction once per DAG.
    """
    plan = dag.kernel_cache.get("tilos_plan")
    if plan is None:
        plan = build_tilos_plan(dag)
        dag.kernel_cache["tilos_plan"] = plan
    return plan
