"""Lagrangian-relaxation sizing (the paper's reference [8]).

Chen, Chu and Wong ("Fast and exact simultaneous gate and wire sizing
by Lagrangian relaxation", ICCAD 1998) is the competing exact method
the paper discusses; implementing it gives an independent optimizer to
cross-validate MINFLOTRANSIT's results — two different exact methods
should land on comparable areas.

Formulation: arrival-time variables are eliminated by restricting the
arc multipliers λ to *flow conservation* (inflow = outflow at every
vertex, primary-output arcs draining to a virtual sink), after which
the Lagrangian subproblem separates:

    minimize_x  sum_i [ w_i x_i + Λ_i d_i(x) ],   Λ_i = sum of λ leaving i

whose coordinate-wise optimum under the Elmore law has the closed form

    x_i* = sqrt( Λ_i L_i(x) / (w_i + sum_j Λ_j a_ji / x_j) )

(clamped to the bounds).  The outer loop is a projected subgradient
ascent on λ with step c/k, the classic schedule.

This module is a faithful but compact re-implementation: it maintains
primal feasibility reports through the shared timing engine, and
derives a final feasible solution by scaling the subproblem sizing's
delay profile to the target and re-running the W-phase on it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.dag.circuit_dag import SizingDag
from repro.errors import InfeasibleTimingError, SizingError
from repro.sizing.wphase import w_phase
from repro.timing.sta import GraphTimer

__all__ = ["LagrangianOptions", "LagrangianResult", "lagrangian_size"]


@dataclass(frozen=True)
class LagrangianOptions:
    """Knobs of the subgradient Lagrangian sizer."""

    max_iterations: int = 120
    subproblem_sweeps: int = 8
    initial_step: float = 2.0
    tolerance: float = 1e-4

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise SizingError("max_iterations must be positive")
        if self.initial_step <= 0:
            raise SizingError("initial_step must be positive")


@dataclass
class LagrangianResult:
    """Outcome of a Lagrangian sizing run."""

    x: np.ndarray
    area: float
    critical_path_delay: float
    target: float
    iterations: int
    runtime_seconds: float
    #: Area of the (possibly infeasible) final subproblem solution —
    #: a lower-bound indicator for diagnostics.
    relaxed_area: float

    @property
    def meets_target(self) -> bool:
        """True when the final delay satisfies the target (tolerant)."""
        return self.critical_path_delay <= self.target * (1 + 1e-9)


def lagrangian_size(
    dag: SizingDag,
    target: float,
    options: LagrangianOptions | None = None,
) -> LagrangianResult:
    """Size ``dag`` to ``target`` by Lagrangian relaxation."""
    options = options or LagrangianOptions()
    timer = GraphTimer(dag)
    start = time.perf_counter()

    model = dag.model
    indptr, indices, data = (
        model.a_matrix.indptr,
        model.a_matrix.indices,
        model.a_matrix.data,
    )
    transpose = model.a_matrix.T.tocsr()
    w = dag.area_weight
    lower, upper = dag.lower, dag.upper

    # Arc list: structural edges plus one virtual arc per PO leaf.
    arcs_src = np.concatenate(
        [dag.edge_src, np.array(dag.po_vertices, dtype=np.int64)]
    )
    arcs_dst = np.concatenate(
        [dag.edge_dst, np.full(len(dag.po_vertices), -1, dtype=np.int64)]
    )
    n_arcs = len(arcs_src)
    lam = np.ones(n_arcs)

    def project_conservation(lam: np.ndarray) -> np.ndarray:
        """Scale incoming multipliers so inflow(v) = outflow(v)."""
        out_sum = np.zeros(dag.n)
        np.add.at(out_sum, arcs_src, lam)
        in_sum = np.zeros(dag.n)
        interior = arcs_dst >= 0
        np.add.at(in_sum, arcs_dst[interior], lam[interior])
        scale = np.ones(dag.n)
        has_in = in_sum > 1e-15
        scale[has_in] = out_sum[has_in] / in_sum[has_in]
        adjusted = lam.copy()
        adjusted[interior] *= scale[arcs_dst[interior]]
        return adjusted

    def vertex_multipliers(lam: np.ndarray) -> np.ndarray:
        big_lambda = np.zeros(dag.n)
        np.add.at(big_lambda, arcs_src, lam)
        return big_lambda

    def solve_subproblem(big_lambda: np.ndarray, x0: np.ndarray) -> np.ndarray:
        """Coordinate minimization of sum w_i x_i + Λ_i d_i(x)."""
        x = x0.copy()
        for _sweep in range(options.subproblem_sweeps):
            for i in dag.topo_order[::-1]:
                lo, hi = indptr[i], indptr[i + 1]
                load = float(data[lo:hi] @ x[indices[lo:hi]]) + model.b[i]
                tlo, thi = transpose.indptr[i], transpose.indptr[i + 1]
                pull = w[i]
                for j, a_ji in zip(
                    transpose.indices[tlo:thi], transpose.data[tlo:thi]
                ):
                    pull += big_lambda[j] * a_ji / x[j]
                push = big_lambda[i] * load
                if push <= 0 or pull <= 0:
                    x[i] = lower[i]
                    continue
                x[i] = min(max(np.sqrt(push / pull), lower[i]), upper[i])
        return x

    # Longest path by intrinsic delay alone: the unavoidable floor used
    # by the feasibility repair's scaling argument.
    cp_intrinsic = timer.analyze(model.intrinsic).critical_path_delay
    if cp_intrinsic >= target:
        raise InfeasibleTimingError(
            f"target {target:.6g} is below the intrinsic-delay floor "
            f"{cp_intrinsic:.6g}"
        )

    # Projected subgradient ascent.
    x = dag.min_sizes() * 2.0
    best_feasible: np.ndarray | None = None
    best_area = np.inf
    iterations = 0
    for k in range(1, options.max_iterations + 1):
        iterations = k
        lam = project_conservation(lam)
        big_lambda = vertex_multipliers(lam)
        x = solve_subproblem(big_lambda, x)
        delays = model.delays(x)
        report = timer.analyze(delays, horizon=target)

        feasible_x = _repair_to_target(
            dag, x, delays, report, target, timer, cp_intrinsic
        )
        if feasible_x is not None:
            area = dag.area(feasible_x)
            if area < best_area:
                improvement = (best_area - area) / max(best_area, 1e-12)
                best_area = area
                best_feasible = feasible_x
                if improvement < options.tolerance and k > 10:
                    break

        # Subgradient: arc slack violations (positive when u's signal
        # arrives after v's arrival variable would allow).
        at = report.at
        finish = at[arcs_src] + delays[arcs_src]
        arrival_limit = np.where(arcs_dst >= 0, at[np.maximum(arcs_dst, 0)], target)
        violation = finish - arrival_limit
        step = options.initial_step / (k * float(np.abs(violation).max() or 1.0))
        lam = np.maximum(lam * (1.0 + step * violation), 1e-9)

    if best_feasible is None:
        raise InfeasibleTimingError(
            f"Lagrangian sizing found no feasible solution for "
            f"target {target:.6g}"
        )
    # Feasibility restoration is conservative (uniform load scaling), so
    # finish with a slack-recovery pass — standard practice in LRS
    # implementations, which alternate relaxed steps with greedy repair.
    from repro.sizing.recovery import greedy_downsize

    recovered = greedy_downsize(dag, best_feasible, target, timer=timer)
    if recovered.area < best_area:
        best_feasible = recovered.x
        best_area = recovered.area
    final = timer.analyze(model.delays(best_feasible), horizon=target)
    return LagrangianResult(
        x=best_feasible,
        area=best_area,
        critical_path_delay=final.critical_path_delay,
        target=target,
        iterations=iterations,
        runtime_seconds=time.perf_counter() - start,
        relaxed_area=dag.area(x),
    )


def _repair_to_target(
    dag: SizingDag,
    x: np.ndarray,
    delays: np.ndarray,
    report,
    target: float,
    timer: GraphTimer,
    cp_intrinsic: float,
) -> np.ndarray | None:
    """Feasible sizing derived from the relaxed iterate.

    Scales the iterate's *loading* delay profile onto the target and
    asks the W-phase for minimal sizes meeting it; returns None when
    the scaled budgets are unreachable within the bounds.

    Soundness of the scale: with s = (T - cp_intr) / (cp - cp_intr),
    every path p satisfies  sum intr_p + s * sum load_p
    = s * total_p + (1-s) * sum intr_p <= s*cp + (1-s)*cp_intr = T.
    """
    cp = report.critical_path_delay
    if cp <= target:
        return x.copy()
    if cp <= cp_intrinsic:
        return None
    scale = (target - cp_intrinsic) / (cp - cp_intrinsic)
    budgets = dag.model.intrinsic + scale * (delays - dag.model.intrinsic)
    headroom = budgets - dag.model.intrinsic
    if np.any(headroom <= 0):
        return None
    try:
        result = w_phase(dag, budgets)
    except SizingError:
        return None
    if not result.feasible:
        return None
    verify = timer.analyze(dag.model.delays(result.x), horizon=target)
    if verify.critical_path_delay > target * (1 + 1e-9):
        return None
    return result.x
