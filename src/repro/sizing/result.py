"""Result records for the sizing optimizers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IterationRecord", "SizingResult"]


@dataclass(frozen=True)
class IterationRecord:
    """One D/W iteration of MINFLOTRANSIT.

    The telemetry fields trace where the iteration spent its work: the
    timing cone the incremental engine actually re-propagated (against
    a full-STA equivalent of 1.0) and the flow solver's warm-start
    reuse (see :class:`repro.flow.registry.SolveStats`).
    """

    iteration: int
    area: float
    critical_path_delay: float
    predicted_gain: float
    alpha: float
    accepted: bool
    backend: str
    #: Vertices re-propagated by incremental timing this iteration.
    repropagated_vertices: int = 0
    #: ``repropagated / full-pass equivalent``; 1.0 means no savings.
    cone_fraction: float = 1.0
    #: Whether the D-phase flow solve started from the previous basis.
    warm_start: bool = False
    #: Augmenting paths the D-phase flow solve pushed.
    augmentations: int = 0
    #: Supply units the flow solve routed (warm solves route only the
    #: divergence gap left by the reused basis).
    supply_routed: float = 0.0
    #: SMP relaxation sweeps the W-phase took this iteration.
    w_sweeps: int = 0
    #: W-phase relaxation engine ("vectorized" level-blocked kernel or
    #: the "scalar" reference loop); "" on records predating the field.
    kernel: str = ""


@dataclass
class SizingResult:
    """Final outcome of a sizing run."""

    name: str
    mode: str
    x: np.ndarray
    area: float
    critical_path_delay: float
    target: float
    converged: bool
    runtime_seconds: float
    initial_area: float
    iterations: list[IterationRecord] = field(default_factory=list)
    #: Cumulative wall time per phase across all iterations (keys:
    #: ``timing``, ``balance``, ``d_phase``, ``w_phase``); empty on
    #: results predating the field.  ``python -m repro size
    #: --phase-stats`` renders this breakdown.
    phase_seconds: dict = field(default_factory=dict)

    @property
    def n_iterations(self) -> int:
        """Number of W/D iterations recorded."""
        return len(self.iterations)

    @property
    def w_sweeps_total(self) -> int:
        """Total SMP sweeps across all recorded W-phases."""
        return sum(rec.w_sweeps for rec in self.iterations)

    @property
    def area_saving_vs_initial(self) -> float:
        """Fractional area saved relative to the initial solution."""
        if self.initial_area <= 0:
            return 0.0
        return 1.0 - self.area / self.initial_area

    @property
    def meets_target(self) -> bool:
        """True when the final delay satisfies the target (tolerant)."""
        return self.critical_path_delay <= self.target * (1 + 1e-9)

    def summary(self) -> str:
        """One-line human-readable digest (the CLI's result line)."""
        return (
            f"{self.name} [{self.mode}]: area {self.area:.2f} "
            f"(initial {self.initial_area:.2f}, "
            f"saved {100 * self.area_saving_vs_initial:.2f}%), "
            f"delay {self.critical_path_delay:.2f} / target {self.target:.2f}, "
            f"{self.n_iterations} iterations, "
            f"{'converged' if self.converged else 'iteration limit'}"
        )
