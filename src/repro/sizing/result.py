"""Result records for the sizing optimizers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IterationRecord", "SizingResult"]


@dataclass(frozen=True)
class IterationRecord:
    """One D/W iteration of MINFLOTRANSIT."""

    iteration: int
    area: float
    critical_path_delay: float
    predicted_gain: float
    alpha: float
    accepted: bool
    backend: str


@dataclass
class SizingResult:
    """Final outcome of a sizing run."""

    name: str
    mode: str
    x: np.ndarray
    area: float
    critical_path_delay: float
    target: float
    converged: bool
    runtime_seconds: float
    initial_area: float
    iterations: list[IterationRecord] = field(default_factory=list)

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    @property
    def area_saving_vs_initial(self) -> float:
        """Fractional area saved relative to the initial solution."""
        if self.initial_area <= 0:
            return 0.0
        return 1.0 - self.area / self.initial_area

    @property
    def meets_target(self) -> bool:
        return self.critical_path_delay <= self.target * (1 + 1e-9)

    def summary(self) -> str:
        return (
            f"{self.name} [{self.mode}]: area {self.area:.2f} "
            f"(initial {self.initial_area:.2f}, "
            f"saved {100 * self.area_saving_vs_initial:.2f}%), "
            f"delay {self.critical_path_delay:.2f} / target {self.target:.2f}, "
            f"{self.n_iterations} iterations, "
            f"{'converged' if self.converged else 'iteration limit'}"
        )
