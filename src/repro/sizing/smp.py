"""Simple Monotonic Program solver (paper section 2.3.2, reference [10]).

The W-phase problem

    minimize   sum_i w_i x_i
    subject to intrinsic_i + g(x_i) * (sum_j a_ij x_j + b_i) <= budget_i
               lower_i <= x_i <= upper_i

is a Simple Monotonic Program: rewriting each constraint as

    x_i >= g^{-1}( (budget_i - intrinsic_i) / L_i(x) )

gives ``x >= F(x)`` with ``F`` monotone non-decreasing, so the feasible
set is closed upward and the componentwise-minimal feasible point — the
least fixed point of ``max(lower, F(.))`` — simultaneously minimizes
every ``x_i`` and hence any non-negatively weighted area objective.

The solver runs Gauss-Seidel constraint relaxation in reverse
topological order: exact after one sweep for gate sizing (dependencies
point strictly forward), and a convergent block relaxation for
transistor sizing (devices of one gate couple mutually).  Worst case
``O(|V| |E|)`` sweeps-times-work, the bound quoted in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.delay.model import VertexDelayModel
from repro.errors import SizingError

__all__ = ["SmpResult", "find_clamped", "smp_headroom", "solve_smp"]


@dataclass
class SmpResult:
    """Least-fixed-point solution of the W-phase SMP."""

    x: np.ndarray
    #: Vertices whose requirement exceeded the upper size bound; their
    #: delay budgets are not met (the caller must reject or repair).
    clamped: list[int]
    sweeps: int
    #: Which relaxation ran: "scalar" (per-vertex Gauss-Seidel) or
    #: "vectorized" (level-blocked kernel, :mod:`repro.sizing.kernels`).
    engine: str = "scalar"
    #: Wall time the relaxation itself took.
    seconds: float = 0.0

    @property
    def feasible(self) -> bool:
        """True when no vertex hit its upper size bound."""
        return not self.clamped


def smp_headroom(
    model: VertexDelayModel, budgets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Validated ``(headroom, no_load)`` arrays for an SMP instance.

    ``headroom`` is ``budgets - intrinsic``; ``no_load`` flags vertices
    with neither coupling terms nor constant load (their delay is fixed
    at the intrinsic value, so any budget is acceptable).  Raises
    :class:`SizingError` when a loaded vertex has no headroom — shared
    by the scalar and vectorized relaxations so both reject the same
    instances with the same diagnostic.
    """
    budgets = np.asarray(budgets, dtype=float)
    headroom = budgets - model.intrinsic
    no_load = (model.b == 0) & (np.diff(model.a_matrix.indptr) == 0)
    bad = np.flatnonzero((headroom <= 0) & ~no_load)
    if bad.size:
        i = int(bad[0])
        raise SizingError(
            f"budget {budgets[i]:.6g} at vertex {i} does not exceed the "
            f"intrinsic delay {model.intrinsic[i]:.6g}"
        )
    return headroom, no_load


def solve_smp(
    model: VertexDelayModel,
    budgets: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    sweep_order: np.ndarray,
    max_sweeps: int = 200,
    tol: float = 1e-10,
    engine: str = "scalar",
    x0: np.ndarray | None = None,
) -> SmpResult:
    """Compute minimal sizes meeting per-vertex delay budgets.

    ``sweep_order`` should list vertices so that dependencies come late
    (reverse topological order): the relaxation then converges in one
    sweep for DAG-ordered dependencies and geometrically for
    intra-block coupling.

    ``engine`` selects the implementation: ``"scalar"`` runs the
    per-vertex Gauss-Seidel loop below; ``"vectorized"`` delegates to
    the level-blocked kernel in :mod:`repro.sizing.kernels` (identical
    iterates, whole levels relaxed per numpy call).  Callers that hold
    a :class:`~repro.dag.circuit_dag.SizingDag` should prefer
    :func:`repro.sizing.wphase.w_phase`, which reuses a cached level
    plan instead of rebuilding it per call.

    ``x0`` optionally replaces ``lower`` as the starting point.  The
    relaxation only ever moves sizes up, so the least fixed point is
    reached unchanged exactly when ``lower <= x0 <= lfp`` elementwise —
    callers own that certificate (see
    :func:`repro.sizing.wphase.w_phase`'s dominated-budget gate).
    """
    if engine == "vectorized":
        from repro.sizing.kernels import build_smp_plan, solve_smp_blocked

        plan = build_smp_plan(model, sweep_order)
        return solve_smp_blocked(
            model, budgets, lower, upper, plan,
            max_sweeps=max_sweeps, tol=tol, x0=x0,
        )
    if engine != "scalar":
        raise SizingError(
            f"unknown SMP engine {engine!r}; pick 'scalar' or 'vectorized'"
        )
    solve_start = time.perf_counter()
    budgets = np.asarray(budgets, dtype=float)
    headroom, no_load = smp_headroom(model, budgets)

    indptr = model.a_matrix.indptr
    indices = model.a_matrix.indices
    data = model.a_matrix.data
    b = model.b
    law = model.law

    x = lower.astype(float).copy() if x0 is None else np.array(x0, dtype=float)
    scale = float(np.max(np.abs(upper))) or 1.0
    for sweep in range(1, max_sweeps + 1):
        largest_move = 0.0
        for i in sweep_order:
            if no_load[i]:
                continue
            start, end = indptr[i], indptr[i + 1]
            load = float(data[start:end] @ x[indices[start:end]]) + b[i]
            if load <= 0.0:
                continue
            required = law.g_inverse(headroom[i] / load)
            value = min(max(required, lower[i]), upper[i])
            move = value - x[i]
            if move > tol * scale:
                largest_move = max(largest_move, move)
                x[i] = value
            elif value > x[i]:
                x[i] = value
        if largest_move <= tol * scale:
            clamped = find_clamped(model, budgets, x, upper, tol)
            return SmpResult(
                x=x, clamped=clamped, sweeps=sweep, engine="scalar",
                seconds=time.perf_counter() - solve_start,
            )
    raise SizingError(
        f"SMP relaxation did not converge in {max_sweeps} sweeps"
    )


def find_clamped(
    model: VertexDelayModel,
    budgets: np.ndarray,
    x: np.ndarray,
    upper: np.ndarray,
    tol: float,
) -> list[int]:
    """Vertices at the upper bound whose budget is still violated."""
    delays = model.delays(x)
    scale = max(float(np.max(budgets)), 1.0)
    violated = delays > budgets + 1e-7 * scale
    at_cap = x >= upper - tol
    return np.flatnonzero(violated & at_cap).tolist()
