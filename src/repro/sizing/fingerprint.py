"""Circuit-feature fingerprints for warm-start retrieval.

The warm-start corpus (:mod:`repro.runner.corpus`) needs to answer
"which prior solve looks most like this job?" *before* doing any
sizing work, so the features here are cheap aggregates of a
:class:`~repro.dag.circuit_dag.SizingDag` that are invariant under
node relabeling and construction order: cell-class counts (vertex
kind x fan-in arity), the level-occupancy histogram, the
fanout-degree distribution.  Two
circuits that differ only in net names or gate insertion order produce
identical fingerprints (property-tested in
``tests/test_properties.py``).

Two levels of identity coexist on purpose:

* :func:`dag_features` — the *fuzzy* fingerprint used for
  nearest-neighbor ranking via :func:`fingerprint_distance`.
* :func:`dag_digest` — the *exact* structural hash (topology, delay
  coefficients, size bounds, delay law) that gates trajectory replay
  in :func:`repro.sizing.tilos.tilos_size`.  Replaying a recorded bump
  sequence is only bitwise-identical to a cold run when the instance
  is bitwise the same, so the digest covers every array the greedy
  loop reads.

:func:`fingerprint_distance` is symmetric and zero exactly when two
records agree on circuit identity *and* the option/spec vector — the
contract the corpus retrieval tests pin down.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import Counter

import numpy as np

from repro.dag.circuit_dag import SizingDag

__all__ = [
    "FINGERPRINT_VERSION",
    "dag_digest",
    "dag_features",
    "fingerprint_distance",
]

#: Bump when the feature layout changes; corpus rows recorded under a
#: different version are ignored (and stripped) rather than compared.
FINGERPRINT_VERSION = 1

#: Fanout degrees at or above this share one histogram bucket — the
#: tail carries little ranking signal and bounding the vector keeps
#: records small.
_MAX_FANOUT_BUCKET = 32


def dag_features(dag: SizingDag) -> dict:
    """Relabel-invariant feature vector of a sizing DAG.

    Every entry is an aggregate over vertex *multisets* (counts and
    histograms), so permuting vertex indices or renaming nets changes
    nothing.  Returned values are plain JSON types — the dict is
    stored verbatim inside cache entries.
    """
    if dag.n:
        level_hist = np.bincount(dag.level, minlength=dag.n_levels)
    else:
        level_hist = np.zeros(0, dtype=np.int64)
    degrees = np.array(
        [min(len(out), _MAX_FANOUT_BUCKET) for out in dag.fanout],
        dtype=np.int64,
    )
    fanout_hist = (
        np.bincount(degrees, minlength=1) if dag.n
        else np.zeros(0, dtype=np.int64)
    )
    # Cell classes keyed by (vertex kind, fan-in arity) — NOT by gate
    # instance name, which would break relabel invariance.  Arity
    # separates inverters from 2- and 3-input cells, which is the bulk
    # of the cross-circuit ranking signal.
    fanin = np.bincount(
        np.asarray(dag.edge_dst, dtype=np.int64), minlength=dag.n
    )
    cells = Counter(f"{v.kind}/{int(fanin[v.index])}" for v in dag.vertices)
    return {
        "fingerprint": FINGERPRINT_VERSION,
        "mode": dag.mode,
        "n": int(dag.n),
        "n_edges": int(dag.n_edges),
        "depth": int(dag.n_levels),
        "cells": {name: int(count) for name, count in sorted(cells.items())},
        "level_hist": [int(c) for c in level_hist],
        "fanout_hist": [int(c) for c in fanout_hist],
    }


def dag_digest(dag: SizingDag) -> str:
    """Exact structural identity of a sizing instance (hex sha256).

    Covers everything the TILOS greedy loop reads: topology (edges and
    their multiplicity), the delay model's coefficient arrays, the
    size bounds and area weights, and the delay law's configuration.
    Two DAGs with equal digests run bit-identical greedy trajectories,
    which is what licenses warm-start replay.
    """
    model = dag.model
    h = hashlib.sha256()
    h.update(f"dag/1|{dag.mode}|{dag.n}|".encode())
    law = model.law
    law_fields: object
    if dataclasses.is_dataclass(law):
        law_fields = sorted(dataclasses.asdict(law).items())
    else:
        law_fields = ()
    h.update(f"{type(law).__name__}|{law_fields}|".encode())
    arrays = (
        dag.edge_src,
        dag.edge_dst,
        dag.edge_multiplicity,
        model.a_matrix.data,
        model.a_matrix.indices,
        model.a_matrix.indptr,
        model.b,
        model.intrinsic,
        dag.lower,
        dag.upper,
        dag.area_weight,
    )
    for arr in arrays:
        contiguous = np.ascontiguousarray(arr)
        h.update(str(contiguous.dtype).encode())
        h.update(contiguous.tobytes())
    return h.hexdigest()


def _hist_distance(a: list, b: list) -> float:
    """Normalized L1 distance between two count histograms, in [0, 1]."""
    n = max(len(a), len(b))
    if n == 0:
        return 0.0
    pa = list(a) + [0] * (n - len(a))
    pb = list(b) + [0] * (n - len(b))
    total = sum(pa) + sum(pb)
    if total == 0:
        return 0.0
    return sum(abs(x - y) for x, y in zip(pa, pb)) / total


def _cell_distance(a: dict, b: dict) -> float:
    """Normalized L1 distance between cell-count maps, in [0, 1]."""
    names = sorted(set(a) | set(b))  # fixed order: exact symmetry
    total = sum(a.values()) + sum(b.values())
    if total == 0:
        return 0.0
    return sum(abs(a.get(n, 0) - b.get(n, 0)) for n in names) / total


def _feature_distance(a: dict, b: dict) -> float:
    """Fuzzy distance between two :func:`dag_features` dicts, in [0, 4]."""
    na, nb = a.get("n", 0), b.get("n", 0)
    size = abs(na - nb) / max(na, nb, 1)
    return (
        size
        + _hist_distance(a.get("level_hist", []), b.get("level_hist", []))
        + _hist_distance(a.get("fanout_hist", []), b.get("fanout_hist", []))
        + _cell_distance(a.get("cells", {}), b.get("cells", {}))
    )


def fingerprint_distance(a: dict, b: dict) -> float:
    """Distance between two corpus records (identity + features).

    Symmetric by construction, and zero exactly when the records agree
    on circuit identity (``dag_sha``/``netlist_sha256``), mode, tech,
    job kind, the solver option vector and the delay spec/target.
    Mismatched identities land at a distance >= 1 so an exact repeat
    always outranks any cross-circuit transfer candidate; the feature
    terms then order the cross-circuit candidates by structural
    similarity.
    """
    d = 0.0
    same_circuit = (
        a.get("dag_sha") == b.get("dag_sha")
        and a.get("netlist_sha256") == b.get("netlist_sha256")
    )
    if not same_circuit:
        d += 1.0 + _feature_distance(
            a.get("features") or {}, b.get("features") or {}
        )
    if a.get("kind") != b.get("kind"):
        d += 32.0
    if a.get("mode") != b.get("mode"):
        d += 8.0
    if a.get("tech") != b.get("tech"):
        d += 8.0
    if a.get("options") != b.get("options"):
        d += 4.0
    spec_a, spec_b = a.get("delay_spec"), b.get("delay_spec")
    if isinstance(spec_a, (int, float)) and isinstance(spec_b, (int, float)):
        d += min(abs(float(spec_a) - float(spec_b)), 1.0) * 0.5
    elif spec_a != spec_b:
        d += 0.5
    target_a, target_b = a.get("target"), b.get("target")
    if isinstance(target_a, (int, float)) and isinstance(target_b, (int, float)):
        scale = max(abs(float(target_a)), abs(float(target_b)), 1e-30)
        d += min(abs(float(target_a) - float(target_b)) / scale, 1.0) * 0.25
    elif target_a != target_b:
        d += 0.25
    return d
