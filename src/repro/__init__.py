"""MINFLOTRANSIT reproduction — min-cost flow based transistor sizing.

Reproduces Sundararajan, Sapatnekar & Parhi, "MINFLOTRANSIT: Min-Cost
Flow Based Transistor Sizing Tool", DAC 2000.

Quickstart::

    from repro import (
        build_sizing_dag, default_technology, minflotransit, tilos_size,
    )
    from repro.generators import ripple_carry_adder

    circuit = ripple_carry_adder(8)
    tech = default_technology()
    dag = build_sizing_dag(circuit, tech, mode="gate")

    from repro.timing import analyze
    d_min = analyze(dag, dag.min_sizes()).critical_path_delay

    result = minflotransit(dag, target=0.5 * d_min)
    print(result.summary())
"""

from repro.circuit import (
    Circuit,
    CircuitBuilder,
    circuit_stats,
    load_bench,
    loads_bench,
    map_to_primitives,
    save_bench,
)
from repro.dag import SizingDag, build_sizing_dag
from repro.errors import (
    ConvergenceError,
    InfeasibleTimingError,
    NetlistError,
    ReproError,
    SizingError,
)
from repro.sizing import (
    MinfloOptions,
    SizingResult,
    TilosOptions,
    TilosResult,
    minflotransit,
    tilos_size,
)
from repro.tech import (
    CellLibrary,
    Technology,
    default_library,
    default_technology,
)
from repro.timing import (
    GraphTimer,
    IncrementalTimer,
    TimingReport,
    analyze,
)

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "CellLibrary",
    "ConvergenceError",
    "GraphTimer",
    "IncrementalTimer",
    "InfeasibleTimingError",
    "MinfloOptions",
    "NetlistError",
    "ReproError",
    "SizingDag",
    "SizingError",
    "SizingResult",
    "Technology",
    "TilosOptions",
    "TilosResult",
    "TimingReport",
    "analyze",
    "build_sizing_dag",
    "circuit_stats",
    "default_library",
    "default_technology",
    "load_bench",
    "loads_bench",
    "map_to_primitives",
    "minflotransit",
    "save_bench",
    "tilos_size",
    "__version__",
]
