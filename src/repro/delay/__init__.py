"""Delay models: simple monotonic functionals and the Elmore special case."""

from repro.delay.model import VertexDelayModel
from repro.delay.monotonic import (
    ElmoreSizeLaw,
    PowerSizeLaw,
    SizeLaw,
    check_decomposition,
)

__all__ = [
    "ElmoreSizeLaw",
    "PowerSizeLaw",
    "SizeLaw",
    "VertexDelayModel",
    "check_decomposition",
]
