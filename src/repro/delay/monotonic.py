"""Simple monotonic functionals (paper definitions 1 and 2).

A vertex delay is a *simple monotonic functional* when it can be written
``D_i = g(x_i) * q(x_1, ..., x_{i-1}, x_{i+1}, ..., x_n)`` with ``g``
monotone decreasing in the vertex's own size and ``q`` monotone
increasing in every other size.  A delay model is admissible for
MINFLOTRANSIT when every vertex delay decomposes into a sum of such
functionals (definition 2).

In this library the concrete representation is

    delay(i) = intrinsic_i + g(x_i) * (sum_j a_ij x_j + b_i)

with ``a_ij >= 0``, ``b_i >= 0`` and ``g`` from a :class:`SizeLaw`.  The
Elmore model is the special case ``g(x) = 1/x`` (paper equation (4));
:class:`PowerSizeLaw` generalizes to ``g(x) = 1/x**p`` which exercises
the paper's claim that the approach extends beyond Elmore delays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import DelayModelError

__all__ = ["SizeLaw", "ElmoreSizeLaw", "PowerSizeLaw", "check_decomposition"]


@dataclass(frozen=True)
class SizeLaw:
    """The monotone-decreasing self-size law ``g`` and its inverse.

    Subclasses must guarantee ``g`` is positive and strictly decreasing
    on ``x > 0`` so that the W-phase fixed point map stays monotone.
    """

    def g(self, x: float) -> float:
        raise NotImplementedError

    def g_inverse(self, value: float) -> float:
        """Solve ``g(x) = value`` for x (value > 0)."""
        raise NotImplementedError

    # Array evaluation: the vectorized sizing kernels
    # (:mod:`repro.sizing.kernels`) and the delay model's bulk
    # evaluation call these on whole vertex batches.  The base
    # implementations fall back to the scalar law element by element,
    # so custom laws stay correct; the built-in laws override with
    # closed-form numpy expressions.

    def g_array(self, x: np.ndarray) -> np.ndarray:
        """``g`` applied elementwise to a size vector."""
        x = np.asarray(x, dtype=float)
        return np.fromiter((self.g(float(v)) for v in x), float, x.size)

    def g_inverse_array(self, values: np.ndarray) -> np.ndarray:
        """``g_inverse`` applied elementwise (all values > 0)."""
        values = np.asarray(values, dtype=float)
        return np.fromiter(
            (self.g_inverse(float(v)) for v in values), float, values.size
        )


@dataclass(frozen=True)
class ElmoreSizeLaw(SizeLaw):
    """``g(x) = 1/x`` — the Elmore delay model of paper equation (4)."""

    def g(self, x: float) -> float:
        return 1.0 / x

    def g_inverse(self, value: float) -> float:
        return 1.0 / value

    def g_array(self, x: np.ndarray) -> np.ndarray:
        """Elementwise ``1/x`` (bitwise identical to the scalar law)."""
        return 1.0 / np.asarray(x, dtype=float)

    def g_inverse_array(self, values: np.ndarray) -> np.ndarray:
        """Elementwise ``1/value`` (bitwise identical to the scalar law)."""
        return 1.0 / np.asarray(values, dtype=float)


@dataclass(frozen=True)
class PowerSizeLaw(SizeLaw):
    """``g(x) = 1/x**p`` with ``p > 0``.

    ``p = 1`` reproduces Elmore; ``p < 1`` models sub-linear drive
    improvement (velocity-saturated devices).  Demonstrates the
    "more general delay models" claim of the paper's section 1.
    """

    exponent: float = 0.85

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise DelayModelError(
                f"size-law exponent must be positive, got {self.exponent}"
            )

    def g(self, x: float) -> float:
        return x ** (-self.exponent)

    def g_inverse(self, value: float) -> float:
        return value ** (-1.0 / self.exponent)

    def g_array(self, x: np.ndarray) -> np.ndarray:
        """Elementwise ``x**(-p)``."""
        return np.asarray(x, dtype=float) ** (-self.exponent)

    def g_inverse_array(self, values: np.ndarray) -> np.ndarray:
        """Elementwise ``value**(-1/p)``."""
        return np.asarray(values, dtype=float) ** (-1.0 / self.exponent)


def check_decomposition(
    rows: list[list[tuple[int, float]]],
    b,
    intrinsic,
    n: int,
) -> None:
    """Validate that coefficients form a simple monotonic decomposition.

    Raises :class:`DelayModelError` when any ``a_ij`` or ``b_i`` is
    negative, an index is out of range, a row references its own vertex
    (self-loading must be folded into ``intrinsic``), or an intrinsic
    delay is negative.
    """
    if len(rows) != n or len(b) != n or len(intrinsic) != n:
        raise DelayModelError(
            f"coefficient arrays disagree on vertex count "
            f"({len(rows)}, {len(b)}, {len(intrinsic)} vs n={n})"
        )
    for i, row in enumerate(rows):
        for j, coefficient in row:
            if not 0 <= j < n:
                raise DelayModelError(f"row {i}: index {j} out of range")
            if j == i:
                raise DelayModelError(
                    f"row {i}: self coefficient must be folded into "
                    "the intrinsic delay"
                )
            if coefficient < 0 or not math.isfinite(coefficient):
                raise DelayModelError(
                    f"row {i}: coefficient a[{i},{j}]={coefficient} "
                    "violates monotonicity (must be finite and >= 0)"
                )
        if b[i] < 0 or not math.isfinite(b[i]):
            raise DelayModelError(f"row {i}: constant load b={b[i]} invalid")
        if intrinsic[i] < 0 or not math.isfinite(intrinsic[i]):
            raise DelayModelError(
                f"row {i}: intrinsic delay {intrinsic[i]} invalid"
            )
