"""Vertex delay model: the matrix form of paper equations (4)-(6).

Every DAG vertex ``i`` has

    delay(i) = intrinsic_i + g(x_i) * (sum_j a_ij x_j + b_i)

The coefficients are stored as a ``scipy.sparse`` CSR matrix so the full
delay vector evaluates in one sparse mat-vec — the hot operation of
TILOS, the D-phase coefficient computation and the W-phase.

For the Elmore law ``g(x) = 1/x`` the *loading* part of the delay is
exactly the paper's ``(D - A) X = B`` system:

    (delay(i) - intrinsic_i) * x_i  -  sum_j a_ij x_j  =  b_i
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.delay.monotonic import ElmoreSizeLaw, SizeLaw, check_decomposition
from repro.errors import DelayModelError

__all__ = ["VertexDelayModel"]


@dataclass
class VertexDelayModel:
    """Delay coefficients for all vertices of a sizing DAG."""

    n: int
    #: CSR matrix of coupling coefficients a_ij (n x n, zero diagonal).
    a_matrix: sparse.csr_matrix
    #: Constant load term b_i per vertex (wire + primary-output caps).
    b: np.ndarray
    #: Size-independent delay per vertex (self loading, macro stages).
    intrinsic: np.ndarray
    #: The self-size law g (Elmore by default).
    law: SizeLaw = field(default_factory=ElmoreSizeLaw)

    @classmethod
    def from_rows(
        cls,
        rows: list[list[tuple[int, float]]],
        b: np.ndarray,
        intrinsic: np.ndarray,
        law: SizeLaw | None = None,
    ) -> "VertexDelayModel":
        """Build and validate from per-vertex coefficient lists."""
        n = len(rows)
        b = np.asarray(b, dtype=float)
        intrinsic = np.asarray(intrinsic, dtype=float)
        check_decomposition(rows, b, intrinsic, n)
        data: list[float] = []
        indices: list[int] = []
        indptr = [0]
        for row in rows:
            merged: dict[int, float] = {}
            for j, coefficient in row:
                merged[j] = merged.get(j, 0.0) + coefficient
            for j in sorted(merged):
                indices.append(j)
                data.append(merged[j])
            indptr.append(len(indices))
        a_matrix = sparse.csr_matrix(
            (np.array(data), np.array(indices, dtype=np.int64),
             np.array(indptr, dtype=np.int64)),
            shape=(n, n),
        )
        return cls(
            n=n,
            a_matrix=a_matrix,
            b=b,
            intrinsic=intrinsic,
            law=law or ElmoreSizeLaw(),
        )

    # -- evaluation -------------------------------------------------------

    def load(self, x: np.ndarray) -> np.ndarray:
        """The load term ``sum_j a_ij x_j + b_i`` for every vertex."""
        return self.a_matrix @ x + self.b

    def delays(self, x: np.ndarray) -> np.ndarray:
        """Vertex delays at sizes ``x``."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n,):
            raise DelayModelError(
                f"size vector shape {x.shape} != ({self.n},)"
            )
        if np.any(x <= 0):
            raise DelayModelError("sizes must be strictly positive")
        return self.intrinsic + self.law.g_array(x) * self.load(x)

    def load_delays(self, x: np.ndarray) -> np.ndarray:
        """The variable part of the delay (total minus intrinsic)."""
        return self.delays(x) - self.intrinsic

    # -- structure ----------------------------------------------------------

    def dependencies(self, i: int) -> list[tuple[int, float]]:
        """The (j, a_ij) pairs of vertex ``i`` (the paper's set S)."""
        start, end = self.a_matrix.indptr[i], self.a_matrix.indptr[i + 1]
        return list(
            zip(
                self.a_matrix.indices[start:end].tolist(),
                self.a_matrix.data[start:end].tolist(),
            )
        )

    def transpose_rows(self) -> sparse.csr_matrix:
        """CSR of ``A^T`` — used by the D-phase column-sum solve."""
        return self.a_matrix.T.tocsr()

    def with_law(self, law: SizeLaw) -> "VertexDelayModel":
        """Same coefficients under a different size law."""
        return VertexDelayModel(
            n=self.n,
            a_matrix=self.a_matrix,
            b=self.b,
            intrinsic=self.intrinsic,
            law=law,
        )
