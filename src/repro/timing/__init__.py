"""Static timing analysis."""

from repro.timing.paths import (
    critical_vertices,
    enumerate_paths,
    k_worst_paths,
    path_delay,
)
from repro.timing.sta import GraphTimer, TimingReport, analyze

__all__ = [
    "GraphTimer",
    "TimingReport",
    "analyze",
    "critical_vertices",
    "enumerate_paths",
    "k_worst_paths",
    "path_delay",
]
