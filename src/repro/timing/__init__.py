"""Static timing analysis."""

from repro.timing.paths import (
    critical_vertices,
    enumerate_paths,
    k_worst_paths,
    path_delay,
)
from repro.timing.incremental import (
    IncrementalArrivalTimes,
    IncrementalTimer,
    UpdateStats,
)
from repro.timing.sta import (
    GraphTimer,
    TimingReport,
    analyze,
    trace_critical_path,
)

__all__ = [
    "GraphTimer",
    "IncrementalArrivalTimes",
    "IncrementalTimer",
    "TimingReport",
    "UpdateStats",
    "analyze",
    "critical_vertices",
    "enumerate_paths",
    "k_worst_paths",
    "path_delay",
    "trace_critical_path",
]
