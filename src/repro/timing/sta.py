"""Static timing analysis on the circuit DAG (paper equation (8)).

Arrival times, required times, vertex slacks and edge slacks follow the
paper's definitions, generalized with a *horizon* ``H``:

    AT(i) = 0                                   i a DAG source
          = max_{j in fanin(i)} AT(j) + delay(j)
    CP    = max_{i in PO} AT(i) + delay(i)
    RT(i) = H - delay(i)                        i a PO leaf
          = min_{j in fanout(i)} RT(j) - delay(i)
    sl(i) = RT(i) - AT(i)
    esl(e_ij) = RT(j) - AT(i) - delay(i)

The paper uses ``H = CP(G)``; passing the delay target ``T >= CP``
instead exposes the *entire* slack budget to the D-phase (they coincide
when the circuit is sized exactly to its target).  A circuit is *safe*
when all vertex and edge slacks are non-negative.

:class:`GraphTimer` pre-buckets edges by level once per DAG so repeated
timing passes (TILOS makes thousands) reduce to a few vectorized numpy
operations per level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.circuit_dag import SizingDag
from repro.errors import TimingError

__all__ = ["TimingReport", "GraphTimer", "analyze", "trace_critical_path"]


def trace_critical_path(
    dag: SizingDag,
    at: np.ndarray,
    delay: np.ndarray,
    start: int,
    critical_path_delay: float,
) -> list[int]:
    """One critical path ending at ``start``, traced through tight fanins.

    Single home of the tie-breaking tolerance rule: a predecessor ``u``
    is *tight* when ``AT(u) + delay(u)`` reaches ``AT(current)`` within
    ``1e-9`` of the critical path delay; the first tight fanin wins, and
    a numerical fallback picks the tightest predecessor if float noise
    leaves none within tolerance.  Shared by
    :meth:`TimingReport.critical_path` and the incremental engine so the
    two walks cannot drift apart.
    """
    tol = 1e-9 * max(critical_path_delay, 1.0)
    path = [start]
    current = start
    while dag.fanin[current]:
        target = at[current]
        best = None
        for u in dag.fanin[current]:
            if abs(at[u] + delay[u] - target) <= tol:
                best = u
                break
        if best is None:
            # Numerical fallback: the tightest predecessor.
            best = max(
                dag.fanin[current],
                key=lambda u: at[u] + delay[u],
            )
        path.append(best)
        current = best
    path.reverse()
    return path


@dataclass
class TimingReport:
    """All timing quantities for one delay assignment."""

    dag: SizingDag
    delay: np.ndarray
    at: np.ndarray
    rt: np.ndarray
    horizon: float
    critical_path_delay: float
    critical_vertex: int

    @property
    def slack(self) -> np.ndarray:
        return self.rt - self.at

    @property
    def edge_slack(self) -> np.ndarray:
        """Edge slacks aligned with ``dag.edges``."""
        src, dst = self.dag.edge_src, self.dag.edge_dst
        return self.rt[dst] - self.at[src] - self.delay[src]

    def is_safe(self, tol: float = 1e-9) -> bool:
        """True when all vertex and edge slacks are >= -tol."""
        scale = max(self.horizon, 1.0)
        bound = -tol * scale
        return bool(
            np.all(self.slack >= bound) and np.all(self.edge_slack >= bound)
        )

    def critical_path(self) -> list[int]:
        """Vertices of one critical path, source to sink."""
        return trace_critical_path(
            self.dag,
            self.at,
            self.delay,
            self.critical_vertex,
            self.critical_path_delay,
        )


class GraphTimer:
    """Reusable vectorized timing engine for one DAG."""

    def __init__(self, dag: SizingDag):
        self.dag = dag
        order = np.argsort(dag.level[dag.edge_dst], kind="stable")
        self._fwd_src = dag.edge_src[order]
        self._fwd_dst = dag.edge_dst[order]
        fwd_levels = dag.level[self._fwd_dst]
        self._fwd_slices = _level_slices(fwd_levels)

        order = np.argsort(-dag.level[dag.edge_src], kind="stable")
        self._bwd_src = dag.edge_src[order]
        self._bwd_dst = dag.edge_dst[order]
        bwd_levels = -dag.level[self._bwd_src]
        self._bwd_slices = _level_slices(bwd_levels)

        self._po = np.array(dag.po_vertices, dtype=np.int64)

    def arrival_times(self, delay: np.ndarray) -> np.ndarray:
        at = np.zeros(self.dag.n)
        for start, end in self._fwd_slices:
            src = self._fwd_src[start:end]
            dst = self._fwd_dst[start:end]
            np.maximum.at(at, dst, at[src] + delay[src])
        return at

    def required_times(
        self, delay: np.ndarray, horizon: float
    ) -> np.ndarray:
        rt = np.full(self.dag.n, np.inf)
        rt[self._po] = horizon - delay[self._po]
        for start, end in self._bwd_slices:
            src = self._bwd_src[start:end]
            dst = self._bwd_dst[start:end]
            np.minimum.at(rt, src, rt[dst] - delay[src])
        return rt

    def analyze(
        self, delay: np.ndarray, horizon: float | None = None
    ) -> TimingReport:
        """Full forward/backward pass.

        ``horizon`` defaults to the critical path delay (the paper's
        choice); pass the delay target to expose all slack.
        """
        delay = np.asarray(delay, dtype=float)
        if delay.shape != (self.dag.n,):
            raise TimingError(
                f"delay vector shape {delay.shape} != ({self.dag.n},)"
            )
        if np.any(delay < 0):
            raise TimingError("vertex delays must be non-negative")
        at = self.arrival_times(delay)
        po_finish = at[self._po] + delay[self._po]
        winner = int(np.argmax(po_finish))
        cp = float(po_finish[winner])
        if horizon is None:
            horizon = cp
        rt = self.required_times(delay, horizon)
        return TimingReport(
            dag=self.dag,
            delay=delay,
            at=at,
            rt=rt,
            horizon=float(horizon),
            critical_path_delay=cp,
            critical_vertex=int(self._po[winner]),
        )


def _level_slices(sorted_keys: np.ndarray) -> list[tuple[int, int]]:
    """(start, end) runs of equal keys in an ascending-sorted array."""
    if len(sorted_keys) == 0:
        return []
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(sorted_keys)]))
    return list(zip(starts.tolist(), ends.tolist()))


def analyze(
    dag: SizingDag, x: np.ndarray, horizon: float | None = None
) -> TimingReport:
    """One-shot STA at sizes ``x`` (builds a throwaway timer)."""
    return GraphTimer(dag).analyze(dag.delays(x), horizon=horizon)
