"""Human-readable timing reports (critical-path breakdown).

Formats the worst path of a :class:`~repro.timing.sta.TimingReport`
stage by stage — vertex label, own delay, cumulative arrival, slack —
the way signoff timers present paths.  Used by the CLI and examples.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.timing.sta import TimingReport

__all__ = ["format_critical_path", "format_slack_histogram"]


def format_critical_path(
    report: TimingReport, x: np.ndarray | None = None
) -> str:
    """Tabular breakdown of one critical path."""
    dag = report.dag
    path = report.critical_path()
    rows = []
    arrival = 0.0
    for v in path:
        arrival = report.at[v] + report.delay[v]
        rows.append(
            [
                dag.vertices[v].label,
                dag.vertices[v].kind,
                "-" if x is None else f"{x[v]:.2f}",
                f"{report.delay[v]:.1f}",
                f"{arrival:.1f}",
                f"{report.slack[v]:.1f}",
            ]
        )
    table = format_table(
        ["vertex", "kind", "size", "delay ps", "arrival ps", "slack ps"],
        rows,
        title=(
            f"critical path of {dag.name}: "
            f"{report.critical_path_delay:.1f} ps "
            f"(horizon {report.horizon:.1f} ps)"
        ),
    )
    return table


def format_slack_histogram(report: TimingReport, bins: int = 10) -> str:
    """ASCII histogram of vertex slacks (end-point distribution)."""
    slack = report.slack[np.isfinite(report.slack)]
    if slack.size == 0:
        return "(no finite slacks)"
    lo, hi = float(slack.min()), float(slack.max())
    if hi <= lo:
        return f"all {slack.size} vertices at slack {lo:.1f} ps"
    edges = np.linspace(lo, hi, bins + 1)
    counts, _ = np.histogram(slack, bins=edges)
    peak = counts.max() or 1
    lines = ["slack histogram (ps):"]
    for k in range(bins):
        bar = "#" * max(1, int(40 * counts[k] / peak)) if counts[k] else ""
        lines.append(
            f"  [{edges[k]:9.1f}, {edges[k + 1]:9.1f})  "
            f"{counts[k]:5d} {bar}"
        )
    return "\n".join(lines)
