"""Incremental arrival-time propagation.

TILOS changes one size per pass; a full forward/backward STA per bump
is O(|E|) even though the bump only perturbs a small cone.  This engine
keeps arrival times valid under *delay updates*: callers report which
vertices' delays changed, and the engine re-propagates along the
affected cone only, in level order, stopping where arrival times stop
moving.

Results are exactly those of a from-scratch pass (asserted by the test
suite on randomized update sequences); only the work changes.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.dag.circuit_dag import SizingDag
from repro.errors import TimingError

__all__ = ["IncrementalArrivalTimes"]


class IncrementalArrivalTimes:
    """Arrival times maintained under per-vertex delay changes."""

    def __init__(self, dag: SizingDag, delay: np.ndarray):
        self.dag = dag
        self.delay = np.array(delay, dtype=float)
        if self.delay.shape != (dag.n,):
            raise TimingError(
                f"delay shape {self.delay.shape} != ({dag.n},)"
            )
        self.at = np.zeros(dag.n)
        self._po = np.array(dag.po_vertices, dtype=np.int64)
        self._level = dag.level
        self._in_queue = np.zeros(dag.n, dtype=bool)
        self._recompute_all()

    def _recompute_all(self) -> None:
        at = self.at
        at[:] = 0.0
        delay = self.delay
        for u in self.dag.topo_order:
            arrive = at[u] + delay[u]
            for v in self.dag.fanout[u]:
                if arrive > at[v]:
                    at[v] = arrive

    # -- queries -----------------------------------------------------------

    @property
    def critical_path_delay(self) -> float:
        finish = self.at[self._po] + self.delay[self._po]
        return float(finish.max())

    @property
    def critical_vertex(self) -> int:
        finish = self.at[self._po] + self.delay[self._po]
        return int(self._po[int(np.argmax(finish))])

    def critical_path(self) -> list[int]:
        """One critical path, traced back through tight fanins."""
        tol = 1e-9 * max(self.critical_path_delay, 1.0)
        current = self.critical_vertex
        path = [current]
        while self.dag.fanin[current]:
            target = self.at[current]
            best = None
            for u in self.dag.fanin[current]:
                if abs(self.at[u] + self.delay[u] - target) <= tol:
                    best = u
                    break
            if best is None:
                best = max(
                    self.dag.fanin[current],
                    key=lambda u: self.at[u] + self.delay[u],
                )
            path.append(best)
            current = best
        path.reverse()
        return path

    # -- updates -------------------------------------------------------------

    def update_delays(self, changed: list[int], delay: np.ndarray) -> None:
        """Adopt new delays; re-propagate from the changed vertices.

        ``changed`` must list every vertex whose delay differs from the
        engine's current state (extra entries are harmless).
        """
        self.delay = np.asarray(delay, dtype=float)
        heap: list[tuple[int, int]] = []
        in_queue = self._in_queue
        # A changed delay at u perturbs the arrival times of u's fanouts.
        for u in changed:
            for v in self.dag.fanout[u]:
                if not in_queue[v]:
                    in_queue[v] = True
                    heapq.heappush(heap, (int(self._level[v]), v))
        at = self.at
        d = self.delay
        fanin = self.dag.fanin
        fanout = self.dag.fanout
        while heap:
            _, v = heapq.heappop(heap)
            in_queue[v] = False
            new_at = 0.0
            for u in fanin[v]:
                arrive = at[u] + d[u]
                if arrive > new_at:
                    new_at = arrive
            if new_at != at[v]:
                at[v] = new_at
                for w in fanout[v]:
                    if not in_queue[w]:
                        in_queue[w] = True
                        heapq.heappush(heap, (int(self._level[w]), w))
