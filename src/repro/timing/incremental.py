"""Incremental AT/RT maintenance under sparse delay updates.

TILOS changes one size per pass and the MINFLOTRANSIT W/D alternation
perturbs only the vertices the W-phase resized; a full forward/backward
STA per step is O(|E|) even though each step disturbs a small cone.
This engine keeps *both* arrival times and required times valid under
per-vertex delay changes, re-propagating only through the affected cone
in level order and stopping where values stop moving.

Two representation choices make this exact and cheap:

* **Horizon-free required times.**  ``RT(i; H)`` is linear in the
  horizon: ``RT(i; H) = H - L(i)`` where ``L(i)`` — the longest delay
  of any path from ``i`` to a primary output, *including* ``delay(i)``
  — does not depend on ``H`` at all.  The engine maintains ``L``
  backward-incrementally, so required times and slacks are available
  for *any* horizon (the paper's ``H = CP`` or a delay target) without
  re-propagation when only the horizon changes.  Backward propagation
  is *lazy*: updates only mark their seeds, and the wave runs on the
  first RT/slack query after a batch of updates — a caller that only
  tracks arrival times (TILOS) never pays for required times at all,
  while the W/D loop's one query per iteration flushes exactly once.

* **CSR level waves, with a scalar small-cone path.**  Fanin/fanout
  adjacency lives in flat CSR arrays; a dirty frontier is processed one
  level at a time, and each level's recomputation is a single gather +
  ``np.maximum.reduceat`` segment max — no per-edge Python.  Within a
  level no vertex feeds another (levels strictly increase along edges),
  so a level is one vectorized step.  Tiny updates (a TILOS bump
  perturbs a handful of vertices) would drown in per-level numpy call
  overhead, so seeds below :data:`SCALAR_SEED_LIMIT` take a level-keyed
  heap walk over the same recurrences instead; both paths compute the
  same exact maxima, only the traversal differs.

Arrival times are *bitwise* identical to :class:`GraphTimer` (both
reduce the same max-plus recurrences; ``max`` is exact in floats).
Required times agree up to float re-association noise (``H - L`` sums
in a different order than the from-scratch backward pass); the test
suite asserts equality at 1e-9 relative tolerance on randomized update
sequences.

Every :meth:`IncrementalTimer.update_delays` call returns an
:class:`UpdateStats` with the cone size actually touched; cumulative
totals feed the iteration benchmark and ``--flow-stats`` reporting.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.dag.circuit_dag import SizingDag
from repro.errors import TimingError
from repro.timing.sta import TimingReport, trace_critical_path

__all__ = [
    "IncrementalArrivalTimes",
    "IncrementalTimer",
    "SCALAR_SEED_LIMIT",
    "UpdateStats",
]

_NEG_INF = float("-inf")

#: Updates seeding at most this many vertices run the scalar heap walk;
#: larger seeds take the vectorized level waves.  The crossover is
#: flat over a wide range (the scalar path wins whenever per-level
#: frontiers are a handful of vertices).
SCALAR_SEED_LIMIT = 32


@dataclass(frozen=True)
class UpdateStats:
    """Work done by one :meth:`IncrementalTimer.update_delays` call.

    Backward (required-time) work is lazy, so the ``rt_*`` fields of
    the stats returned by ``update_delays`` are always zero; the flush
    triggered by the first RT/slack query reports its cone through the
    engine's cumulative counters (``total_repropagated`` et al.).
    """

    #: Vertices whose arrival time was recomputed (forward cone).
    at_repropagated: int
    #: Subset of those whose arrival time actually moved.
    at_changed: int
    #: Vertices whose downstream path length was recomputed (backward cone).
    rt_repropagated: int
    #: Subset of those whose downstream path length actually moved.
    rt_changed: int
    #: DAG size, for normalization.
    n_vertices: int

    @property
    def repropagated(self) -> int:
        return self.at_repropagated + self.rt_repropagated

    @property
    def cone_fraction(self) -> float:
        """Touched work relative to one full forward+backward pass.

        A from-scratch :meth:`GraphTimer.analyze` visits every vertex
        once forward and once backward, so the full-pass equivalent is
        ``2 * n``; values well below 1.0 are the incremental win.
        """
        if self.n_vertices == 0:
            return 0.0
        return self.repropagated / (2.0 * self.n_vertices)


class IncrementalTimer:
    """Arrival and required times maintained under delay changes.

    ``at[v]`` is the arrival time at ``v`` (excluding ``delay(v)``);
    ``downstream[v]`` is ``L(v)`` above, so ``RT(v; H) = H - L(v)`` and
    ``slack(v; H) = RT(v; H) - AT(v)``.
    """

    def __init__(self, dag: SizingDag, delay: np.ndarray):
        self.dag = dag
        self.delay = np.array(delay, dtype=float)
        if self.delay.shape != (dag.n,):
            raise TimingError(
                f"delay shape {self.delay.shape} != ({dag.n},)"
            )
        n = dag.n
        self._po = np.array(dag.po_vertices, dtype=np.int64)
        self._po_base = np.full(n, _NEG_INF)
        self._po_base[self._po] = 0.0
        self._level = dag.level

        # CSR fanin (edges grouped by destination) and fanout (grouped
        # by source).  ``dag.edges`` is sorted by (src, dst) already.
        order = np.argsort(dag.edge_dst, kind="stable")
        self._fin_src = dag.edge_src[order]
        self._fin_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(dag.edge_dst, minlength=n),
                  out=self._fin_ptr[1:])
        self._fout_dst = dag.edge_dst
        self._fout_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(dag.edge_src, minlength=n),
                  out=self._fout_ptr[1:])

        # Vertices bucketed by level, for the wave sweeps.
        by_level = np.argsort(self._level, kind="stable").astype(np.int64)
        boundaries = np.searchsorted(
            self._level[by_level], np.arange(dag.n_levels + 1)
        )
        self._members = [
            by_level[boundaries[k]:boundaries[k + 1]]
            for k in range(dag.n_levels)
        ]

        self.at = np.zeros(n)
        self.downstream = np.full(n, _NEG_INF)
        self._dirty = np.zeros(n, dtype=bool)
        self._rt_stale = np.zeros(n, dtype=bool)
        self._rt_pending = 0
        #: False until the first RT/slack query computes ``downstream``;
        #: AT-only callers (TILOS) never trigger it.
        self._rt_ready = False

        # Cumulative telemetry across update_delays calls and lazy
        # required-time flushes.
        self.total_updates = 0
        self.total_repropagated = 0
        self.total_changed = 0

        self._full_recompute_at()

    # -- vectorized recomputation kernels ----------------------------------

    def _gather(
        self, ptr: np.ndarray, sel: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat adjacency indices for ``sel`` plus segment offsets.

        Returns ``(idx, offsets, nonempty)``: ``idx`` indexes the CSR
        data array for every neighbour of every non-empty-adjacency
        member of ``sel``; ``offsets`` are the reduceat segment starts;
        ``nonempty`` masks ``sel`` rows that have neighbours at all.
        """
        starts = ptr[sel]
        counts = ptr[sel + 1] - starts
        nonempty = counts > 0
        counts = counts[nonempty]
        offsets = np.zeros(len(counts), dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        total = int(counts.sum())
        idx = (
            np.repeat(starts[nonempty] - offsets, counts)
            + np.arange(total, dtype=np.int64)
        )
        return idx, offsets, nonempty

    def _recompute_at(self, sel: np.ndarray) -> np.ndarray:
        """AT of ``sel`` from scratch: segment max over fanin arcs."""
        new_at = np.zeros(sel.size)
        idx, offsets, nonempty = self._gather(self._fin_ptr, sel)
        if idx.size:
            src = self._fin_src[idx]
            new_at[nonempty] = np.maximum.reduceat(
                self.at[src] + self.delay[src], offsets
            )
        return new_at

    def _recompute_downstream(self, sel: np.ndarray) -> np.ndarray:
        """L of ``sel`` from scratch: segment max over fanout arcs."""
        best = self._po_base[sel].copy()
        idx, offsets, nonempty = self._gather(self._fout_ptr, sel)
        if idx.size:
            best[nonempty] = np.maximum(
                best[nonempty],
                np.maximum.reduceat(
                    self.downstream[self._fout_dst[idx]], offsets
                ),
            )
        return self.delay[sel] + best

    def _full_recompute_at(self) -> None:
        for lvl in range(self.dag.n_levels):
            members = self._members[lvl]
            self.at[members] = self._recompute_at(members)

    def _full_recompute_downstream(self) -> None:
        for lvl in range(self.dag.n_levels - 1, -1, -1):
            members = self._members[lvl]
            self.downstream[members] = self._recompute_downstream(members)

    # -- queries -----------------------------------------------------------

    @property
    def critical_path_delay(self) -> float:
        finish = self.at[self._po] + self.delay[self._po]
        return float(finish.max())

    @property
    def critical_vertex(self) -> int:
        finish = self.at[self._po] + self.delay[self._po]
        return int(self._po[int(np.argmax(finish))])

    def critical_path(self) -> list[int]:
        """One critical path, traced back through tight fanins."""
        return trace_critical_path(
            self.dag, self.at, self.delay,
            self.critical_vertex, self.critical_path_delay,
        )

    def required_times(self, horizon: float | None = None) -> np.ndarray:
        """``RT(v; H) = H - L(v)`` for any horizon (default: CP)."""
        self._flush_required()
        if horizon is None:
            horizon = self.critical_path_delay
        # -inf downstream (no path to a PO) maps to +inf required time,
        # matching the from-scratch backward pass.
        return horizon - self.downstream

    def _flush_required(self) -> None:
        """Run the deferred backward wave over all pending seeds."""
        if not self._rt_ready:
            # First RT/slack query ever: compute downstream lengths
            # from scratch (not counted as incremental work — it is
            # the baseline state, like the constructor's forward pass).
            self._full_recompute_downstream()
            self._rt_ready = True
            self._rt_stale[np.flatnonzero(self._rt_stale)] = False
            self._rt_pending = 0
            return
        if self._rt_pending == 0:
            return
        seeds = np.flatnonzero(self._rt_stale)
        self._rt_stale[seeds] = False
        self._rt_pending = 0
        if seeds.size <= SCALAR_SEED_LIMIT:
            re, ch = self._scalar_wave(seeds.tolist(), forward=False)
        else:
            re, ch = self._wave(seeds, forward=False)
        self.total_repropagated += re
        self.total_changed += ch

    def slack(self, horizon: float | None = None) -> np.ndarray:
        return self.required_times(horizon) - self.at

    def report(self, horizon: float | None = None) -> TimingReport:
        """A :class:`TimingReport` snapshot of the maintained state.

        Equivalent to ``GraphTimer(dag).analyze(delay, horizon)`` (up
        to float re-association in RT) at the cost of one array copy
        per field instead of a propagation pass.  The arrays are
        copies, matching ``analyze``'s contract that a report stays
        internally consistent after further ``update_delays`` calls.
        """
        cp = self.critical_path_delay
        if horizon is None:
            horizon = cp
        return TimingReport(
            dag=self.dag,
            delay=self.delay.copy(),
            at=self.at.copy(),
            rt=self.required_times(horizon),
            horizon=float(horizon),
            critical_path_delay=cp,
            critical_vertex=self.critical_vertex,
        )

    @property
    def mean_cone_fraction(self) -> float:
        """Average per-update cone fraction since construction."""
        if self.total_updates == 0:
            return 0.0
        return self.total_repropagated / (
            2.0 * self.dag.n * self.total_updates
        )

    # -- updates -----------------------------------------------------------

    def update_delays(
        self, changed, delay: np.ndarray
    ) -> UpdateStats:
        """Adopt new delays; re-propagate through the affected cones.

        ``changed`` must list every vertex whose delay differs from the
        engine's current state (extra entries are harmless).  Returns
        the work actually done, for telemetry.
        """
        delay = np.asarray(delay, dtype=float)
        if delay.shape != (self.dag.n,):
            raise TimingError(
                f"delay shape {delay.shape} != ({self.dag.n},)"
            )
        self.delay = delay
        seeds = np.unique(np.asarray(changed, dtype=np.int64))

        # A changed delay at u perturbs the ATs of u's fanouts ...
        if seeds.size <= SCALAR_SEED_LIMIT:
            fwd = sorted(
                {w for u in seeds.tolist() for w in self.dag.fanout[u]}
            )
            at_re, at_ch = self._scalar_wave(fwd, forward=True)
        else:
            idx, _offsets, _nonempty = self._gather(self._fout_ptr, seeds)
            at_re, at_ch = self._wave(
                np.unique(self._fout_dst[idx]) if idx.size else seeds[:0],
                forward=True,
            )
        # ... and u's own downstream length L(u) (it includes delay(u)).
        # That backward wave is deferred to the first RT/slack query, so
        # callers that only track arrival times never pay for it.
        fresh = seeds[~self._rt_stale[seeds]]
        self._rt_stale[fresh] = True
        self._rt_pending += int(fresh.size)

        stats = UpdateStats(
            at_repropagated=at_re,
            at_changed=at_ch,
            rt_repropagated=0,
            rt_changed=0,
            n_vertices=self.dag.n,
        )
        self.total_updates += 1
        self.total_repropagated += at_re
        self.total_changed += at_ch
        return stats

    def _scalar_wave(
        self, seeds: list[int], forward: bool
    ) -> tuple[int, int]:
        """Heap-ordered scalar sweep for small cones.

        Identical recurrences (and bitwise-identical results) to
        :meth:`_wave`, but walks the cone one vertex at a time with a
        level-keyed heap — far cheaper than per-level numpy dispatch
        when the frontier is a handful of vertices.
        """
        if not seeds:
            return 0, 0
        dirty = self._dirty
        level = self._level
        sign = 1 if forward else -1
        heap: list[tuple[int, int]] = []
        for v in seeds:
            dirty[v] = True
            heap.append((sign * int(level[v]), int(v)))
        heapq.heapify(heap)
        at = self.at
        down = self.downstream
        delay = self.delay
        fanin = self.dag.fanin
        fanout = self.dag.fanout
        po_base = self._po_base
        recomputed = 0
        moved = 0
        while heap:
            _, v = heapq.heappop(heap)
            dirty[v] = False
            recomputed += 1
            if forward:
                new = 0.0
                for u in fanin[v]:
                    arrive = at[u] + delay[u]
                    if arrive > new:
                        new = arrive
                if new == at[v]:
                    continue
                at[v] = new
                moved += 1
                for w in fanout[v]:
                    if not dirty[w]:
                        dirty[w] = True
                        heapq.heappush(heap, (int(level[w]), w))
            else:
                best = po_base[v]
                for w in fanout[v]:
                    if down[w] > best:
                        best = down[w]
                new = delay[v] + best
                if new == down[v]:
                    continue
                down[v] = new
                moved += 1
                for u in fanin[v]:
                    if not dirty[u]:
                        dirty[u] = True
                        heapq.heappush(heap, (-int(level[u]), u))
        return recomputed, moved

    def _wave(self, seeds: np.ndarray, forward: bool) -> tuple[int, int]:
        """Level-ordered dirty-frontier sweep; returns (recomputed, moved).

        Forward waves recompute AT ascending by level and dirty the
        fanouts of moved vertices; backward waves recompute L descending
        and dirty the fanins.  Dirtied vertices always lie strictly
        beyond the current level, so one monotone pass suffices.
        """
        if seeds.size == 0:
            return 0, 0
        dirty = self._dirty
        dirty[seeds] = True
        pending = int(seeds.size)
        recomputed = 0
        moved_count = 0
        values = self.at if forward else self.downstream
        levels = (
            range(int(self._level[seeds].min()), self.dag.n_levels)
            if forward
            else range(int(self._level[seeds].max()), -1, -1)
        )
        for lvl in levels:
            if pending == 0:
                break
            members = self._members[lvl]
            sel = members[dirty[members]]
            if sel.size == 0:
                continue
            dirty[sel] = False
            pending -= int(sel.size)
            recomputed += int(sel.size)
            new_values = (
                self._recompute_at(sel)
                if forward
                else self._recompute_downstream(sel)
            )
            moved = sel[new_values != values[sel]]
            values[sel] = new_values
            if moved.size == 0:
                continue
            moved_count += int(moved.size)
            if forward:
                idx, _o, _n = self._gather(self._fout_ptr, moved)
                targets = self._fout_dst[idx]
            else:
                idx, _o, _n = self._gather(self._fin_ptr, moved)
                targets = self._fin_src[idx]
            if targets.size:
                fresh = np.unique(targets[~dirty[targets]])
                dirty[fresh] = True
                pending += int(fresh.size)
        return recomputed, moved_count


#: Backward-compatible name for the engine (it originally maintained
#: arrival times only; it now also keeps required times).
IncrementalArrivalTimes = IncrementalTimer
