"""Path queries on timed DAGs: critical paths and near-critical sets.

TILOS needs the single worst path; analyses and tests also use the set
of vertices within a slack threshold of critical (the "critical
cloud"), and path enumeration on small graphs for exactness checks.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.dag.circuit_dag import SizingDag
from repro.timing.sta import TimingReport

__all__ = ["critical_vertices", "enumerate_paths", "path_delay", "k_worst_paths"]


def critical_vertices(
    report: TimingReport, threshold: float = 0.0
) -> np.ndarray:
    """Indices of vertices with slack <= threshold (the critical cloud)."""
    slack = report.slack
    scale = max(report.horizon, 1.0)
    return np.flatnonzero(slack <= threshold + 1e-9 * scale)


def enumerate_paths(
    dag: SizingDag, limit: int = 100_000
) -> Iterator[list[int]]:
    """All source-to-sink structural paths (small graphs only).

    Raises ``ValueError`` once ``limit`` paths have been produced, which
    keeps accidental use on big circuits from hanging the test suite.
    """
    produced = 0
    stack: list[tuple[int, list[int]]] = [
        (source, [source]) for source in dag.sources
    ]
    while stack:
        vertex, path = stack.pop()
        if not dag.fanout[vertex]:
            produced += 1
            if produced > limit:
                raise ValueError(f"more than {limit} paths")
            yield path
            continue
        for succ in dag.fanout[vertex]:
            stack.append((succ, path + [succ]))


def path_delay(delay: np.ndarray, path: list[int]) -> float:
    """Total delay along a vertex path."""
    return float(sum(delay[v] for v in path))


def k_worst_paths(
    dag: SizingDag, delay: np.ndarray, k: int = 10, limit: int = 200_000
) -> list[tuple[float, list[int]]]:
    """The k slowest complete paths by exhaustive enumeration.

    Exact but exponential — intended for unit tests and tiny examples
    that validate the vectorized STA against ground truth.
    """
    scored = sorted(
        (
            (path_delay(delay, path), path)
            for path in enumerate_paths(dag, limit=limit)
        ),
        key=lambda item: -item[0],
    )
    return scored[:k]
