"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``size``      size a circuit (suite name or .bench file) to a delay target
``stats``     structural statistics of a circuit
``suite``     list the ISCAS85-equivalent benchmark suite
``table1``    regenerate the paper's Table 1 (alias of experiments.table1)
``figure7``   regenerate the paper's Figure 7 (alias of experiments.figure7)

Examples
--------

    python -m repro size c432eq --spec 0.4
    python -m repro size my.bench --spec 0.5 --mode transistor
    python -m repro stats c6288eq
    python -m repro table1 --tier smoke
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.circuit import (
    circuit_stats,
    load_bench,
    map_to_primitives,
    prune_dangling,
)
from repro.circuit.mapping import is_primitive_circuit
from repro.circuit.transform import buffer_high_fanout
from repro.dag import build_sizing_dag
from repro.generators.iscas import SUITE, build_circuit
from repro.sizing import MinfloOptions, minflotransit, tilos_size
from repro.tech import default_technology
from repro.timing import analyze


def _resolve_circuit(token: str):
    path = Path(token)
    if path.suffix == ".bench" or path.exists():
        circuit = load_bench(path)
        circuit = prune_dangling(circuit)
        return buffer_high_fanout(circuit, max_fanout=12)
    return build_circuit(token)


def _cmd_size(args: argparse.Namespace) -> int:
    circuit = _resolve_circuit(args.circuit)
    if args.mode == "transistor" and not is_primitive_circuit(circuit):
        circuit = map_to_primitives(circuit, suffix="")
    tech = default_technology()
    dag = build_sizing_dag(
        circuit, tech, mode=args.mode, size_wires=args.wires
    )
    d_min = analyze(dag, dag.min_sizes()).critical_path_delay
    target = args.spec * d_min
    print(f"{circuit.name}: {circuit.n_gates} gates, {dag.n} variables, "
          f"Dmin = {d_min:.0f} ps, target = {target:.0f} ps")

    seed = tilos_size(dag, target)
    if not seed.feasible:
        print(f"TILOS stalled at {seed.critical_path_delay:.0f} ps — "
              f"spec {args.spec} is below this circuit's delay floor")
        return 1
    print(f"TILOS: area {seed.area:.1f} "
          f"({seed.area / dag.area(dag.min_sizes()):.2f}x min), "
          f"{seed.runtime_seconds:.2f}s")
    result = minflotransit(
        dag, target, MinfloOptions(flow_backend=args.backend), x0=seed.x
    )
    print(result.summary())
    print(f"area saved over TILOS: "
          f"{100 * (1 - result.area / seed.area):.2f}%")
    if args.flow_stats:
        _print_iteration_stats(seed, result)
        _print_flow_stats()
    if args.out:
        with open(args.out, "w") as handle:
            for vertex in dag.vertices:
                handle.write(
                    f"{vertex.label}\t{result.x[vertex.index]:.4f}\n"
                )
        print(f"sizes written to {args.out}")
    return 0


def _print_flow_stats() -> None:
    """Per-backend flow-solver totals accumulated during this run."""
    from repro.flow.registry import solver_statistics

    totals = solver_statistics()
    if not totals:
        print("no flow solves recorded")
        return
    rows = [
        [
            name,
            str(stats.solves),
            str(stats.warm_solves),
            str(stats.augmentations),
            str(stats.sp_rounds),
            str(stats.dijkstra_pops),
            f"{stats.supply_routed:.3g}",
            f"{stats.wall_time_s:.3f}",
        ]
        for name, stats in sorted(totals.items())
    ]
    print(format_table(
        ["backend", "solves", "warm", "augment", "sp rounds", "pops",
         "routed", "wall s"],
        rows,
        title="flow solver statistics",
    ))


def _print_iteration_stats(seed, result) -> None:
    """Incremental-timing and warm-start telemetry of one sizing run."""
    tstats = seed.timing_stats
    if tstats:
        print(
            f"TILOS timing ({tstats['engine']}): re-propagated "
            f"{tstats['repropagated_vertices']} vertices over "
            f"{tstats['updates']} bumps = "
            f"{100 * tstats['cone_fraction']:.1f}% of a full pass each"
        )
    if result.iterations:
        warm = sum(1 for rec in result.iterations if rec.warm_start)
        mean_cone = sum(
            rec.cone_fraction for rec in result.iterations
        ) / len(result.iterations)
        augment = sum(rec.augmentations for rec in result.iterations)
        print(
            f"W/D iterations: {len(result.iterations)} "
            f"({warm} warm-started), mean timing cone "
            f"{100 * mean_cone:.1f}% of a full pass, "
            f"{augment} augmenting paths total"
        )


def _cmd_stats(args: argparse.Namespace) -> int:
    circuit = _resolve_circuit(args.circuit)
    stats = circuit_stats(circuit)
    print(stats.summary())
    rows = sorted(stats.cells.items(), key=lambda kv: -kv[1])
    print(format_table(
        ["cell", "count"], [[c, str(n)] for c, n in rows]
    ))
    return 0


def _cmd_suite(_args: argparse.Namespace) -> int:
    rows = [
        [
            spec.name,
            str(spec.paper_gates),
            f"{spec.delay_spec:.2f}",
            f"{spec.paper_area_saving_percent:.1f}%",
            spec.tier,
        ]
        for spec in SUITE
    ]
    print(format_table(
        ["circuit", "paper gates", "spec·Dmin", "paper saving", "tier"],
        rows,
        title="ISCAS85-equivalent suite (Table 1 rows)",
    ))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_size = sub.add_parser("size", help="size a circuit to a delay target")
    p_size.add_argument("circuit", help="suite name or .bench path")
    p_size.add_argument("--spec", type=float, default=0.5,
                        help="delay target as a fraction of Dmin")
    p_size.add_argument("--mode", choices=["gate", "transistor"],
                        default="gate")
    p_size.add_argument("--wires", action="store_true",
                        help="size wires simultaneously (section 2.1)")
    p_size.add_argument("--flow-backend", "--backend", dest="backend",
                        default="auto",
                        help="D-phase flow solver: 'auto' (registry "
                             "picks per instance) or a registered name "
                             "(ssp/ssp-legacy/networkx/scipy)")
    p_size.add_argument("--flow-stats", action="store_true",
                        help="print per-backend solver statistics")
    p_size.add_argument("--out", help="write per-vertex sizes to a file")
    p_size.set_defaults(func=_cmd_size)

    p_stats = sub.add_parser("stats", help="structural statistics")
    p_stats.add_argument("circuit")
    p_stats.set_defaults(func=_cmd_stats)

    p_suite = sub.add_parser("suite", help="list the benchmark suite")
    p_suite.set_defaults(func=_cmd_suite)

    p_t1 = sub.add_parser("table1", help="regenerate Table 1")
    p_t1.add_argument("--tier", default=None, choices=["smoke", "paper"])
    p_t1.add_argument("--flow-backend", "--backend", dest="backend",
                      default="auto")
    p_f7 = sub.add_parser("figure7", help="regenerate Figure 7")
    p_f7.add_argument("--circuits", default=None)
    p_f7.add_argument("--ratios", default=None)

    args = parser.parse_args(argv)
    if args.command == "table1":
        from repro.experiments.table1 import format_table1, run_table1

        print(format_table1(run_table1(args.tier, args.backend)))
        return 0
    if args.command == "figure7":
        from repro.experiments.figure7 import (
            DEFAULT_RATIOS,
            default_circuits,
            format_panel,
            run_panel,
        )

        names = (
            args.circuits.split(",") if args.circuits else default_circuits()
        )
        ratios = (
            [float(t) for t in args.ratios.split(",")]
            if args.ratios
            else DEFAULT_RATIOS
        )
        for name in names:
            print(format_panel(run_panel(name, ratios)))
        return 0
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
