"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``size``      size a circuit (suite name or .bench file) to a delay target
``stats``     structural statistics of a circuit (``--json`` for tooling)
``suite``     list the ISCAS85-equivalent benchmark suite (``--json``)
``campaign``  run/resume/inspect a parallel sizing campaign (run log +
              content-addressed result cache; see ``campaign --help``)
``serve``     run the JSON-over-HTTP sizing service (``repro.service``)
``queue``     inspect/requeue a fleet queue's dead-letter jobs
``trace``     render a trace.jsonl span tree as a per-job waterfall
``table1``    regenerate the paper's Table 1 (alias of experiments.table1)
``figure7``   regenerate the paper's Figure 7 (alias of experiments.figure7)

Examples
--------

    python -m repro size c432eq --spec 0.4
    python -m repro size my.bench --spec 0.5 --mode transistor
    python -m repro stats c6288eq --json
    python -m repro table1 --tier smoke
    python -m repro campaign run --circuits c432eq,c499eq --specs 0.5,0.6 \\
        --jobs 4 --run-dir runs/demo
    python -m repro campaign resume runs/demo --jobs 4
    python -m repro campaign status runs/demo
    python -m repro serve --port 8765 --jobs 4 --run-dir runs/service
    python -m repro queue inspect fleet-q.db
    python -m repro queue requeue fleet-q.db --all-failed
    python -m repro trace runs/service/trace.jsonl

Exit codes: 0 success; 1 infeasible target or failed campaign jobs;
2 usage errors (unknown circuit, bad delay target, malformed run dir).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from dataclasses import asdict
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.circuit import circuit_stats, map_to_primitives
from repro.circuit.mapping import is_primitive_circuit
from repro.dag import build_sizing_dag
from repro.errors import ReproError
from repro.generators.iscas import SUITE
from repro.runner.spec import JOB_KINDS
from repro.sizing import MinfloOptions, TilosOptions, minflotransit, tilos_size
from repro.tech import default_technology
from repro.timing import analyze


def _resolve_circuit(token: str):
    from repro.runner.spec import resolve_circuit

    return resolve_circuit(token)


def _parse_float_list(text: str, flag: str) -> list[float]:
    """Comma-separated floats, with a usage error (exit 2) on junk."""
    from repro.errors import RunnerError

    try:
        return [float(tok) for tok in text.split(",")]
    except ValueError:
        raise RunnerError(
            f"{flag} expects comma-separated numbers, got {text!r}"
        ) from None


def _cmd_size(args: argparse.Namespace) -> int:
    from repro.flow.registry import stats_scope

    if args.spec <= 0:
        print(f"error: --spec must be a positive fraction of Dmin, "
              f"got {args.spec}", file=sys.stderr)
        return 2
    circuit = _resolve_circuit(args.circuit)
    if args.mode == "transistor" and not is_primitive_circuit(circuit):
        circuit = map_to_primitives(circuit, suffix="")
    tech = default_technology()
    dag = build_sizing_dag(
        circuit, tech, mode=args.mode, size_wires=args.wires
    )
    d_min = analyze(dag, dag.min_sizes()).critical_path_delay
    target = args.spec * d_min
    print(f"{circuit.name}: {circuit.n_gates} gates, {dag.n} variables, "
          f"Dmin = {d_min:.0f} ps, target = {target:.0f} ps")

    # Scope the flow-solver counters to this run: the module totals are
    # cumulative per process, so printing them directly would mix in any
    # earlier solves (other commands, other library calls).
    with stats_scope() as flow_totals:
        seed = tilos_size(dag, target, TilosOptions(kernel=args.kernel))
        if not seed.feasible:
            print(f"TILOS stalled at {seed.critical_path_delay:.0f} ps — "
                  f"spec {args.spec} is below this circuit's delay floor")
            return 1
        print(f"TILOS: area {seed.area:.1f} "
              f"({seed.area / dag.area(dag.min_sizes()):.2f}x min), "
              f"{seed.runtime_seconds:.2f}s")
        result = minflotransit(
            dag,
            target,
            MinfloOptions(flow_backend=args.backend, kernel=args.kernel),
            x0=seed.x,
        )
    print(result.summary())
    print(f"area saved over TILOS: "
          f"{100 * (1 - result.area / seed.area):.2f}%")
    if args.phase_stats:
        _print_phase_stats(seed, result)
    if args.flow_stats:
        _print_iteration_stats(seed, result)
        _print_flow_stats(flow_totals)
    if args.out:
        with open(args.out, "w") as handle:
            for vertex in dag.vertices:
                handle.write(
                    f"{vertex.label}\t{result.x[vertex.index]:.4f}\n"
                )
        print(f"sizes written to {args.out}")
    return 0


def _print_flow_stats(totals: dict) -> None:
    """Per-backend flow-solver totals of one run (a stats_scope dict)."""
    if not totals:
        print("no flow solves recorded")
        return
    rows = [
        [
            name,
            str(stats.solves),
            str(stats.warm_solves),
            str(stats.augmentations),
            str(stats.sp_rounds),
            str(stats.dijkstra_pops),
            f"{stats.supply_routed:.3g}",
            f"{stats.wall_time_s:.3f}",
        ]
        for name, stats in sorted(totals.items())
    ]
    print(format_table(
        ["backend", "solves", "warm", "augment", "sp rounds", "pops",
         "routed", "wall s"],
        rows,
        title="flow solver statistics",
    ))


def _print_phase_stats(seed, result) -> None:
    """Per-phase wall-time breakdown of one sizing run.

    Attributes a regression to the phase that caused it: the TILOS
    seed (with its sensitivity-kernel split), incremental timing,
    delay balancing, the D-phase flow solve and the W-phase SMP
    relaxation.
    """
    tstats = seed.timing_stats
    seed_note = (
        f"kernel {tstats.get('kernel', '?')}: "
        f"scan {tstats.get('scan_seconds', 0.0):.3f}s, "
        f"refresh {tstats.get('refresh_seconds', 0.0):.3f}s"
    )
    phases = result.phase_seconds
    rows = [
        ["TILOS seed", f"{seed.runtime_seconds:.3f}", seed_note],
        ["timing", f"{phases.get('timing', 0.0):.3f}",
         "incremental AT/RT maintenance"],
        ["balance", f"{phases.get('balance', 0.0):.3f}",
         "FSDU delay balancing"],
        ["D-phase flow", f"{phases.get('d_phase', 0.0):.3f}",
         "min-cost-flow budget redistribution"],
        ["W-phase", f"{phases.get('w_phase', 0.0):.3f}",
         f"{result.w_sweeps_total} SMP sweeps, kernel "
         f"{result.iterations[-1].kernel if result.iterations else '?'}"],
    ]
    print(format_table(
        ["phase", "wall s", "notes"], rows,
        title="per-phase wall time",
    ))


def _print_iteration_stats(seed, result) -> None:
    """Incremental-timing and warm-start telemetry of one sizing run."""
    tstats = seed.timing_stats
    if tstats:
        print(
            f"TILOS timing ({tstats['engine']}): re-propagated "
            f"{tstats['repropagated_vertices']} vertices over "
            f"{tstats['updates']} bumps = "
            f"{100 * tstats['cone_fraction']:.1f}% of a full pass each"
        )
    if result.iterations:
        warm = sum(1 for rec in result.iterations if rec.warm_start)
        mean_cone = sum(
            rec.cone_fraction for rec in result.iterations
        ) / len(result.iterations)
        augment = sum(rec.augmentations for rec in result.iterations)
        print(
            f"W/D iterations: {len(result.iterations)} "
            f"({warm} warm-started), mean timing cone "
            f"{100 * mean_cone:.1f}% of a full pass, "
            f"{augment} augmenting paths total"
        )


def _cmd_stats(args: argparse.Namespace) -> int:
    circuit = _resolve_circuit(args.circuit)
    stats = circuit_stats(circuit)
    if args.json:
        print(json.dumps(asdict(stats), indent=2))
        return 0
    print(stats.summary())
    rows = sorted(stats.cells.items(), key=lambda kv: -kv[1])
    print(format_table(
        ["cell", "count"], [[c, str(n)] for c, n in rows]
    ))
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    if args.json:
        print(json.dumps(
            [
                {
                    "name": spec.name,
                    "paper_gates": spec.paper_gates,
                    "delay_spec": spec.delay_spec,
                    "paper_area_saving_percent":
                        spec.paper_area_saving_percent,
                    "tier": spec.tier,
                }
                for spec in SUITE
            ],
            indent=2,
        ))
        return 0
    rows = [
        [
            spec.name,
            str(spec.paper_gates),
            f"{spec.delay_spec:.2f}",
            f"{spec.paper_area_saving_percent:.1f}%",
            spec.tier,
        ]
        for spec in SUITE
    ]
    print(format_table(
        ["circuit", "paper gates", "spec·Dmin", "paper saving", "tier"],
        rows,
        title="ISCAS85-equivalent suite (Table 1 rows)",
    ))
    return 0


def _campaign_cache(args: argparse.Namespace):
    from repro.runner import DEFAULT_CACHE_DIR, ResultCache

    if args.no_cache:
        return None
    backend = getattr(args, "cache_backend", None)
    if backend:
        return ResultCache(backend)
    return ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)


def _warm_corpus_spec(args: argparse.Namespace) -> str | None:
    """Resolve ``--warm-corpus`` into a backend spec string.

    The bare flag reuses the command's own cache location (the common
    case: the corpus lives next to the results it seeds from); an
    explicit ``SPEC`` names any other backend and still works with
    ``--no-cache`` (read-only probing — with no result cache the run's
    own trajectories are not recorded).  Returns None when warm starts
    are off.  Raises ``SystemExit(2)`` for ``--no-cache`` + the bare
    flag — there is no cache location to reuse.
    """
    flag = getattr(args, "warm_corpus", None)
    if flag is None:
        return None
    if flag is not True:
        return flag
    if args.no_cache:
        print("error: --warm-corpus needs a result cache "
              "(drop --no-cache or pass an explicit backend spec)",
              file=sys.stderr)
        raise SystemExit(2)
    backend = getattr(args, "cache_backend", None)
    if backend:
        return backend
    from repro.runner import DEFAULT_CACHE_DIR

    return f"disk:{args.cache_dir or DEFAULT_CACHE_DIR}"


def _install_cli_faults(args: argparse.Namespace, run_dir: Path | None) -> None:
    """Install a ``--faults`` schedule before a command starts running.

    The state directory (fleet-wide fault caps + per-process fault
    logs) lands under the run directory when the command has one, so a
    chaos run's artifacts sit next to its run log.
    """
    faults = getattr(args, "faults", None)
    if not faults:
        return
    from repro.faults.injector import install

    install(
        faults,
        seed=getattr(args, "fault_seed", 0),
        state_dir=(run_dir / "faults") if run_dir is not None else None,
    )


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro import runner
    from repro.runner import CampaignSpec, campaign_to_dict, format_campaign
    from repro.runner.spec import tier_preset

    if args.circuits:
        delay_specs = ()
        if args.specs:
            delay_specs = tuple(_parse_float_list(args.specs, "--specs"))
            if any(s <= 0 for s in delay_specs):
                print(f"error: delay specs must be positive fractions of "
                      f"Dmin, got {args.specs}", file=sys.stderr)
                return 2
        spec = CampaignSpec(
            name=args.name or "campaign",
            circuits=tuple(args.circuits.split(",")),
            delay_specs=delay_specs,
            flow_backends=(args.backend,),
            kind=args.kind,
        )
    else:
        spec = tier_preset(args.tier, flow_backend=args.backend)
        if args.kind != spec.kind:
            spec = dataclasses.replace(spec, kind=args.kind)
    run_dir = Path(args.run_dir or Path("runs") / spec.name)
    _install_cli_faults(args, run_dir)
    result = runner.run(
        spec,
        jobs=args.jobs,
        cache=_campaign_cache(args),
        run_dir=run_dir,
        timeout=args.timeout,
        batch=args.batch,
        warm_corpus=_warm_corpus_spec(args),
    )
    if args.json:
        print(json.dumps(campaign_to_dict(result), indent=2))
    else:
        print(format_campaign(result))
        print(f"run log: {run_dir / 'campaign.jsonl'}")
    return 0 if result.n_failed == 0 else 1


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    from repro import runner
    from repro.runner import campaign_to_dict, format_campaign

    _install_cli_faults(args, Path(args.run_dir))
    result = runner.resume(
        args.run_dir,
        jobs=args.jobs,
        cache=_campaign_cache(args),
        timeout=args.timeout,
        batch=args.batch,
        warm_corpus=_warm_corpus_spec(args),
    )
    if args.json:
        print(json.dumps(campaign_to_dict(result), indent=2))
    else:
        print(format_campaign(result))
    return 0 if result.n_failed == 0 else 1


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.runner import format_status, load_run, status_dict

    state = load_run(args.run_dir)
    if args.json:
        print(json.dumps(status_dict(state), indent=2))
    else:
        print(format_status(state))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    if args.max_attempts is not None and args.max_attempts < 1:
        print(f"error: --max-attempts must be >= 1, got {args.max_attempts}",
              file=sys.stderr)
        return 2
    if args.visibility_timeout is not None and args.visibility_timeout <= 0:
        print(f"error: --visibility-timeout must be positive, "
              f"got {args.visibility_timeout:g}", file=sys.stderr)
        return 2
    # None means "the library default" — serve() owns the real values.
    failure_knobs = {
        key: value
        for key, value in (
            ("max_attempts", args.max_attempts),
            ("visibility_timeout", args.visibility_timeout),
        )
        if value is not None
    }
    cache = args.cache_backend or args.cache_dir
    return serve(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache="" if args.no_cache else cache,
        run_dir=args.run_dir,
        timeout=args.timeout,
        queue=args.queue,
        max_queue_depth=args.max_queue_depth,
        quota_rate=args.quota,
        quota_burst=args.quota_burst,
        batch_drain=args.batch_drain,
        trace=not args.no_trace,
        warm_corpus=_warm_corpus_spec(args),
        faults=args.faults,
        fault_seed=args.fault_seed,
        **failure_knobs,
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.waterfall import trace_report

    report = trace_report(
        args.ref,
        files=tuple(args.file or ()),
        json_out=args.json,
    )
    try:
        print(report)
    except BrokenPipeError:
        # Waterfalls are long; `... | head` closing the pipe is normal.
        sys.stderr.close()
    return 0


def _add_trace_parser(sub) -> None:
    p_trace = sub.add_parser(
        "trace",
        help="render a trace.jsonl span tree as a waterfall",
        description="Per-job trace waterfall: pass a trace.jsonl path "
                    "(renders its most recent trace) or a trace id "
                    "(searched in --file, default ./trace.jsonl).  "
                    "Shows the span tree with durations, scaled bars "
                    "and the critical span path.",
    )
    p_trace.add_argument("ref",
                         help="a trace id, or a path to a trace.jsonl")
    p_trace.add_argument("--file", action="append", default=None,
                         help="trace.jsonl file(s) to search when REF is "
                              "a trace id (repeatable; default "
                              "./trace.jsonl)")
    p_trace.add_argument("--json", action="store_true",
                         help="emit the span tree as JSON instead of the "
                              "rendered waterfall")
    p_trace.set_defaults(func=_cmd_trace)


def _add_serve_parser(sub) -> None:
    p_serve = sub.add_parser(
        "serve",
        help="run the sizing service (JSON over HTTP)",
        description="Long-lived sizing service: POST /v1/size against a "
                    "bounded worker pool with the campaign result cache; "
                    "GET /v1/jobs/<id>, /v1/circuits, /v1/backends, "
                    "/v1/healthz, /v1/stats.",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8765,
                         help="TCP port (default 8765; 0 = pick a free one)")
    p_serve.add_argument("--jobs", type=int, default=1,
                         help="sizing workers (1 = one dedicated thread, "
                              ">1 = a process pool)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="result cache directory "
                              "(default .repro-cache)")
    p_serve.add_argument("--cache-backend", default=None,
                         help="result cache backend spec: disk:PATH, "
                              "sqlite:PATH, or tiered:LOCAL_DIR,SHARED "
                              "(overrides --cache-dir)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable the result cache entirely")
    p_serve.add_argument("--run-dir", default=None,
                         help="directory for the restart-surviving "
                              "service.jsonl job log and spooled netlists")
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="per-request wall-time budget in seconds")
    p_serve.add_argument("--queue", default=None,
                         help="shared work-queue database; replicas given "
                              "the same path form one fleet")
    p_serve.add_argument("--batch-drain", type=int, default=None,
                         help="queue mode only: lease up to this many "
                              "records per drain and fuse compatible "
                              "batchable jobs (kind wphase) into one "
                              "stacked kernel call")
    p_serve.add_argument("--max-queue-depth", type=int, default=None,
                         help="reject new jobs (429) once this many are "
                              "queued or running (default: unbounded)")
    p_serve.add_argument("--quota", type=float, default=None,
                         help="per-client admission quota in requests/s "
                              "(default: no quotas)")
    p_serve.add_argument("--quota-burst", type=float, default=None,
                         help="per-client burst allowance "
                              "(default: 2x --quota)")
    p_serve.add_argument("--warm-corpus", nargs="?", const=True,
                         default=None, metavar="SPEC",
                         help="seed cache misses from nearest prior "
                              "solutions (results stay bitwise "
                              "identical); bare flag reuses the service "
                              "cache, SPEC names another backend")
    p_serve.add_argument("--no-trace", action="store_true",
                         help="disable span tracing (metrics stay on); "
                              "with tracing and a --run-dir, spans "
                              "append to RUN_DIR/trace.jsonl")
    p_serve.add_argument("--visibility-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="queue mode: lease duration before a dead "
                              "replica's in-flight jobs are re-claimed "
                              "(default 600)")
    p_serve.add_argument("--max-attempts", type=int, default=None,
                         help="queue mode: lease attempts before a job "
                              "is poison-parked in the dead-letter "
                              "queue (default 3)")
    _add_fault_flags(p_serve)
    p_serve.set_defaults(func=_cmd_serve)


def _add_fault_flags(p) -> None:
    """``--faults`` / ``--fault-seed`` for commands that execute jobs."""
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="deterministic fault injection: semicolon-"
                        "separated SITE:KIND[=ARG]@RATE[*MAX] rules, "
                        "e.g. 'cache.get:io_error@0.05;"
                        "worker:kill@0.02*2' (see the user guide)")
    p.add_argument("--fault-seed", type=int, default=0, metavar="N",
                   help="seed for the fault schedule; same spec + seed "
                        "replays the same faults (default 0)")


def _add_campaign_parser(sub) -> None:
    p_camp = sub.add_parser(
        "campaign",
        help="parallel sizing campaigns (cached, resumable)",
        description="Run circuit×target sweeps on a process pool with a "
                    "content-addressed result cache and a resumable "
                    "JSONL run log.",
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    def _common(p, with_spec: bool) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = run in-process)")
        p.add_argument("--cache-dir", default=None,
                       help="result cache directory "
                            "(default .repro-cache)")
        p.add_argument("--cache-backend", default=None,
                       help="result cache backend spec: disk:PATH, "
                            "sqlite:PATH, or tiered:LOCAL_DIR,SHARED "
                            "(overrides --cache-dir)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the result cache entirely")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-time budget in seconds")
        p.add_argument("--warm-corpus", nargs="?", const=True,
                       default=None, metavar="SPEC",
                       help="seed solves from nearest prior solutions "
                            "(results stay bitwise identical); bare flag "
                            "reuses the campaign cache, SPEC names "
                            "another backend")
        p.add_argument("--batch", action="store_true",
                       help="fuse compatible batchable jobs (kind "
                            "wphase) into stacked kernel calls; "
                            "per-job results are bit-identical")
        p.add_argument("--json", action="store_true",
                       help="print a JSON digest instead of tables")
        _add_fault_flags(p)
        if with_spec:
            p.add_argument("--circuits", default=None,
                           help="comma-separated circuit tokens (suite "
                                "names, rca:N, .bench paths)")
            p.add_argument("--specs", default=None,
                           help="comma-separated delay-target fractions "
                                "of Dmin (default: each circuit's "
                                "Table 1 spec)")
            p.add_argument("--tier", default=None,
                           choices=["smoke", "paper"],
                           help="preset sweep when --circuits is absent")
            p.add_argument("--kind", default="sizing",
                           choices=list(JOB_KINDS),
                           help="job kind: sizing (full pipeline), "
                                "wphase (one W-phase SMP instance, the "
                                "batchable kernel workload), or phases "
                                "(timing study)")
            p.add_argument("--flow-backend", "--backend", dest="backend",
                           default="auto")
            p.add_argument("--name", default=None,
                           help="campaign name (run-dir default stem)")
            p.add_argument("--run-dir", default=None,
                           help="run-log directory "
                                "(default runs/<name>)")

    p_run = camp_sub.add_parser("run", help="run a campaign")
    _common(p_run, with_spec=True)
    p_run.set_defaults(func=_cmd_campaign_run)

    p_resume = camp_sub.add_parser(
        "resume", help="resume an interrupted campaign"
    )
    p_resume.add_argument("run_dir", help="directory with campaign.jsonl")
    _common(p_resume, with_spec=False)
    p_resume.set_defaults(func=_cmd_campaign_resume)

    p_status = camp_sub.add_parser(
        "status", help="summarize a run directory"
    )
    p_status.add_argument("run_dir", help="directory with campaign.jsonl")
    p_status.add_argument("--json", action="store_true")
    p_status.set_defaults(func=_cmd_campaign_status)


def _cmd_queue_inspect(args: argparse.Namespace) -> int:
    from repro.service.queue import WorkQueue

    if not Path(args.db).exists():
        print(f"error: no queue database at {args.db}", file=sys.stderr)
        return 2
    queue = WorkQueue(args.db)
    failed = queue.failed_jobs(limit=args.limit)
    if args.json:
        print(json.dumps(
            {"failed": failed, "poisoned": queue.poisoned_count()}, indent=2,
        ))
        return 0
    if not failed:
        print("dead-letter queue is empty")
        return 0
    rows = []
    for job in failed:
        history = job.get("history") or []
        last = history[-1] if history else {}
        rows.append([
            job["id"],
            (job.get("label") or "?"),
            str(job.get("attempts")),
            last.get("event") or "?",
            (job.get("error") or "")[:60],
        ])
    print(format_table(
        ["job", "label", "attempts", "last event", "error"],
        rows,
        title=f"dead-letter jobs in {args.db}",
    ))
    print(f"{queue.poisoned_count()} poison-parked "
          f"(requeue with: python -m repro queue requeue {args.db} JOB_ID)")
    return 0


def _cmd_queue_requeue(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service.queue import WorkQueue

    if not args.job_ids and not args.all_failed:
        print("error: give JOB_ID(s) or --all-failed", file=sys.stderr)
        return 2
    if not Path(args.db).exists():
        print(f"error: no queue database at {args.db}", file=sys.stderr)
        return 2
    queue = WorkQueue(args.db)
    job_ids = list(args.job_ids)
    if args.all_failed:
        job_ids += [
            job["id"] for job in queue.failed_jobs(limit=10_000)
            if job["id"] not in job_ids
        ]
    skipped = 0
    for job_id in job_ids:
        try:
            record = queue.requeue(job_id)
        except ServiceError as exc:
            # Per-job diagnosis, not a hard stop: one unreadable row
            # must not block requeueing the rest of the batch.
            print(f"skipped {job_id}: {exc}", file=sys.stderr)
            skipped += 1
            continue
        print(f"requeued {record.id} ({record.job.label()})")
    return 1 if skipped else 0


def _add_queue_parser(sub) -> None:
    p_queue = sub.add_parser(
        "queue",
        help="inspect/requeue a fleet queue's dead-letter jobs",
        description="Operator tools for a fleet work-queue database: "
                    "list permanently failed jobs with their attempt "
                    "history, and send them back to the queue after "
                    "fixing the cause.",
    )
    queue_sub = p_queue.add_subparsers(dest="queue_command", required=True)

    p_inspect = queue_sub.add_parser(
        "inspect", help="list dead-letter jobs with error history"
    )
    p_inspect.add_argument("db", help="work-queue database path")
    p_inspect.add_argument("--limit", type=int, default=100,
                           help="most dead-letter rows to show "
                                "(default 100)")
    p_inspect.add_argument("--json", action="store_true",
                           help="machine-readable output, full history "
                                "included")
    p_inspect.set_defaults(func=_cmd_queue_inspect)

    p_requeue = queue_sub.add_parser(
        "requeue", help="send failed jobs back to the queue"
    )
    p_requeue.add_argument("db", help="work-queue database path")
    p_requeue.add_argument("job_ids", nargs="*", metavar="JOB_ID",
                           help="job id(s) to requeue")
    p_requeue.add_argument("--all-failed", action="store_true",
                           help="requeue every dead-letter job")
    p_requeue.set_defaults(func=_cmd_queue_requeue)


def build_parser() -> argparse.ArgumentParser:
    """The complete ``python -m repro`` argument parser.

    Exposed separately from :func:`main` so tooling can validate
    command lines without executing them — ``tools/check_docs.py``
    parses every ``python -m repro`` invocation in the documentation
    against this parser, which is what keeps the user guide's commands
    copy-pasteable.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_size = sub.add_parser("size", help="size a circuit to a delay target")
    p_size.add_argument("circuit", help="suite name or .bench path")
    p_size.add_argument("--spec", type=float, default=0.5,
                        help="delay target as a fraction of Dmin")
    p_size.add_argument("--mode", choices=["gate", "transistor"],
                        default="gate")
    p_size.add_argument("--wires", action="store_true",
                        help="size wires simultaneously (section 2.1)")
    p_size.add_argument("--flow-backend", "--backend", dest="backend",
                        default="auto",
                        help="D-phase flow solver: 'auto' (registry "
                             "picks per instance) or a registered name "
                             "(ssp/ssp-legacy/networkx/scipy)")
    p_size.add_argument("--kernel", choices=["vectorized", "scalar"],
                        default="vectorized",
                        help="sizing kernels for TILOS sensitivities and "
                             "the W-phase relaxation: 'vectorized' "
                             "(level-blocked array kernels, default) or "
                             "'scalar' (reference loops; identical "
                             "results)")
    p_size.add_argument("--flow-stats", action="store_true",
                        help="print per-backend solver statistics")
    p_size.add_argument("--phase-stats", action="store_true",
                        help="print a per-phase wall-time breakdown "
                             "(TILOS, timing, balancing, D-phase flow, "
                             "W-phase sweeps)")
    p_size.add_argument("--out", help="write per-vertex sizes to a file")
    p_size.set_defaults(func=_cmd_size)

    p_stats = sub.add_parser("stats", help="structural statistics")
    p_stats.add_argument("circuit")
    p_stats.add_argument("--json", action="store_true",
                         help="machine-readable output")
    p_stats.set_defaults(func=_cmd_stats)

    p_suite = sub.add_parser("suite", help="list the benchmark suite")
    p_suite.add_argument("--json", action="store_true",
                         help="machine-readable output")
    p_suite.set_defaults(func=_cmd_suite)

    _add_campaign_parser(sub)
    _add_serve_parser(sub)
    _add_queue_parser(sub)
    _add_trace_parser(sub)

    p_t1 = sub.add_parser("table1", help="regenerate Table 1")
    p_t1.add_argument("--tier", default=None, choices=["smoke", "paper"])
    p_t1.add_argument("--flow-backend", "--backend", dest="backend",
                      default="auto")
    p_t1.add_argument("--jobs", type=int, default=1)
    p_t1.add_argument("--cache-dir", default=None,
                      help="replay/store rows in a campaign result cache")
    p_f7 = sub.add_parser("figure7", help="regenerate Figure 7")
    p_f7.add_argument("--circuits", default=None)
    p_f7.add_argument("--ratios", default=None)
    p_f7.add_argument("--jobs", type=int, default=1)
    p_f7.add_argument("--cache-dir", default=None,
                      help="replay/store points in a campaign result cache")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "table1":
            from repro.experiments.table1 import format_table1, run_table1

            print(format_table1(run_table1(
                args.tier, args.backend, jobs=args.jobs,
                cache=args.cache_dir,
            )))
            return 0
        if args.command == "figure7":
            from repro.experiments.figure7 import (
                DEFAULT_RATIOS,
                default_circuits,
                format_panel,
                run_panel,
            )

            names = (
                args.circuits.split(",") if args.circuits
                else default_circuits()
            )
            ratios = (
                _parse_float_list(args.ratios, "--ratios")
                if args.ratios
                else DEFAULT_RATIOS
            )
            for name in names:
                print(format_panel(run_panel(
                    name, ratios, jobs=args.jobs, cache=args.cache_dir,
                )))
            return 0
        return args.func(args)
    except ReproError as exc:
        # Library-level misuse (unknown circuit token, bad backend name,
        # malformed run dir, ...): a clean diagnostic, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
