"""JSONL run records: streaming progress and resumable campaigns.

A campaign run directory holds one append-only ``campaign.jsonl``:

* line 1 — a ``campaign`` header: the full :class:`CampaignSpec`
  (enough to re-expand the identical job list), the per-job cache keys
  and labels;
* then one ``job`` record per finished job, *in completion order*,
  carrying the job index, status, wall time, a compact result summary
  (area, delay, iterations, per-backend flow totals) and any error.

Resuming reads the log back, re-expands the spec, and re-runs the
campaign against the same cache: completed sizing jobs replay from the
content-addressed store for free, anything lost mid-flight re-runs.
Appending a fresh header on resume keeps the file self-describing even
across schema-compatible code updates (the last header wins).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import RunnerError
from repro.runner.executor import JobOutcome
from repro.runner.spec import CampaignSpec, Job

__all__ = ["RunLog", "RunState", "job_summary", "load_run"]

RUN_LOG_NAME = "campaign.jsonl"


def job_summary(outcome: JobOutcome) -> dict:
    """Compact, table-ready digest of one outcome's payload."""
    payload = outcome.payload or {}
    summary: dict = {"name": payload.get("name")}
    if payload.get("kind") == "sizing":
        seed = payload.get("seed") or {}
        summary["seed_area"] = seed.get("area")
        summary["tilos_seconds"] = seed.get("runtime_seconds")
        result = payload.get("result")
        if result is not None:
            summary.update(
                area=result["area"],
                critical_path_delay=result["critical_path_delay"],
                target=result["target"],
                iterations=len(result["iterations"]),
                minflo_seconds=result["runtime_seconds"],
            )
            if seed.get("area"):
                summary["saving_percent"] = 100.0 * (
                    1.0 - result["area"] / seed["area"]
                )
        flow = payload.get("flow_stats") or {}
        summary["flow_solves"] = sum(s["solves"] for s in flow.values())
        summary["flow_wall_s"] = sum(s["wall_time_s"] for s in flow.values())
    elif payload.get("kind") == "wphase":
        summary["feasible"] = payload.get("feasible")
        summary["area"] = payload.get("area")
        summary["sweeps"] = payload.get("sweeps")
        summary["n_clamped"] = len(payload.get("clamped") or ())
        summary["worst_violation"] = payload.get("worst_violation")
    elif payload.get("kind") == "phases":
        for key in (
            "width",
            "n_vertices",
            "sta_seconds",
            "balance_seconds",
            "w_phase_seconds",
            "d_phase_seconds",
        ):
            summary[key] = payload.get(key)
    return summary


class RunLog:
    """Append-only JSONL writer for one campaign run directory."""

    def __init__(self, run_dir: str | Path, append: bool = False):
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.run_dir / RUN_LOG_NAME
        if not append and self.path.exists():
            self.path.unlink()

    def _append(self, record: dict) -> None:
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()

    def write_header(
        self, spec: CampaignSpec, jobs: list[Job], keys: list[str | None]
    ) -> None:
        """Write the campaign header record (spec, labels, cache keys)."""
        self._append({
            "type": "campaign",
            "name": spec.name,
            "spec": spec.to_dict(),
            "n_jobs": len(jobs),
            "labels": [job.label() for job in jobs],
            "keys": keys,
            "written_at": time.time(),
        })

    def record(self, outcome: JobOutcome) -> None:
        """Stream one finished job (called in completion order).

        Outcomes produced by a stacked kernel call additionally carry
        their batch telemetry (``batch_size``, ``batched_seconds``) so
        a run log distinguishes batched execution from the per-job loop
        and from cache replay — the payloads themselves are identical.
        """
        record = {
            "type": "job",
            "index": outcome.index,
            "label": outcome.job.label(),
            "key": outcome.key,
            "status": outcome.status,
            "cached": outcome.cached,
            "wall_seconds": outcome.wall_seconds,
            "duration_s": outcome.duration_s,
            "summary": job_summary(outcome),
            "error": outcome.error,
        }
        if outcome.trace_id is not None:
            record["trace_id"] = outcome.trace_id
        warm = outcome.warm_summary()
        if warm is not None:
            record["warm"] = warm
        if outcome.batch_size:
            record["batch_size"] = outcome.batch_size
            record["batched_seconds"] = outcome.batched_seconds
        self._append(record)


@dataclass
class RunState:
    """Parsed view of a run log: the spec plus per-job latest records."""

    header: dict
    #: Latest record per job index (a resumed run overwrites earlier
    #: records for the same index).
    records: dict[int, dict] = field(default_factory=dict)

    @property
    def spec(self) -> CampaignSpec:
        """The campaign spec re-expanded from the header record."""
        return CampaignSpec.from_dict(self.header["spec"])

    @property
    def n_jobs(self) -> int:
        """Total jobs the campaign expands to (finished or not)."""
        return int(self.header["n_jobs"])

    def counts(self) -> dict[str, int]:
        """Status tally including ``pending`` for unfinished jobs."""
        out: dict[str, int] = {}
        for record in self.records.values():
            out[record["status"]] = out.get(record["status"], 0) + 1
        pending = self.n_jobs - len(self.records)
        if pending:
            out["pending"] = pending
        return out


def _check_header(header: dict, path: Path) -> dict:
    """Validate a campaign header record; RunnerError on malformed logs.

    Every field the status/resume paths dereference later is checked
    here, so a truncated or hand-edited header becomes one clean
    diagnostic (CLI exit 2) instead of a KeyError traceback deep in
    :func:`repro.runner.report.status_dict`.
    """
    spec = header.get("spec")
    n_jobs = header.get("n_jobs")
    labels = header.get("labels")
    if (
        not isinstance(spec, dict)
        or not isinstance(n_jobs, int)
        or not isinstance(labels, list)
        or len(labels) != n_jobs
    ):
        raise RunnerError(
            f"{path} has a malformed campaign header (expected spec, "
            f"n_jobs and one label per job); delete the run directory "
            f"or restore the log to continue"
        )
    return header


def load_run(run_dir: str | Path) -> RunState:
    """Read a run directory's JSONL back into a :class:`RunState`."""
    path = Path(run_dir) / RUN_LOG_NAME
    if not path.is_file():
        raise RunnerError(f"no campaign log at {path}")
    header: dict | None = None
    records: dict[int, dict] = {}
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail line from an interrupted run
                if record.get("type") == "campaign":
                    header = record
                elif record.get("type") == "job":
                    try:
                        records[int(record["index"])] = record
                    except (KeyError, TypeError, ValueError):
                        continue  # malformed job record: skip, don't crash
    except OSError as exc:
        raise RunnerError(f"cannot read campaign log {path}: {exc}") from exc
    if header is None:
        raise RunnerError(f"{path} has no campaign header record")
    return RunState(header=_check_header(header, path), records=records)
