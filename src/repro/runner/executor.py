"""Campaign execution: process pool, timeouts, failure isolation.

:func:`run_campaign` drives an expanded job list to completion:

* **Cache probe first.**  Jobs whose content-addressed key already has
  a stored payload never reach the pool — a repeated campaign is pure
  cache replay.
* **Process pool.**  Remaining jobs run on a
  :class:`concurrent.futures.ProcessPoolExecutor` (``jobs=1`` runs
  inline in-process, which is what the tests and the benchmarks use
  for determinism-by-construction).  Sizing is deterministic, so
  parallel and serial campaigns produce identical payloads.
* **Per-job timeout.**  Enforced *inside* the worker via
  ``SIGALRM``/``setitimer``, so a hung solve cannot wedge a pool slot
  forever and the pool itself stays healthy.
* **Failure isolation.**  A job that raises (or times out) becomes a
  ``failed``/``timeout`` outcome carrying the traceback; the rest of
  the campaign is unaffected.
* **Deterministic ordering.**  Outcomes are returned in job-expansion
  order no matter which worker finished first; streaming consumers
  (the JSONL run log) observe completion order but every record
  carries its job index.
* **Batched kernel execution.**  ``run_campaign(..., batch=True)``
  fuses compatible queued jobs — same kind, mode, backend and options;
  today the batchable kind is ``wphase`` — into one stacked kernel
  call (:mod:`repro.sizing.batch`) instead of N per-job invocations.
  Results are bit-identical to the per-job loop (the cache probe, the
  JSONL record and the stored payload stay per-job); jobs that fail
  setup, time out, or refuse to converge fall back to the isolated
  per-job path alone while the rest of the batch proceeds.

Per-job flow-solver telemetry is collected with
:func:`repro.flow.registry.stats_scope` — never from the module-global
totals, which would interleave under any concurrent or repeated use.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field, replace

from repro.errors import JobTimeoutError, ReproError
from repro.faults.injector import active as active_faults
from repro.faults.injector import install_from_args, observe_faults, probe
from repro.obs.metrics import get_registry
from repro.obs.trace import (
    SpanSink,
    current_carrier,
    current_trace,
    emit_obs,
    new_span_id,
    new_trace_id,
    span,
    trace_scope,
)
from repro.runner.cache import ResultCache, job_key, netlist_digest
from repro.runner.corpus import WarmSession, record_warm_outcome
from repro.runner.spec import CampaignSpec, Job, resolve_circuit

__all__ = [
    "JobOutcome",
    "CampaignResult",
    "batch_entry",
    "batch_groups",
    "campaign_keys",
    "execute_job",
    "pool_entry",
    "probe_cache",
    "run_campaign",
    "run_one",
    "store_outcome",
]

#: Outcome statuses that represent a finished computation (and are
#: therefore cacheable); ``failed``/``timeout`` are not.
COMPLETED_STATUSES = ("ok", "infeasible")

#: Job kinds whose payloads are deterministic functions of the job
#: fingerprint, hence content-addressable.  ``phases`` payloads are
#: wall-clock measurements and never cached.
CACHEABLE_KINDS = ("sizing", "wphase")

#: Job kinds the batched strategy can fuse into one stacked kernel
#: call.  ``sizing`` jobs are declined on purpose: their cost is
#: dominated by the D-phase LP/flow solves, whose stacked optima need
#: not match the per-job degenerate optima bit-for-bit — only the SMP
#: relaxation has an exact batching story (see
#: :mod:`repro.sizing.batch`).
BATCHABLE_KINDS = ("wphase",)

#: Fresh-pool attempts after worker deaths before the surviving jobs
#: are failed outright — bounds a crash-looping workload (and, under
#: fault injection, caps how long an uncapped ``worker:kill`` rule can
#: stall a campaign).
MAX_POOL_RESTARTS = 8


@dataclass(frozen=True)
class JobOutcome:
    """One job's fate: status, payload, provenance."""

    index: int
    job: Job
    key: str | None
    status: str  # "ok" | "infeasible" | "failed" | "timeout"
    cached: bool
    wall_seconds: float
    payload: dict | None
    error: str | None = None
    #: Jobs fused into the stacked kernel call that produced this
    #: outcome (0 = per-job execution, cached replay, or fallback).
    batch_size: int = 0
    #: Wall time of the shared stacked solve for the whole batch (every
    #: member outcome reports the same figure; 0.0 outside a batch).
    batched_seconds: float = 0.0
    #: Monotonic execution duration in seconds (``perf_counter``-based,
    #: immune to wall-clock steps — never negative).  Defaults to
    #: ``wall_seconds``, which is already monotonic; surfaces that
    #: measure a longer lifecycle (the service job stores) override it.
    duration_s: float | None = None
    #: Trace id of the execution that produced this outcome (None when
    #: tracing is off); volatile telemetry, never part of the payload.
    trace_id: str | None = None
    #: Warm-start telemetry (all False when the corpus was off or the
    #: job replayed from cache): a corpus probe found a donor record
    #: (``warm_hit``), the donor actually seeded the solve
    #: (``warm_seeded``), or it was rejected / diverged and the job ran
    #: cold (``warm_fallback``).  Never part of the payload — seeded
    #: and cold runs cache identical entries.
    warm_hit: bool = False
    warm_seeded: bool = False
    warm_fallback: bool = False

    def __post_init__(self) -> None:
        if self.duration_s is None:
            object.__setattr__(self, "duration_s", self.wall_seconds)

    @property
    def completed(self) -> bool:
        """True when the job finished computing (even if infeasible)."""
        return self.status in COMPLETED_STATUSES

    def warm_summary(self) -> dict | None:
        """Compact warm-start flags for job records (None on cold runs)."""
        if not (self.warm_hit or self.warm_seeded or self.warm_fallback):
            return None
        return {
            "hit": self.warm_hit,
            "seeded": self.warm_seeded,
            "fallback": self.warm_fallback,
        }


@dataclass
class CampaignResult:
    """All outcomes of one campaign run, in job-expansion order."""

    name: str
    outcomes: list[JobOutcome] = field(default_factory=list)

    @property
    def n_cached(self) -> int:
        """Jobs replayed from the result cache instead of executed."""
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def n_failed(self) -> int:
        """Jobs that did not finish computing (failed or timed out)."""
        return sum(1 for o in self.outcomes if not o.completed)

    def counts(self) -> dict[str, int]:
        """Outcome tally by status (``{"ok": 3, "failed": 1, ...}``)."""
        out: dict[str, int] = {}
        for outcome in self.outcomes:
            out[outcome.status] = out.get(outcome.status, 0) + 1
        return out


# -- job execution (runs in the worker process) -----------------------


def _execute_sizing(
    job: Job, warm: WarmSession | None = None
) -> tuple[str, dict]:
    """Full TILOS + MINFLOTRANSIT pipeline for one job.

    ``warm`` is this job's warm-start session (None when the corpus is
    off): the nearest prior trajectory seeds the TILOS solve — which
    owns the divergence-safe replay, so the payload is bitwise what a
    cold run produces — and the freshly computed trajectory is staged
    as this job's own corpus record.
    """
    from repro.circuit.mapping import is_primitive_circuit, map_to_primitives
    from repro.dag import build_sizing_dag
    from repro.flow.registry import stats_scope
    from repro.sizing import minflotransit, tilos_size
    from repro.sizing.serialize import result_to_dict
    from repro.sizing.tilos import TilosOptions
    from repro.tech import default_technology
    from repro.timing import GraphTimer

    circuit = resolve_circuit(job.circuit)
    if job.mode == "transistor" and not is_primitive_circuit(circuit):
        circuit = map_to_primitives(circuit, suffix="")
    tech = default_technology()
    dag = build_sizing_dag(circuit, tech, mode=job.mode)
    timer = GraphTimer(dag)
    x_min = dag.min_sizes()
    d_min = timer.analyze(dag.delays(x_min)).critical_path_delay
    target = job.delay_spec * d_min

    payload = {
        "kind": "sizing",
        "circuit": job.circuit,
        "name": circuit.name,
        "n_gates": circuit.n_gates,
        "n_vertices": dag.n,
        "delay_spec": job.delay_spec,
        "d_min": d_min,
        "target": target,
        "min_area": dag.area(x_min),
    }
    topts = TilosOptions()
    donor = None
    if warm is not None:
        with span("warmstart.probe", circuit=job.circuit) as probe_span:
            donor = warm.probe_sizing(
                dag=dag,
                tech=tech,
                mode=job.mode,
                options=topts,
                delay_spec=job.delay_spec,
                target=target,
            )
            probe_span.set(hit=donor is not None)
    with stats_scope() as flow_stats:
        with span("tilos.seed", circuit=job.circuit) as seed_span:
            if warm is not None:
                with span("warmstart.seed", circuit=job.circuit) as ws:
                    seed = tilos_size(
                        dag, target, topts, timer=timer,
                        keep_trace=True, warm=donor,
                    )
                    ws.set(
                        result=(seed.warm or {}).get("result") or "cold",
                        replayed=(seed.warm or {}).get("replayed", 0),
                    )
                warm.note_seed((seed.warm or {}).get("result"))
                warm.stage_sizing(seed, d_min)
            else:
                seed = tilos_size(dag, target, timer=timer)
            seed_span.set(iterations=seed.iterations, feasible=seed.feasible)
        payload["seed"] = {
            "feasible": seed.feasible,
            "area": seed.area,
            "critical_path_delay": seed.critical_path_delay,
            "runtime_seconds": seed.runtime_seconds,
            "iterations": seed.iterations,
            "timing_stats": seed.timing_stats,
        }
        if not seed.feasible:
            payload["result"] = None
        else:
            with span("minflo", circuit=job.circuit) as minflo_span:
                result = minflotransit(
                    dag, target, options=job.minflo_options(), x0=seed.x
                )
                minflo_span.set(iterations=len(result.iterations))
            payload["result"] = result_to_dict(result)
    payload["flow_stats"] = {
        name: asdict(stats) for name, stats in sorted(flow_stats.items())
    }
    return ("ok" if seed.feasible else "infeasible"), payload


def _execute_phases(job: Job) -> tuple[str, dict]:
    """Time one STA / balance / W-phase / D-phase pass (scaling study)."""
    from repro.balancing import balance
    from repro.dag import build_sizing_dag
    from repro.sizing import d_phase, tilos_size, w_phase
    from repro.tech import default_technology
    from repro.timing import GraphTimer

    def best_of(fn, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    circuit = resolve_circuit(job.circuit)
    dag = build_sizing_dag(circuit, default_technology(), mode=job.mode)
    timer = GraphTimer(dag)
    d_min = timer.analyze(dag.delays(dag.min_sizes())).critical_path_delay
    target = job.delay_spec * d_min
    seed = tilos_size(dag, target, timer=timer)
    x = seed.x if seed.feasible else dag.min_sizes() * 2
    delays = dag.delays(x)
    horizon = max(target, timer.analyze(delays).critical_path_delay)
    config = balance(dag, delays, horizon=horizon, timer=timer)
    load = delays - dag.model.intrinsic
    budgets = delays * 1.01

    # Warm up the LP backend once so one-time solver setup does not
    # pollute the smallest instance's measurement.
    d_phase(dag, x, config, -0.2 * load, 0.2 * load)
    width = 0
    if job.circuit.startswith("rca:"):
        width = int(job.circuit.split(":", 1)[1])
    payload = {
        "kind": "phases",
        "circuit": job.circuit,
        "name": circuit.name,
        "width": width,
        "n_vertices": dag.n,
        "n_edges": dag.n_edges,
        "sta_seconds": best_of(lambda: timer.analyze(delays)),
        "balance_seconds": best_of(
            lambda: balance(dag, delays, horizon=horizon, timer=timer)
        ),
        "w_phase_seconds": best_of(lambda: w_phase(dag, budgets)),
        "d_phase_seconds": best_of(
            lambda: d_phase(dag, x, config, -0.2 * load, 0.2 * load),
            repeats=1,
        ),
    }
    return "ok", payload


def _wphase_context(job: Job) -> tuple:
    """Shared per-(circuit, mode) setup for W-phase jobs.

    Returns ``(circuit, dag, load_delay)`` where ``load_delay`` is the
    load-dependent part of the minimum-size delays.  Everything here is
    a deterministic function of the circuit token and mode alone, so
    the batched executor shares one context across every delay spec of
    the same circuit — the amortization the batch strategy exists for.
    """
    from repro.circuit.mapping import is_primitive_circuit, map_to_primitives
    from repro.dag import build_sizing_dag
    from repro.tech import default_technology

    circuit = resolve_circuit(job.circuit)
    if job.mode == "transistor" and not is_primitive_circuit(circuit):
        circuit = map_to_primitives(circuit, suffix="")
    dag = build_sizing_dag(circuit, default_technology(), mode=job.mode)
    load_delay = dag.delays(dag.min_sizes()) - dag.model.intrinsic
    return circuit, dag, load_delay


def _wphase_budgets(dag, load_delay, delay_spec: float):
    """Per-vertex delay budgets for a W-phase job.

    ``intrinsic + delay_spec * load_delay(x_min)``: a spec of 1.0 is
    met at minimum sizes, tighter specs force upsizing (and eventually
    clamping — the ``infeasible`` outcome), and the headroom of every
    loaded vertex stays positive for any positive spec.
    """
    return dag.model.intrinsic + delay_spec * load_delay


def _wphase_payload(job: Job, circuit, dag, budgets, smp) -> tuple[str, dict]:
    """Assemble the (status, payload) of a solved W-phase instance.

    Shared verbatim by the per-job and batched paths — given the same
    relaxation result both produce the same payload, which is what the
    differential tests compare byte-for-byte (modulo the volatile
    ``seconds`` field).
    """
    import numpy as np

    delays = dag.model.delays(smp.x)
    feasible = not smp.clamped
    payload = {
        "kind": "wphase",
        "circuit": job.circuit,
        "name": circuit.name,
        "n_vertices": dag.n,
        "delay_spec": job.delay_spec,
        "feasible": feasible,
        "sweeps": int(smp.sweeps),
        "engine": smp.engine,
        "clamped": [int(i) for i in smp.clamped],
        "area": float(dag.area(smp.x)),
        "worst_violation": float(np.max(delays - budgets)),
        "sizes": [float(v) for v in smp.x],
        "seconds": float(smp.seconds),
    }
    return ("ok" if feasible else "infeasible"), payload


def _execute_wphase(
    job: Job, warm: WarmSession | None = None
) -> tuple[str, dict]:
    """Solve one W-phase SMP instance (the batchable kernel workload).

    ``warm`` is this job's warm-start session (None when the corpus is
    off): the nearest dominated-budget solution seeds the relaxation —
    :func:`~repro.sizing.wphase.w_phase` owns the exactness monitor, so
    the final sizes are bitwise what a cold solve produces (only the
    sweep count may shrink) — and the fresh solution is staged as this
    job's own corpus record.
    """
    from repro.sizing import w_phase
    from repro.tech import default_technology

    with span("wphase.context", circuit=job.circuit):
        circuit, dag, load_delay = _wphase_context(job)
    budgets = _wphase_budgets(dag, load_delay, job.delay_spec)
    seed = None
    if warm is not None:
        with span("warmstart.probe", circuit=job.circuit) as probe_span:
            seed = warm.probe_wphase(
                dag=dag,
                tech=default_technology(),
                mode=job.mode,
                engine="vectorized",
                delay_spec=job.delay_spec,
                budgets=budgets,
            )
            probe_span.set(hit=seed is not None)
    with span("wphase.smp", circuit=job.circuit) as smp_span:
        if seed is not None:
            with span("warmstart.seed", circuit=job.circuit) as ws:
                result = w_phase(dag, budgets, warm=seed)
                ws.set(result=result.warm or "cold")
        else:
            result = w_phase(dag, budgets)
        smp_span.set(sweeps=int(result.sweeps), engine=result.engine)
    if warm is not None:
        warm.note_seed(result.warm)
        warm.stage_wphase(result, budgets)
    return _wphase_payload(job, circuit, dag, budgets, result)


_EXECUTORS = {
    "sizing": _execute_sizing,
    "wphase": _execute_wphase,
    "phases": _execute_phases,
}


def execute_job(job: Job, warm: WarmSession | None = None) -> tuple[str, dict]:
    """Run one job to completion in this process; returns (status, payload).

    ``warm`` (a :class:`~repro.runner.corpus.WarmSession`) reaches the
    cacheable executors only — phase-timing jobs are wall-clock
    measurements with nothing to seed.
    """
    probe("solver")  # injected solver-phase delays land here
    if warm is not None and job.kind in CACHEABLE_KINDS:
        return _EXECUTORS[job.kind](job, warm=warm)
    return _EXECUTORS[job.kind](job)


def _watchdog_timeout(fn, timeout: float):
    """Portable wall-time budget: run ``fn`` in a daemon thread.

    The fallback for platforms without ``SIGALRM`` and for calls off
    the main thread (queue-mode drain threads, embeddings).  On expiry
    the *caller* gets :class:`JobTimeoutError` immediately; the
    abandoned thread cannot be killed (CPython has no thread cancel)
    and is left to finish in the background — its result is discarded.
    That leak is bounded in practice: workers are pool processes that
    recycle, and a genuinely hung solve would otherwise wedge the slot
    forever, which is strictly worse.
    """
    outcome: list = []

    def _target() -> None:
        try:
            outcome.append((True, fn()))
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            outcome.append((False, exc))

    worker = threading.Thread(
        target=_target, name="repro-job-watchdog", daemon=True
    )
    worker.start()
    worker.join(timeout)
    if worker.is_alive():
        raise JobTimeoutError(
            f"job exceeded its {timeout:g}s budget (watchdog)"
        )
    ok, value = outcome[0]
    if ok:
        return value
    raise value


def _with_timeout(fn, timeout: float | None):
    """Run ``fn`` under a wall-time budget.

    On a POSIX main thread the budget is ``SIGALRM``/``setitimer`` —
    it interrupts even a wedged C call.  Everywhere else (non-unix
    platforms, queue-mode drain threads executing inline) the budget
    is a watchdog thread (:func:`_watchdog_timeout`), so a timeout is
    *always* enforced rather than silently skipped.
    """
    if not timeout:
        return fn()
    if (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):
        def _alarm(signum, frame):
            raise JobTimeoutError(f"job exceeded its {timeout:g}s budget")

        previous = signal.signal(signal.SIGALRM, _alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            return fn()
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    return _watchdog_timeout(fn, timeout)


def pool_entry(
    job: Job,
    timeout: float | None,
    trace: dict | None = None,
    warm: str | None = None,
    faults: tuple | None = None,
) -> tuple[str, dict | None, str | None, float, dict | None]:
    """Worker-side wrapper: isolate failures, enforce the timeout.

    Returns ``(status, payload, error, wall_seconds, obs)`` — a plain
    tuple of primitives so it pickles cleanly back across the process
    pool.  The campaign pool and the sizing service both submit this
    exact callable, which is what keeps their results identical.

    ``trace`` is an optional :func:`~repro.obs.trace.current_carrier`
    dict; when given, the job executes inside the propagated trace
    context, its spans (``job.execute`` plus every solver-phase span
    underneath) buffer in-process, and ``obs`` carries them back as
    ``{"spans": [...]}`` for the parent to merge — how span parentage
    survives the forkserver boundary.  With ``trace=None`` no context
    is created and no span cost is paid: tracing costs nothing when off.

    ``warm`` is an optional warm-corpus backend *spec string* (the
    corpus holds live connections, so workers resolve it locally and
    cache the index per process).  The session's telemetry — and the
    job's own staged corpus record — come back under ``obs["warm"]``;
    the parent folds the telemetry into metrics and stores the record
    with the cache entry.  ``obs`` is None only when tracing, the
    corpus and fault injection are all off.

    ``faults`` is an optional fault-injection config
    (:meth:`~repro.faults.injector.FaultInjector.config_args`); the
    worker (re-)installs it before the job runs — explicit hand-off,
    because a forkserver started before ``install`` would never see
    the parent's environment variables.  The ``worker`` probe fires
    inside the job's wall-time budget (a ``kill`` exits the process, a
    ``hang`` is bounded by the timeout), and fault events from worker
    *processes* ship home under ``obs["faults"]`` for the parent's
    metrics.
    """
    injector = install_from_args(faults)
    start = time.perf_counter()
    sink = SpanSink() if trace is not None else None
    scope = (
        trace_scope(
            sink=sink,
            trace_id=trace.get("trace_id"),
            parent_id=trace.get("parent_id"),
        )
        if sink is not None
        else nullcontext()
    )
    session = WarmSession.open(warm)
    status: str
    payload: dict | None = None
    error: str | None = None
    try:
        with scope:
            with span(
                "job.execute",
                kind=job.kind,
                circuit=job.circuit,
                delay_spec=job.delay_spec,
            ):
                def _run():
                    probe("worker")  # kill/hang faults strike at entry
                    return execute_job(job, warm=session)

                status, payload = _with_timeout(_run, timeout)
    except JobTimeoutError as exc:
        status, error = "timeout", str(exc)
    except Exception as exc:  # noqa: BLE001 — isolation is the point
        status = "failed"
        error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
    obs: dict | None = None
    fault_events = (
        injector.drain_events()
        if injector is not None
        # In-process (thread-pool) execution already counted the fires
        # in the shared registry; shipping them would double-count.
        and multiprocessing.parent_process() is not None
        else None
    )
    if sink is not None or session is not None or fault_events:
        obs = {}
        if sink is not None:
            obs["spans"] = sink.drain()
        if session is not None:
            obs["warm"] = session.as_obs()
        if fault_events:
            obs["faults"] = fault_events
    return status, payload, error, time.perf_counter() - start, obs


# -- batched execution (stacked kernel call, runs in the worker) ------


def batch_groups(
    pending: list[tuple[int, Job, str | None]],
) -> tuple[list[list[tuple[int, Job, str | None]]], list[tuple[int, Job, str | None]]]:
    """Partition pending jobs into fusable batches plus leftovers.

    Jobs fuse when they share kind, mode, flow backend and option
    overrides (one technology serves the whole campaign, so this is
    the "same technology/options" compatibility the stacked kernel
    needs); everything else — including every non-batchable kind —
    comes back in ``rest`` and runs through the ordinary per-job
    paths.  Group order and in-group job order follow expansion order.
    """
    groups: dict[tuple, list[tuple[int, Job, str | None]]] = {}
    rest: list[tuple[int, Job, str | None]] = []
    for item in pending:
        job = item[1]
        if job.kind in BATCHABLE_KINDS:
            signature = (job.kind, job.mode, job.flow_backend, job.options)
            groups.setdefault(signature, []).append(item)
        else:
            rest.append(item)
    return list(groups.values()), rest


def batch_entry(
    jobs: list[Job],
    timeout: float | None,
    traces: list[dict | None] | None = None,
    faults: tuple | None = None,
) -> list[tuple[str, dict | None, str | None, float, float, dict | None]]:
    """Run a compatible job group through one stacked kernel call.

    The batched twin of :func:`pool_entry`: returns one
    ``(status, payload, error, wall_seconds, batched_seconds, obs)``
    tuple of primitives per job, in job order, so it pickles cleanly
    across a process pool.  ``batched_seconds`` is the shared
    stacked-solve wall time (0.0 when that job was served by the
    per-job fallback).  ``traces`` optionally carries one
    :func:`~repro.obs.trace.current_carrier` dict per job; each traced
    job's ``obs`` blob ships its spans back (``batch.setup`` under its
    own budget, plus a ``batch.solve_share`` span whose duration is
    the job's *amortized share* of the stacked solve, so a parent
    span's children never sum past the parent).

    Failure isolation works in three layers:

    * per-job setup (circuit resolution, DAG build, budget validation)
      runs under the job's own wall-time budget — a bad token or a hung
      build fails that job alone;
    * the stacked solve runs under the *sum* of the surviving jobs'
      budgets; if it raises or times out, every survivor re-runs
      through :func:`pool_entry` individually, each under its own
      budget — the batch degrades to the per-job loop instead of
      failing collectively;
    * a job whose instance does not converge in the stacked run (its
      result slot is None) replays through :func:`pool_entry` alone,
      which raises the same diagnostic a solo run would.
    """
    from repro.sizing.kernels import get_smp_plan
    from repro.sizing.smp import smp_headroom

    injector = install_from_args(faults)
    n = len(jobs)
    raws: list[tuple | None] = [None] * n
    setup_seconds = [0.0] * n
    contexts: dict[tuple[str, str], tuple] = {}
    prepared: dict[int, tuple] = {}
    traces = list(traces) if traces else [None] * n
    sinks: list[SpanSink | None] = [
        SpanSink() if carrier else None for carrier in traces
    ]

    def job_scope(pos: int):
        carrier = traces[pos]
        if carrier is None:
            return nullcontext()
        return trace_scope(
            sink=sinks[pos],
            trace_id=carrier.get("trace_id"),
            parent_id=carrier.get("parent_id"),
        )

    def job_obs(pos: int) -> dict | None:
        sink = sinks[pos]
        return {"spans": sink.drain()} if sink is not None else None

    for pos, job in enumerate(jobs):
        start = time.perf_counter()

        def setup(job: Job = job):
            context_key = (job.circuit, job.mode)
            if context_key not in contexts:
                # Successes are shared across the batch; failures are
                # not cached, so every job owning the token reports
                # the error itself (as it would per-job).
                contexts[context_key] = _wphase_context(job)
            circuit, dag, load_delay = contexts[context_key]
            budgets = _wphase_budgets(dag, load_delay, job.delay_spec)
            smp_headroom(dag.model, budgets)  # invalid budgets fail here
            return circuit, dag, budgets, get_smp_plan(dag)

        try:
            with job_scope(pos):
                with span("batch.setup", circuit=job.circuit):
                    prepared[pos] = _with_timeout(setup, timeout)
            setup_seconds[pos] = time.perf_counter() - start
        except JobTimeoutError as exc:
            raws[pos] = (
                "timeout", None, str(exc),
                time.perf_counter() - start, 0.0, job_obs(pos),
            )
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            raws[pos] = (
                "failed", None, detail,
                time.perf_counter() - start, 0.0, job_obs(pos),
            )

    live = sorted(prepared)
    solved = None
    batched_seconds = 0.0
    solve_wall = time.time()
    if live:
        solve_start = time.perf_counter()

        def stacked():
            from repro.sizing.batch import (
                build_batched_smp_plan,
                solve_smp_batched,
            )

            models = [prepared[pos][1].model for pos in live]
            plan = build_batched_smp_plan(
                models, [prepared[pos][3] for pos in live]
            )
            return solve_smp_batched(
                models,
                [prepared[pos][2] for pos in live],
                [prepared[pos][1].lower for pos in live],
                [prepared[pos][1].upper for pos in live],
                plan,
            )

        try:
            budget = timeout * len(live) if timeout else None
            solved = _with_timeout(stacked, budget)
            batched_seconds = time.perf_counter() - solve_start
        except Exception:  # noqa: BLE001 — degrade to the per-job loop
            solved = None

    if solved is None:
        solved = [None] * len(live)
    for pos, smp in zip(live, solved):
        job = jobs[pos]
        if smp is None:
            # Stacked solve unavailable (failed, timed out) or this
            # instance did not converge: the isolated per-job path is
            # the authority, including its error text.
            status, payload, error, wall, fallback_obs = pool_entry(
                job, timeout, traces[pos]
            )
            if fallback_obs and sinks[pos] is not None:
                sinks[pos].emit_many(fallback_obs.get("spans") or ())
            raws[pos] = (status, payload, error, wall, 0.0, job_obs(pos))
            continue
        carrier = traces[pos]
        if carrier is not None:
            # The stacked solve served every live job at once; each
            # traced job records its amortized share so per-parent
            # child durations stay <= the parent's.
            sinks[pos].emit({
                "type": "span",
                "trace": carrier.get("trace_id"),
                "id": new_span_id(),
                "parent": carrier.get("parent_id"),
                "name": "batch.solve_share",
                "ts": solve_wall,
                "duration_s": batched_seconds / len(live),
                "attrs": {
                    "batch_size": len(live),
                    "batched_seconds": batched_seconds,
                },
            })
        start = time.perf_counter()
        try:
            circuit, dag, budgets, _plan = prepared[pos]
            status, payload = _wphase_payload(job, circuit, dag, budgets, smp)
            wall = (
                setup_seconds[pos]
                + batched_seconds / len(live)
                + (time.perf_counter() - start)
            )
            raws[pos] = (
                status, payload, None, wall, batched_seconds, job_obs(pos),
            )
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            raws[pos] = (
                "failed", None, detail,
                setup_seconds[pos] + (time.perf_counter() - start),
                batched_seconds, job_obs(pos),
            )
    if injector is not None and multiprocessing.parent_process() is not None:
        # Worker-process fault events ride home on the first job's obs
        # blob (batch-level faults have no single owning job anyway).
        events = injector.drain_events()
        if events and raws and raws[0] is not None:
            first = dict(raws[0][5] or {})
            first["faults"] = events
            raws[0] = (*raws[0][:5], first)
    return raws


# -- the driver (parent process) --------------------------------------


def _payload_status(payload: dict) -> str:
    """Completed status a cached payload replays as (kind-aware)."""
    if payload.get("kind") == "wphase":
        return "ok" if payload.get("feasible") else "infeasible"
    return "ok" if payload.get("result") is not None else "infeasible"


def probe_cache(
    job: Job, key: str | None, cache: ResultCache | None, index: int = 0
) -> JobOutcome | None:
    """Replay a job from the result cache, or None on a miss.

    Only :data:`CACHEABLE_KINDS` jobs are cacheable (phase-timing
    payloads are wall-clock measurements); a hit comes back as a
    completed :class:`JobOutcome` with ``cached=True`` and zero wall
    time.
    """
    if cache is None or key is None or job.kind not in CACHEABLE_KINDS:
        return None
    payload = cache.get(key)
    if payload is None:
        return None
    return JobOutcome(
        index=index,
        job=job,
        key=key,
        status=_payload_status(payload),
        cached=True,
        wall_seconds=0.0,
        payload=payload,
    )


def store_outcome(
    outcome: JobOutcome,
    cache: ResultCache | None,
    warm: dict | None = None,
) -> None:
    """Store a freshly computed, cacheable outcome in the result cache.

    No-op for cache misses that failed or timed out, for replayed
    (already cached) outcomes, and for uncacheable job kinds.
    Batch telemetry lives on the :class:`JobOutcome` and the JSONL
    record, never in the stored payload — a batched and a per-job
    execution of the same fingerprint must cache identical entries.

    ``warm`` optionally attaches the job's own corpus record to the
    entry (see :meth:`~repro.runner.cache.ResultCache.put`); it rides
    next to the payload, never inside it.
    """
    if (
        outcome.completed
        and not outcome.cached
        and cache is not None
        and outcome.key is not None
        # Phase-timing payloads are wall-clock measurements — not
        # content-addressable, so never cached.
        and outcome.job.kind in CACHEABLE_KINDS
    ):
        cache.put(outcome.key, outcome.payload, warm=warm)


def apply_warm(
    outcome: JobOutcome, obs: dict | None
) -> tuple[JobOutcome, dict | None]:
    """Fold a worker's warm telemetry into its outcome (parent side).

    Returns the (possibly updated) outcome plus the staged corpus
    record to store with the cache entry.  This is also the single
    place ``repro_warmstart_total`` moves: worker-side increments would
    be lost across a process pool and double-counted in-thread, so the
    counter follows the obs dict home instead.
    """
    warm_obs = (obs or {}).get("warm")
    if not warm_obs:
        return outcome, None
    blob = warm_obs.pop("blob", None)
    record_warm_outcome(warm_obs)
    outcome = replace(
        outcome,
        warm_hit=bool(warm_obs.get("hit")),
        warm_seeded=bool(warm_obs.get("seeded")),
        warm_fallback=bool(warm_obs.get("fallback")),
    )
    return outcome, blob


_UNRESOLVED = object()  # sentinel: run_one must compute the key itself


def run_one(
    job: Job,
    cache: ResultCache | None = None,
    timeout: float | None = None,
    index: int = 0,
    key: str | None | object = _UNRESOLVED,
    warm: str | None = None,
) -> JobOutcome:
    """Run a single job in this process: probe, execute, store.

    The one-job counterpart of :func:`run_campaign`, and the execution
    path the sizing service (:mod:`repro.service`) shares with the
    campaign loop: cache probe first, then :func:`pool_entry` (failure
    isolation + wall-time budget), then the cache write — so a service
    request and a campaign job with the same fingerprint produce (and
    reuse) the identical cache entry.

    ``key`` may be passed in by callers that already computed it (the
    service does, to log it); by default it is derived here, and a job
    whose circuit token cannot resolve simply executes uncached and
    fails in isolation, exactly like a campaign job would.

    ``warm`` is an optional warm-corpus backend spec string (see
    :func:`pool_entry`); cache hits never probe the corpus.
    """
    if key is _UNRESOLVED:
        key = campaign_keys([job], cache)[0]
    ctx = current_trace()
    hit = probe_cache(job, key, cache, index=index)
    if hit is not None:
        if ctx is not None:
            hit = replace(hit, trace_id=ctx.trace_id)
        return hit
    status, payload, error, wall, obs = pool_entry(
        job, timeout, current_carrier(), warm
    )
    emit_obs(obs)
    outcome = JobOutcome(
        index=index,
        job=job,
        key=key,
        status=status,
        cached=False,
        wall_seconds=wall,
        payload=payload,
        error=error,
        trace_id=ctx.trace_id if ctx is not None else None,
    )
    outcome, warm_blob = apply_warm(outcome, obs)
    store_outcome(outcome, cache, warm=warm_blob)
    return outcome


def campaign_keys(
    job_list: list[Job], cache: ResultCache | None
) -> list[str | None]:
    """Cache keys for a job list (None entries when caching is off).

    Keying a job builds its circuit; a job whose token cannot resolve
    gets a None key here and fails in isolation when executed, instead
    of taking the whole campaign down before it starts.  Each distinct
    circuit token is resolved and serialized once per pass no matter
    how many jobs share it (a figure-7 panel is one circuit × many
    ratios).
    """
    keys: list[str | None] = []
    digests: dict[str, str | None] = {}
    for job in job_list:
        if cache is None:
            keys.append(None)
            continue
        if job.circuit not in digests:
            try:
                digests[job.circuit] = netlist_digest(job.circuit)
            except ReproError:
                digests[job.circuit] = None
        sha = digests[job.circuit]
        keys.append(None if sha is None else job_key(job, netlist_sha=sha))
    return keys


def run_campaign(
    spec: CampaignSpec | list[Job],
    jobs: int = 1,
    cache: ResultCache | None = None,
    timeout: float | None = None,
    on_outcome=None,
    keys: list[str | None] | None = None,
    batch: bool = False,
    trace_sink: SpanSink | None = None,
    warm_corpus: str | None = None,
) -> CampaignResult:
    """Run a campaign; returns outcomes in job-expansion order.

    ``jobs`` is the worker-process count (1 = inline, no pool);
    ``cache`` short-circuits jobs whose key is already stored and
    receives every newly completed payload; ``timeout`` is the per-job
    wall-time budget in seconds; ``on_outcome`` is called once per
    outcome *in completion order* (the JSONL streamer hooks in here);
    ``keys`` are precomputed :func:`campaign_keys` (computing a key
    builds the circuit, so callers that already did — e.g. to write the
    run-log header — pass them in rather than paying twice).

    ``batch=True`` fuses compatible cache-missed jobs of
    :data:`BATCHABLE_KINDS` into stacked kernel calls
    (:func:`batch_entry`); fused groups run inline in the driver —
    avoiding N pool round-trips is the point — while incompatible
    leftovers take the ordinary per-job paths below.  Per-job results
    are bit-identical either way; only the :class:`JobOutcome` batch
    telemetry differs.

    ``trace_sink`` enables tracing: every job gets its own trace id
    and a root ``job`` span; worker-side spans ship back through the
    result tuples and land in the sink (the run directory's
    ``trace.jsonl``) as children of that root.  Payloads, cache
    entries and the run digest are byte-identical with tracing on or
    off.

    ``warm_corpus`` is an optional corpus backend spec string: each
    cache-missed job probes it for the nearest prior solution and
    seeds its solver (payloads stay bitwise-identical to cold runs —
    the solver hooks own the fallback), and every completed job's own
    trajectory is stored with its cache entry for future probes, so a
    drifting sweep warms itself up as it goes.  Batched groups run
    cold: the stacked kernel has no per-job seeding story.
    """
    if isinstance(spec, CampaignSpec):
        name = spec.name
        job_list = spec.jobs()
    else:
        name = "adhoc"
        job_list = list(spec)
    if keys is None:
        keys = campaign_keys(job_list, cache)

    result = CampaignResult(name=name)
    slots: list[JobOutcome | None] = [None] * len(job_list)

    tracing = trace_sink is not None
    trace_ids: dict[int, tuple[str, str]] = (
        {i: (new_trace_id(), new_span_id()) for i in range(len(job_list))}
        if tracing
        else {}
    )

    def carrier_for(index: int) -> dict | None:
        if not tracing:
            return None
        trace_id, root_id = trace_ids[index]
        return {"trace_id": trace_id, "parent_id": root_id}

    def finish(outcome: JobOutcome, obs: dict | None = None) -> None:
        observe_faults(get_registry(), (obs or {}).get("faults"))
        outcome, warm_blob = apply_warm(outcome, obs)
        if tracing:
            trace_id, root_id = trace_ids[outcome.index]
            outcome = replace(outcome, trace_id=trace_id)
            records = list((obs or {}).get("spans") or ())
            records.append({
                "type": "span",
                "trace": trace_id,
                "id": root_id,
                "parent": None,
                "name": "job",
                "ts": time.time() - outcome.wall_seconds,
                "duration_s": outcome.wall_seconds,
                "attrs": {
                    "index": outcome.index,
                    "label": outcome.job.label(),
                    "status": outcome.status,
                    "cached": outcome.cached,
                },
            })
            trace_sink.emit_many(records)
        slots[outcome.index] = outcome
        store_outcome(outcome, cache, warm=warm_blob)
        if on_outcome is not None:
            on_outcome(outcome)

    pending: list[tuple[int, Job, str | None]] = []
    for index, job in enumerate(job_list):
        key = keys[index]
        hit = probe_cache(job, key, cache, index=index)
        if hit is not None:
            finish(hit)
        else:
            pending.append((index, job, key))

    fault_injector = active_faults()
    fault_args = (
        fault_injector.config_args() if fault_injector is not None else None
    )

    if batch and pending:
        groups, pending = batch_groups(pending)
        for group in groups:
            raws = batch_entry(
                [job for _, job, _ in group],
                timeout,
                traces=[carrier_for(index) for index, _, _ in group],
                faults=fault_args,
            )
            for (index, job, key), raw in zip(group, raws):
                status, payload, error, wall, batched_seconds, obs = raw
                finish(JobOutcome(
                    index=index,
                    job=job,
                    key=key,
                    status=status,
                    cached=False,
                    wall_seconds=wall,
                    payload=payload,
                    error=error,
                    # batched_seconds == 0.0 marks a per-job fallback:
                    # that outcome was not produced by the stacked call.
                    batch_size=len(group) if batched_seconds > 0.0 else 0,
                    batched_seconds=batched_seconds,
                ), obs)

    if pending and jobs <= 1:
        for index, job, key in pending:
            status, payload, error, wall, obs = pool_entry(
                job, timeout, carrier_for(index), warm_corpus
            )
            finish(JobOutcome(
                index=index,
                job=job,
                key=key,
                status=status,
                cached=False,
                wall_seconds=wall,
                payload=payload,
                error=error,
            ), obs)
    elif pending:
        queue_items = list(pending)
        restarts = 0
        while queue_items:
            broken: list[tuple[int, Job, str | None]] = []
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {
                    pool.submit(
                        pool_entry, job, timeout, carrier_for(index),
                        warm_corpus, fault_args,
                    ): (index, job, key)
                    for index, job, key in queue_items
                }
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(
                        remaining, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        index, job, key = futures[future]
                        obs = None
                        try:
                            status, payload, error, wall, obs = future.result()
                        except BrokenExecutor:
                            # A worker died (SIGKILL, OOM, injected
                            # kill): every in-flight job's future breaks
                            # at once.  Collect them for a fresh pool
                            # instead of failing the campaign.
                            broken.append((index, job, key))
                            continue
                        except Exception as exc:
                            status, payload, wall = "failed", None, 0.0
                            error = f"{type(exc).__name__}: {exc}"
                        finish(JobOutcome(
                            index=index,
                            job=job,
                            key=key,
                            status=status,
                            cached=False,
                            wall_seconds=wall,
                            payload=payload,
                            error=error,
                        ), obs)
            if not broken:
                break
            # A worker killed between its cache put and returning may
            # already have stored its result — re-probe before re-running
            # so the crash-resume replays instead of recomputing.
            queue_items = []
            for index, job, key in sorted(broken):
                hit = probe_cache(job, key, cache, index=index)
                if hit is not None:
                    finish(hit)
                else:
                    queue_items.append((index, job, key))
            restarts += 1
            if queue_items and restarts >= MAX_POOL_RESTARTS:
                for index, job, key in queue_items:
                    finish(JobOutcome(
                        index=index,
                        job=job,
                        key=key,
                        status="failed",
                        cached=False,
                        wall_seconds=0.0,
                        payload=None,
                        error=(
                            f"worker process died repeatedly; gave up "
                            f"after {restarts} pool restarts"
                        ),
                    ))
                break

    result.outcomes = [slot for slot in slots if slot is not None]
    return result
