"""Campaign specifications: declarative sweeps expanded into jobs.

A :class:`CampaignSpec` declares a sweep — circuits × delay-target
fractions × flow-backend/option matrix — and expands deterministically
into an ordered list of hashable :class:`Job` records.  Jobs are plain
frozen dataclasses of primitives, so they pickle across the process
pool, hash into cache keys, and round-trip through the JSONL run log.

Circuit tokens accepted everywhere in the subsystem (and by the CLI):

* a suite name from :data:`repro.generators.iscas.SUITE` (or ``c17``),
* ``rca:N`` — a NAND-style ripple-carry adder of width ``N`` (the
  scaling study's family),
* a path to an ISCAS ``.bench`` file (pruned and fanout-buffered
  exactly like the ``size`` command).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from pathlib import Path

from repro.circuit.netlist import Circuit
from repro.errors import RunnerError
from repro.generators.iscas import SUITE, build_circuit
from repro.sizing.minflo import MinfloOptions

__all__ = [
    "Job",
    "CampaignSpec",
    "JOB_KINDS",
    "normalize_options",
    "resolve_circuit",
    "tier_preset",
]

#: Job kinds the executor knows how to run.  ``sizing`` is the full
#: TILOS + MINFLOTRANSIT pipeline; ``wphase`` solves one W-phase SMP
#: instance (budgets derived from the delay spec) — the batchable
#: kernel workload, cacheable like ``sizing``; ``phases`` times one
#: STA / balance / W-phase / D-phase pass (the scaling study) and is
#: never cached — wall-clock measurements are not content-addressable.
JOB_KINDS = ("sizing", "wphase", "phases")

_SUITE_SPECS = {spec.name: spec.delay_spec for spec in SUITE}

#: MinfloOptions fields a campaign may override (scalars only — nested
#: TilosOptions stay at their defaults so job fingerprints remain flat;
#: ``warm_corpus`` is execution strategy, not result identity, so it
#: never enters a job — and therefore never enters a cache key).
_OPTION_FIELDS = frozenset(
    f.name
    for f in fields(MinfloOptions)
    if f.name not in ("tilos", "warm_corpus")
)


def normalize_options(overrides: dict | None) -> tuple[tuple[str, object], ...]:
    """Canonicalize MinfloOptions overrides into a hashable tuple.

    Keys are validated against the dataclass fields and sorted, so two
    dicts with the same content always produce the same tuple (and the
    same cache key).
    """
    if not overrides:
        return ()
    unknown = sorted(set(overrides) - _OPTION_FIELDS)
    if unknown:
        raise RunnerError(
            f"unknown MinfloOptions override(s) {unknown}; "
            f"valid: {sorted(_OPTION_FIELDS)}"
        )
    return tuple(sorted(overrides.items()))


@dataclass(frozen=True)
class Job:
    """One unit of campaign work: size (or time) one circuit at one
    delay target with one solver configuration."""

    circuit: str
    delay_spec: float
    kind: str = "sizing"
    mode: str = "gate"
    flow_backend: str = "auto"
    #: Sorted ``(field, value)`` MinfloOptions overrides (see
    #: :func:`normalize_options`).
    options: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise RunnerError(
                f"unknown job kind {self.kind!r}; pick from {JOB_KINDS}"
            )
        if not 0.0 < self.delay_spec:
            raise RunnerError(
                f"delay spec must be a positive fraction of Dmin, "
                f"got {self.delay_spec!r}"
            )

    def minflo_options(self) -> MinfloOptions:
        """Concrete options for this job (overrides applied)."""
        return MinfloOptions(
            flow_backend=self.flow_backend, **dict(self.options)
        )

    def label(self) -> str:
        """Compact human-readable identity for tables and logs."""
        text = f"{self.circuit}@{self.delay_spec:g}"
        if self.flow_backend != "auto":
            text += f"/{self.flow_backend}"
        if self.kind != "sizing":
            text += f" [{self.kind}]"
        return text

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "circuit": self.circuit,
            "delay_spec": self.delay_spec,
            "kind": self.kind,
            "mode": self.mode,
            "flow_backend": self.flow_backend,
            "options": [list(kv) for kv in self.options],
        }

    @staticmethod
    def from_dict(payload: dict) -> "Job":
        """Rebuild a job from its :meth:`to_dict` form."""
        return Job(
            circuit=payload["circuit"],
            delay_spec=float(payload["delay_spec"]),
            kind=payload.get("kind", "sizing"),
            mode=payload.get("mode", "gate"),
            flow_backend=payload.get("flow_backend", "auto"),
            options=tuple(
                (key, value) for key, value in payload.get("options", [])
            ),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: circuits × delay specs × backends.

    ``delay_specs=()`` means "each circuit's own Table 1 delay
    specification" (only meaningful for suite circuits).  Expansion
    order is deterministic: circuits outermost, then delay specs, then
    backends — so job indices are stable across runs and resumes.
    """

    name: str
    circuits: tuple[str, ...]
    delay_specs: tuple[float, ...] = ()
    flow_backends: tuple[str, ...] = ("auto",)
    kind: str = "sizing"
    mode: str = "gate"
    options: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.circuits:
            raise RunnerError("campaign needs at least one circuit")
        if self.kind not in JOB_KINDS:
            raise RunnerError(
                f"unknown job kind {self.kind!r}; pick from {JOB_KINDS}"
            )
        if not self.flow_backends:
            raise RunnerError("campaign needs at least one flow backend")

    def _specs_for(self, circuit: str) -> tuple[float, ...]:
        if self.delay_specs:
            return self.delay_specs
        spec = _SUITE_SPECS.get(circuit)
        if spec is None:
            raise RunnerError(
                f"no default delay spec for {circuit!r}: pass explicit "
                "delay_specs for circuits outside the Table 1 suite"
            )
        return (spec,)

    def jobs(self) -> list[Job]:
        """Deterministic expansion into the campaign's job list."""
        out = []
        for circuit in self.circuits:
            for delay_spec in self._specs_for(circuit):
                for backend in self.flow_backends:
                    out.append(
                        Job(
                            circuit=circuit,
                            delay_spec=delay_spec,
                            kind=self.kind,
                            mode=self.mode,
                            flow_backend=backend,
                            options=self.options,
                        )
                    )
        return out

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "circuits": list(self.circuits),
            "delay_specs": list(self.delay_specs),
            "flow_backends": list(self.flow_backends),
            "kind": self.kind,
            "mode": self.mode,
            "options": [list(kv) for kv in self.options],
        }

    @staticmethod
    def from_dict(payload: dict) -> "CampaignSpec":
        """Rebuild a spec from its :meth:`to_dict` form (JSONL header)."""
        return CampaignSpec(
            name=payload["name"],
            circuits=tuple(payload["circuits"]),
            delay_specs=tuple(float(s) for s in payload["delay_specs"]),
            flow_backends=tuple(payload.get("flow_backends", ["auto"])),
            kind=payload.get("kind", "sizing"),
            mode=payload.get("mode", "gate"),
            options=tuple(
                (key, value) for key, value in payload.get("options", [])
            ),
        )


def tier_preset(tier: str | None = None, flow_backend: str = "auto") -> CampaignSpec:
    """The Table 1 sweep for a benchmark tier.

    Mirrors ``REPRO_BENCH_TIER``: the ``smoke`` preset covers the small
    suite rows, ``paper`` all of them; every circuit runs at its own
    paper delay specification.
    """
    tier = tier or os.environ.get("REPRO_BENCH_TIER", "smoke")
    if tier == "paper":
        names = tuple(spec.name for spec in SUITE)
    elif tier == "smoke":
        names = tuple(spec.name for spec in SUITE if spec.tier == "smoke")
    else:
        raise RunnerError(
            f"unknown tier {tier!r} (use 'smoke' or 'paper')"
        )
    return CampaignSpec(
        name=f"table1-{tier}",
        circuits=names,
        flow_backends=(flow_backend,),
    )


def resolve_circuit(token: str) -> Circuit:
    """Build the circuit a job token names (see module docstring)."""
    if token.startswith("rca:"):
        try:
            width = int(token.split(":", 1)[1])
        except ValueError:
            raise RunnerError(
                f"bad ripple-carry token {token!r} (use 'rca:WIDTH')"
            ) from None
        if width < 1:
            raise RunnerError(f"ripple-carry width must be >= 1, got {width}")
        from repro.generators import ripple_carry_adder

        return ripple_carry_adder(width, style="nand")
    path = Path(token)
    if path.suffix == ".bench" or path.exists():
        from repro.circuit import load_bench, prune_dangling
        from repro.circuit.transform import buffer_high_fanout

        try:
            circuit = load_bench(path)
        except OSError as exc:
            raise RunnerError(f"cannot read netlist {token!r}: {exc}") from exc
        circuit = prune_dangling(circuit)
        return buffer_high_fanout(circuit, max_fanout=12)
    return build_circuit(token)
