"""Content-addressed on-disk store for campaign job results.

A job's cache key is the SHA-256 of a canonical JSON fingerprint of
*everything that determines its outcome*:

* the exact netlist (``dumps_bench`` of the resolved circuit — tokens
  are not trusted, so editing a ``.bench`` file or changing a generator
  invalidates its entries),
* the full technology parameter set,
* the job parameters (mode, delay spec, backend, option overrides),
* the code schema versions (the sizing-result schema from
  :mod:`repro.sizing.serialize` plus this cache's own layout version).

Where entries *live* is delegated to a pluggable
:class:`~repro.runner.backends.CacheBackend` — the local per-directory
store (:class:`~repro.runner.backends.DiskBackend`, the default and
the original layout at ``<root>/<key[:2]>/<key>.json``), a shared
SQLite store safe for many processes, or a read-through tiered pair
(local L1 → shared L2).  Every backend write is atomic per entry, so a
campaign killed mid-write never leaves a truncated entry behind, and
concurrent writers of the same key settle on one intact copy.  Any
unreadable, corrupt, or version-mismatched entry is treated as a miss
— the job simply re-runs — and the disk backend quarantines corrupt
files to ``*.bad`` so they cannot poison later probes.
"""

from __future__ import annotations

import hashlib
import sqlite3
from dataclasses import asdict
from pathlib import Path

from repro.circuit.bench_io import dumps_bench
from repro.obs.metrics import get_registry
from repro.runner.backends import CacheBackend, DiskBackend, open_backend
from repro.runner.spec import Job, resolve_circuit
from repro.sizing import serialize
from repro.tech import default_technology

__all__ = ["CACHE_LAYOUT_VERSION", "ResultCache", "job_key", "netlist_digest"]

#: Probe outcomes per backend scheme, in the process-global registry
#: (the cache outlives any one service instance; ``/v1/metrics``
#: concatenates this registry with the service's own).
_PROBES = get_registry().counter(
    "repro_cache_probe_total",
    "Result-cache probes by backend scheme and outcome.",
    ("backend", "result"),
)

#: Version of the cache entry layout itself (bump to orphan every
#: existing entry when the payload structure changes incompatibly).
CACHE_LAYOUT_VERSION = 1


def netlist_digest(token: str) -> str:
    """SHA-256 of the resolved circuit's exact ``.bench`` text."""
    circuit = resolve_circuit(token)
    return hashlib.sha256(dumps_bench(circuit).encode()).hexdigest()


def job_fingerprint(job: Job, netlist_sha: str | None = None) -> dict:
    """JSON-ready description of everything that determines the result.

    ``netlist_sha`` lets batch callers (:func:`campaign_keys`) resolve
    and serialize each distinct circuit token once instead of once per
    job — a figure-7 panel shares one circuit across every ratio.
    """
    return {
        "cache_layout": CACHE_LAYOUT_VERSION,
        "result_schema": serialize.SCHEMA_VERSION,
        "netlist_sha256": netlist_sha or netlist_digest(job.circuit),
        "technology": asdict(default_technology()),
        "job": job.to_dict(),
    }


def job_key(job: Job, netlist_sha: str | None = None) -> str:
    """Content-addressed cache key (hex SHA-256) for a job."""
    canonical = serialize.canonical_json(job_fingerprint(job, netlist_sha))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Content-addressed result store over a pluggable backend.

    Construct with a directory path (the classic local-disk layout), a
    backend spec string understood by
    :func:`~repro.runner.backends.open_backend` (``disk:…`` /
    ``sqlite:…`` / ``tiered:…``), or an already-built
    :class:`~repro.runner.backends.CacheBackend`.  The cache owns the
    entry envelope — layout and result-schema version checks — while
    the backend owns raw storage, so every backend enforces identical
    compatibility rules.
    """

    def __init__(self, store: CacheBackend | str | Path):
        if isinstance(store, Path):
            self.backend: CacheBackend = DiskBackend(store)
        elif isinstance(store, str):
            self.backend = open_backend(store)
        else:
            self.backend = store
        self._scheme = self.backend.describe().partition(":")[0]

    @property
    def root(self) -> Path | str:
        """The store's location: a directory for the classic disk
        backend (kept for callers that print or glob it), otherwise the
        backend's ``scheme:location`` description."""
        if isinstance(self.backend, DiskBackend):
            return self.backend.root
        return self.backend.describe()

    def describe(self) -> str:
        """Human-readable ``scheme:location`` of the backing store."""
        return self.backend.describe()

    def _path(self, key: str) -> Path:
        """Entry file for ``key`` (disk backends only; tests poke this)."""
        if isinstance(self.backend, DiskBackend):
            return self.backend.path(key)
        raise TypeError(
            f"{self.backend.describe()} does not store per-key files"
        )

    def get(self, key: str) -> dict | None:
        """The cached payload for ``key``, or None on any kind of miss.

        Storage errors (a dying disk, a locked SQLite file, an injected
        ``cache.get`` fault on a non-tiered backend) are *misses*, not
        exceptions: the job recomputes, which the content-addressed
        design makes correct by construction.  They are counted
        separately (``result="error"``) so a sick store is visible.
        """
        try:
            payload = self._get(key)
        except (OSError, sqlite3.Error):
            _PROBES.inc(backend=self._scheme, result="error")
            return None
        _PROBES.inc(
            backend=self._scheme,
            result="hit" if payload is not None else "miss",
        )
        return payload

    def _get(self, key: str) -> dict | None:
        entry = self.backend.get(key)
        if entry is None:
            return None
        if entry.get("cache_layout") != CACHE_LAYOUT_VERSION:
            return None
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            return None
        result = payload.get("result")
        if result is not None and (
            serialize.payload_schema_version(result) != serialize.SCHEMA_VERSION
        ):
            # A result serialized by an older (or newer) build: unusable.
            return None
        return payload

    def put(self, key: str, payload: dict, warm: dict | None = None) -> None:
        """Atomically store ``payload`` under ``key``.

        ``warm`` optionally attaches a warm-start record (see
        :mod:`repro.runner.corpus`) *inside* the entry envelope, next
        to — never inside — the payload: the payload bytes are part of
        the service's byte-identity contract, while the warm record is
        retrieval metadata that older readers simply ignore.
        """
        entry: dict = {"cache_layout": CACHE_LAYOUT_VERSION, "payload": payload}
        if warm is not None:
            entry["warm"] = warm
        try:
            self.backend.put(key, entry)
        except (OSError, sqlite3.Error):
            # A lost write is a future recompute, never a wrong answer;
            # swallowing it keeps a sick store from failing good jobs.
            _PROBES.inc(backend=self._scheme, result="error")

    def get_warm(self, key: str) -> dict | None:
        """The warm-start record stored with ``key``, or None.

        Unlike :meth:`get` this never counts as a cache probe — corpus
        index scans would otherwise swamp the hit/miss telemetry.
        """
        try:
            entry = self.backend.get(key)
        except (OSError, sqlite3.Error):
            return None
        if entry is None or entry.get("cache_layout") != CACHE_LAYOUT_VERSION:
            return None
        warm = entry.get("warm")
        return warm if isinstance(warm, dict) else None

    def strip_warm(self, key: str) -> None:
        """Quarantine a corrupt warm record by rewriting the entry
        without it (the payload — still valid — survives).

        The warm-record analogue of the disk backend's ``*.bad`` rename
        and the SQLite backend's torn-row delete: a record that fails
        validation is removed so it cannot poison later probes.
        """
        try:
            entry = self.backend.get(key)
            if entry is None or "warm" not in entry:
                return
            entry.pop("warm", None)
            self.backend.put(key, entry)
        except (OSError, sqlite3.Error):
            pass  # quarantine is best-effort under storage failure

    def scan(self) -> "list[str]":
        """Every stored key (for corpus mining and fleet accounting)."""
        return list(self.backend.scan())

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.backend.scan())
