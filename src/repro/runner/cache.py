"""Content-addressed on-disk store for campaign job results.

A job's cache key is the SHA-256 of a canonical JSON fingerprint of
*everything that determines its outcome*:

* the exact netlist (``dumps_bench`` of the resolved circuit — tokens
  are not trusted, so editing a ``.bench`` file or changing a generator
  invalidates its entries),
* the full technology parameter set,
* the job parameters (mode, delay spec, backend, option overrides),
* the code schema versions (the sizing-result schema from
  :mod:`repro.sizing.serialize` plus this cache's own layout version).

Entries live at ``<root>/<key[:2]>/<key>.json`` and carry the job's
JSON payload (which embeds a full serialized
:class:`~repro.sizing.result.SizingResult`).  Writes are atomic
(temp file + rename), so a campaign killed mid-write never leaves a
truncated entry behind, and concurrent writers of the same key settle
on one intact copy.  Any unreadable, corrupt, or version-mismatched
entry is treated as a miss — the job simply re-runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path

from repro.circuit.bench_io import dumps_bench
from repro.runner.spec import Job, resolve_circuit
from repro.sizing import serialize
from repro.tech import default_technology

__all__ = ["CACHE_LAYOUT_VERSION", "ResultCache", "job_key", "netlist_digest"]

#: Version of the cache entry layout itself (bump to orphan every
#: existing entry when the payload structure changes incompatibly).
CACHE_LAYOUT_VERSION = 1


def netlist_digest(token: str) -> str:
    """SHA-256 of the resolved circuit's exact ``.bench`` text."""
    circuit = resolve_circuit(token)
    return hashlib.sha256(dumps_bench(circuit).encode()).hexdigest()


def job_fingerprint(job: Job, netlist_sha: str | None = None) -> dict:
    """JSON-ready description of everything that determines the result.

    ``netlist_sha`` lets batch callers (:func:`campaign_keys`) resolve
    and serialize each distinct circuit token once instead of once per
    job — a figure-7 panel shares one circuit across every ratio.
    """
    return {
        "cache_layout": CACHE_LAYOUT_VERSION,
        "result_schema": serialize.SCHEMA_VERSION,
        "netlist_sha256": netlist_sha or netlist_digest(job.circuit),
        "technology": asdict(default_technology()),
        "job": job.to_dict(),
    }


def job_key(job: Job, netlist_sha: str | None = None) -> str:
    """Content-addressed cache key (hex SHA-256) for a job."""
    canonical = serialize.canonical_json(job_fingerprint(job, netlist_sha))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Content-addressed result store rooted at a directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached payload for ``key``, or None on any kind of miss."""
        path = self._path(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if entry.get("cache_layout") != CACHE_LAYOUT_VERSION:
            return None
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            return None
        result = payload.get("result")
        if result is not None and (
            serialize.payload_schema_version(result) != serialize.SCHEMA_VERSION
        ):
            # A result serialized by an older (or newer) build: unusable.
            return None
        return payload

    def put(self, key: str, payload: dict) -> Path:
        """Atomically store ``payload`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"cache_layout": CACHE_LAYOUT_VERSION, "payload": payload}
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
