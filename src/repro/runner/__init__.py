"""Parallel sizing-campaign subsystem.

The paper's evidence is a sweep — many circuits × delay targets ×
solver configurations.  This package turns such sweeps into declarative
campaigns that run on a process pool, replay from a content-addressed
result cache, and resume after interruption:

* :mod:`repro.runner.spec` — :class:`CampaignSpec` → hashable
  :class:`Job` expansion (tier presets mirror ``REPRO_BENCH_TIER``);
* :mod:`repro.runner.cache` — on-disk store keyed on netlist + tech +
  options + schema versions;
* :mod:`repro.runner.executor` — pool execution with per-job timeout,
  failure isolation and deterministic result ordering;
* :mod:`repro.runner.progress` / :mod:`repro.runner.report` — JSONL
  run records, resume, status rendering.

The experiment harnesses (`repro.experiments.table1` / `figure7` /
`scaling`) and the ``python -m repro campaign`` CLI all run on top of
:func:`run` / :func:`resume` below.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import RunnerError
from repro.runner.backends import (
    CacheBackend,
    DiskBackend,
    SqliteBackend,
    TieredBackend,
    open_backend,
)
from repro.runner.cache import ResultCache, job_key
from repro.runner.executor import (
    CampaignResult,
    JobOutcome,
    campaign_keys,
    execute_job,
    pool_entry,
    probe_cache,
    run_campaign,
    run_one,
    store_outcome,
)
from repro.runner.progress import RunLog, RunState, load_run
from repro.runner.report import (
    campaign_to_dict,
    format_campaign,
    format_status,
    status_dict,
)
from repro.runner.spec import (
    CampaignSpec,
    Job,
    normalize_options,
    resolve_circuit,
    tier_preset,
)

__all__ = [
    "CacheBackend",
    "CampaignResult",
    "CampaignSpec",
    "DiskBackend",
    "Job",
    "JobOutcome",
    "ResultCache",
    "RunLog",
    "RunState",
    "SqliteBackend",
    "TieredBackend",
    "campaign_keys",
    "campaign_to_dict",
    "execute_job",
    "format_campaign",
    "format_status",
    "job_key",
    "load_run",
    "normalize_options",
    "open_backend",
    "pool_entry",
    "probe_cache",
    "resolve_circuit",
    "resume",
    "run",
    "run_campaign",
    "run_one",
    "status_dict",
    "store_outcome",
    "tier_preset",
]

#: Default cache directory (relative to the working directory) shared
#: by every campaign unless ``--cache-dir`` overrides it.
DEFAULT_CACHE_DIR = ".repro-cache"


def run(
    spec: CampaignSpec,
    jobs: int = 1,
    cache: ResultCache | str | Path | None = DEFAULT_CACHE_DIR,
    run_dir: str | Path | None = None,
    timeout: float | None = None,
    append_log: bool = False,
    batch: bool = False,
    trace: bool = True,
    warm_corpus: str | None = None,
) -> CampaignResult:
    """Run a campaign end to end: cache probe, pool, JSONL streaming.

    ``cache`` may be a :class:`ResultCache`, a directory path, or None
    to disable caching entirely; ``run_dir`` (optional) receives the
    ``campaign.jsonl`` run log that makes the campaign resumable plus
    (with ``trace=True``) a ``trace.jsonl`` of per-job span trees
    readable by ``python -m repro trace``; ``batch`` fuses compatible
    batchable jobs into stacked kernel calls (bit-identical per-job
    results, see :func:`repro.runner.executor.run_campaign`);
    ``warm_corpus`` (a cache backend spec string) turns on corpus
    warm starts — cache misses probe prior solutions for a seed, with
    a divergence monitor guaranteeing results bitwise identical to a
    cold run (see :mod:`repro.runner.corpus`).
    """
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    job_list = spec.jobs()
    keys = campaign_keys(job_list, cache)
    log = None
    trace_sink = None
    if run_dir is not None:
        log = RunLog(run_dir, append=append_log)
        log.write_header(spec, job_list, keys)
        if trace:
            from repro.obs.trace import SpanSink

            trace_sink = SpanSink(Path(run_dir) / "trace.jsonl")
    try:
        return run_campaign(
            spec,
            jobs=jobs,
            cache=cache,
            timeout=timeout,
            on_outcome=log.record if log is not None else None,
            keys=keys,
            batch=batch,
            trace_sink=trace_sink,
            warm_corpus=warm_corpus,
        )
    finally:
        if trace_sink is not None:
            trace_sink.close()


def resume(
    run_dir: str | Path,
    jobs: int = 1,
    cache: ResultCache | str | Path | None = DEFAULT_CACHE_DIR,
    timeout: float | None = None,
    batch: bool = False,
    warm_corpus: str | None = None,
) -> CampaignResult:
    """Resume an interrupted campaign from its run directory.

    Re-expands the spec recorded in the JSONL header and re-runs the
    campaign against the same cache: jobs that completed before the
    interruption replay from the store for free (their results are
    byte-identical by construction), the rest execute normally, and the
    log is appended to — never truncated.
    """
    state = load_run(run_dir)
    try:
        spec = state.spec
    except (KeyError, TypeError) as exc:
        raise RunnerError(
            f"run log in {run_dir} has no usable campaign spec: {exc}"
        ) from exc
    return run(
        spec,
        jobs=jobs,
        cache=cache,
        run_dir=run_dir,
        timeout=timeout,
        append_log=True,
        batch=batch,
        warm_corpus=warm_corpus,
    )
