"""Pluggable store backends for the content-addressed result cache.

The cache key (:func:`repro.runner.cache.job_key`) names a result by
*what it is*; this module decides *where it lives*.  Every backend
implements the same four-method protocol (:class:`CacheBackend`:
``get`` / ``put`` / ``contains`` / ``scan``), so the campaign runner,
the sizing service and the benchmarks are indifferent to the storage
substrate:

* :class:`DiskBackend` — the original per-process layout, one JSON
  file per key under ``<root>/<key[:2]>/``.  Atomic writes; a corrupt
  or truncated entry is quarantined (renamed to ``*.bad``) and counts
  as a miss instead of raising into the caller.
* :class:`SqliteBackend` — one SQLite database in WAL mode, safe for
  many *processes* on one machine or a shared volume.  This is the
  fleet backend: every ``serve`` replica pointed at the same file
  shares one result store.
* :class:`TieredBackend` — read-through tiering: a fast local L1
  (typically :class:`DiskBackend`) in front of a shared L2 (typically
  :class:`SqliteBackend`).  Reads probe L1 first and promote L2 hits;
  writes go through to both, so a result computed by one replica is a
  local hit everywhere after first use.

Backends are selected on the CLI with ``--cache-backend`` using a
small spec grammar parsed by :func:`open_backend`::

    disk:PATH                       one directory, one process family
    sqlite:PATH.db                  shared store (WAL, multi-process)
    tiered:L1_DIR,SHARED_SPEC       local L1 in front of a shared L2
    PATH                            bare path = disk:PATH

"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import threading
import time
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

from repro.errors import RunnerError
from repro.faults.breaker import CircuitBreaker
from repro.faults.injector import probe
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.obs.metrics import get_registry

__all__ = [
    "CacheBackend",
    "DiskBackend",
    "SqliteBackend",
    "TieredBackend",
    "open_backend",
]

#: Per-tier probe outcomes for tiered caches, in the process-global
#: registry (see ``repro_cache_probe_total`` in
#: :mod:`repro.runner.cache` for the per-backend totals).
_TIER_PROBES = get_registry().counter(
    "repro_cache_tier_probe_total",
    "Tiered-cache probes by tier and outcome; a shared-tier hit is "
    "promoted into the local tier.",
    ("tier", "result"),
)


@runtime_checkable
class CacheBackend(Protocol):
    """The storage contract behind :class:`~repro.runner.cache.ResultCache`.

    Keys are content-addressed hex digests; payloads are JSON-ready
    dicts.  Implementations must be safe for concurrent readers and
    writers of the *same* key (last intact write wins) and must treat
    any unreadable entry as a miss, never an exception.
    """

    def get(self, key: str) -> dict | None:
        """The stored payload for ``key``, or None on any kind of miss."""
        ...

    def put(self, key: str, payload: dict) -> None:
        """Durably store ``payload`` under ``key`` (atomic per entry)."""
        ...

    def contains(self, key: str) -> bool:
        """True when ``key`` has a readable entry."""
        ...

    def scan(self) -> Iterator[str]:
        """Yield every stored key (order unspecified)."""
        ...

    def describe(self) -> str:
        """Human-readable location, e.g. ``disk:.repro-cache``."""
        ...


class DiskBackend:
    """One JSON file per entry under ``<root>/<key[:2]>/<key>.json``.

    Writes are atomic (temp file + rename), so a process killed
    mid-write never leaves a truncated entry and concurrent writers of
    one key settle on an intact copy.  A corrupt entry found by
    :meth:`get` is quarantined — renamed to ``<key>.json.bad`` — so the
    miss is permanent and cheap instead of re-parsed on every probe,
    and the evidence survives for inspection.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def path(self, key: str) -> Path:
        """The entry file backing ``key`` (which may not exist)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Read one entry; corrupt/truncated files are quarantined misses.

        The ``cache.get`` fault probe fires *before* the store is
        touched, so an injected I/O error propagates to the caller
        (exercising the tiered retry/breaker path) instead of being
        absorbed by the corrupt-entry handling below.
        """
        probe("cache.get")
        path = self.path(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except OSError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        if not isinstance(entry, dict):
            self._quarantine(path)
            return None
        return entry

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a corrupt entry aside (best-effort) so it stays a miss."""
        try:
            os.replace(path, path.with_suffix(path.suffix + ".bad"))
        except OSError:
            pass  # someone else quarantined (or removed) it first

    def put(self, key: str, payload: dict) -> None:
        """Atomically write one entry (temp file + rename)."""
        probe("cache.put")
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def contains(self, key: str) -> bool:
        """True when the entry parses (corrupt files quarantine to False)."""
        return self.get(key) is not None

    def scan(self) -> Iterator[str]:
        """Every key with an entry file on disk."""
        if not self.root.is_dir():
            return
        for path in self.root.glob("*/*.json"):
            yield path.stem

    def describe(self) -> str:
        """``disk:<root>``."""
        return f"disk:{self.root}"

    def __len__(self) -> int:
        return sum(1 for _ in self.scan())


class SqliteBackend:
    """All entries in one SQLite database (WAL mode) — the shared store.

    WAL journaling plus a busy timeout makes the file safe for many
    concurrent processes: N ``serve`` replicas (or campaign workers) on
    one machine or one shared volume read and write a single result
    store.  Connections are per-thread (SQLite objects must not cross
    threads) and writes upsert, so concurrent writers of one key settle
    on the last intact payload.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS entries (
            key TEXT PRIMARY KEY,
            payload TEXT NOT NULL,
            stored_at REAL NOT NULL
        )
    """

    def __init__(self, path: str | Path, timeout: float = 30.0):
        self.path = Path(path)
        self.timeout = timeout
        self._local = threading.local()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as conn:
            conn.execute(self._SCHEMA)

    def _connect(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path, timeout=self.timeout)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            self._local.conn = conn
        return conn

    def get(self, key: str) -> dict | None:
        """One entry's payload; an unparseable row is deleted (a miss)."""
        probe("cache.get")
        conn = self._connect()
        row = conn.execute(
            "SELECT payload FROM entries WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        try:
            entry = json.loads(row[0])
        except json.JSONDecodeError:
            with conn:  # quarantine-equivalent: drop the torn row
                conn.execute("DELETE FROM entries WHERE key = ?", (key,))
            return None
        return entry if isinstance(entry, dict) else None

    def put(self, key: str, payload: dict) -> None:
        """Upsert one entry inside a transaction."""
        probe("cache.put")
        conn = self._connect()
        with conn:
            conn.execute(
                "INSERT INTO entries (key, payload, stored_at) "
                "VALUES (?, ?, ?) ON CONFLICT(key) DO UPDATE SET "
                "payload = excluded.payload, stored_at = excluded.stored_at",
                (key, json.dumps(payload), time.time()),
            )

    def contains(self, key: str) -> bool:
        """True when a row exists for ``key``."""
        conn = self._connect()
        row = conn.execute(
            "SELECT 1 FROM entries WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def scan(self) -> Iterator[str]:
        """Every stored key."""
        conn = self._connect()
        for (key,) in conn.execute("SELECT key FROM entries"):
            yield key

    def describe(self) -> str:
        """``sqlite:<path>``."""
        return f"sqlite:{self.path}"

    def __len__(self) -> int:
        conn = self._connect()
        return conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]


#: Errors the shared tier treats as transient storage failures: worth
#: a backoff retry, and breaker strikes when retries are spent.
_STORAGE_ERRORS = (OSError, sqlite3.Error)

#: Default retry for shared-tier calls — short and bounded, because
#: the degraded path (L1-only) is always available as a fallback.
_SHARED_RETRY = RetryPolicy(
    attempts=3, base_delay=0.02, max_delay=0.5, retryable=_STORAGE_ERRORS,
)


class TieredBackend:
    """Read-through tiering: local L1 in front of a shared L2.

    ``get`` probes L1 first; an L2 hit is *promoted* (written into L1)
    so the next probe is local.  ``put`` writes through to both tiers,
    which is what makes one replica's fresh result a fleet-wide hit.
    The shared L2 is authoritative: ``scan``/``len`` enumerate it, and
    an entry present only in L1 (e.g. L2 was wiped) still serves reads.

    The shared tier is where failures actually happen in a fleet (a
    network volume, a contended SQLite file), so its calls run under a
    retry policy and a :class:`~repro.faults.breaker.CircuitBreaker`:
    transient errors are retried with backoff; persistent ones open
    the breaker and the cache *degrades to L1-only* — misses recompute
    instead of erroring, writes land locally, and a half-open timer
    re-probes the shared store until it recovers.  Correctness is
    unaffected because the cache is content-addressed: a lost shared
    write is just a future recompute, never a wrong answer.
    """

    def __init__(
        self,
        local: CacheBackend,
        shared: CacheBackend,
        breaker: CircuitBreaker | None = None,
        retry: RetryPolicy = _SHARED_RETRY,
    ):
        self.local = local
        self.shared = shared
        self.retry = retry
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            "cache.shared", failure_threshold=3, reset_timeout=5.0,
        )

    def _strike(self, exc: BaseException, attempt: int) -> None:
        self.breaker.record_failure()

    def _shared_call(self, site: str, fn) -> tuple[bool, object]:
        """Run one shared-tier op under breaker + retry.

        Returns ``(ok, result)``; ``ok`` is False when the breaker is
        open (degraded, the op never ran) or retries were exhausted.
        """
        if not self.breaker.allow():
            _TIER_PROBES.inc(tier="shared", result="degraded")
            return False, None
        try:
            result = call_with_retry(fn, self.retry, site, on_retry=self._strike)
        except _STORAGE_ERRORS:
            _TIER_PROBES.inc(tier="shared", result="error")
            return False, None
        self.breaker.record_success()
        return True, result

    def _local_get(self, key: str) -> dict | None:
        try:
            return self.local.get(key)
        except _STORAGE_ERRORS:
            return None  # L1 is best-effort; a broken read is a miss

    def _local_put(self, key: str, payload: dict) -> None:
        try:
            self.local.put(key, payload)
        except _STORAGE_ERRORS:
            pass  # losing an L1 copy costs a future shared-tier read

    def get(self, key: str) -> dict | None:
        """L1 probe, then L2 with promotion into L1 on a hit."""
        entry = self._local_get(key)
        if entry is not None:
            _TIER_PROBES.inc(tier="local", result="hit")
            return entry
        _TIER_PROBES.inc(tier="local", result="miss")
        ok, entry = self._shared_call("cache.get", lambda: self.shared.get(key))
        if not ok:
            return None
        if entry is not None:
            _TIER_PROBES.inc(tier="shared", result="hit")
            self._local_put(key, entry)
        else:
            _TIER_PROBES.inc(tier="shared", result="miss")
        return entry

    def put(self, key: str, payload: dict) -> None:
        """Write through: shared store first (authoritative), then L1.

        With the breaker open the shared write is skipped (the local
        copy still serves this replica; other replicas recompute).
        """
        self._shared_call("cache.put", lambda: self.shared.put(key, payload))
        self._local_put(key, payload)

    def contains(self, key: str) -> bool:
        """True when either tier holds the entry."""
        try:
            if self.local.contains(key):
                return True
        except _STORAGE_ERRORS:
            pass
        ok, found = self._shared_call(
            "cache.get", lambda: self.shared.contains(key)
        )
        return bool(ok and found)

    def scan(self) -> Iterator[str]:
        """Keys of the authoritative shared tier."""
        return self.shared.scan()

    def describe(self) -> str:
        """``tiered:<l1>,<l2>``."""
        return f"tiered:{self.local.describe()},{self.shared.describe()}"

    def __len__(self) -> int:
        return len(self.shared)  # type: ignore[arg-type]


def open_backend(spec: str | Path) -> CacheBackend:
    """Build a backend from a ``--cache-backend`` spec string.

    Grammar: ``disk:PATH``, ``sqlite:PATH``, ``tiered:L1_DIR,SHARED``
    (where ``SHARED`` is itself a ``disk:``/``sqlite:`` spec or a bare
    ``.db`` path), or a bare path, which means ``disk:PATH``.  Raises
    :class:`~repro.errors.RunnerError` on an unknown scheme so a typo
    like ``sqlte:`` is a usage error, not a directory named ``sqlte:``.
    """
    if isinstance(spec, Path):
        return DiskBackend(spec)
    text = spec.strip()
    if not text:
        raise RunnerError("empty cache backend spec")
    scheme, sep, rest = text.partition(":")
    if not sep:
        return DiskBackend(text)
    if scheme == "disk":
        return DiskBackend(rest)
    if scheme == "sqlite":
        return SqliteBackend(rest)
    if scheme == "tiered":
        local_part, sep, shared_part = rest.partition(",")
        if not sep or not local_part or not shared_part:
            raise RunnerError(
                f"tiered backend spec must be 'tiered:L1_DIR,SHARED_SPEC', "
                f"got {text!r}"
            )
        if ":" not in shared_part and shared_part.endswith(".db"):
            shared: CacheBackend = SqliteBackend(shared_part)
        else:
            shared = open_backend(shared_part)
        return TieredBackend(DiskBackend(local_part), shared)
    # Windows-style paths ("C:\cache") and unknown schemes both land
    # here; a single-letter "scheme" is a drive, everything else a typo.
    if len(scheme) == 1:
        return DiskBackend(text)
    raise RunnerError(
        f"unknown cache backend scheme {scheme!r} in {text!r} "
        f"(expected disk:, sqlite:, or tiered:)"
    )
