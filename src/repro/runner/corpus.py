"""Warm-start corpus: nearest-neighbor retrieval over the result cache.

The content-addressed cache only pays off on *exact* repeats; realistic
traffic is dominated by near-repeats — the same circuit re-sized at a
drifted delay target.  This module turns the existing cache (any
backend: ``disk:`` / ``sqlite:`` / ``tiered:``) into a retrieval
corpus: every executed sizing/W-phase job stores a small *warm record*
next to its payload (:meth:`repro.runner.cache.ResultCache.put`), and
on a cache miss the nearest prior record by
:func:`repro.sizing.fingerprint.fingerprint_distance` seeds the solve.

Exactness contract: the corpus only *suggests*; the solver-side hooks
(:func:`repro.sizing.tilos.tilos_size` trajectory replay,
:func:`repro.sizing.wphase.w_phase` dominated-budget seeding) each
carry their own divergence monitor and fall back to a cold start on
any mismatch, so final sizes are bitwise-identical to cold-start runs
whether or not a donor was found.  A record that fails validation
(version, checksum, shape) is quarantined the way PR 6 treats corrupt
cache entries — stripped from the entry so it cannot poison later
probes — while the payload it rode with stays intact.

Telemetry: every probed job reports ``warm_{hit,seeded,fallback}``
(JobOutcome / queue records), and :func:`record_warm_outcome` folds
the per-job outcome into the process-global
``repro_warmstart_total{result}`` counter on the parent side (worker
registries never ship back; the obs dict does).
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.obs.metrics import get_registry
from repro.runner.cache import ResultCache
from repro.sizing.fingerprint import (
    FINGERPRINT_VERSION,
    dag_digest,
    dag_features,
    fingerprint_distance,
)
from repro.sizing.serialize import canonical_json

__all__ = [
    "WARM_RECORD_VERSION",
    "WarmCorpus",
    "WarmSession",
    "record_checksum",
    "record_warm_outcome",
    "tech_digest",
    "validate_record",
    "verify_record",
    "warmstart_counts",
]

#: Version of the warm-record layout; rows recorded under any other
#: version are quarantined rather than interpreted.
WARM_RECORD_VERSION = 1

#: Job kinds that record and consume warm records.
_WARM_KINDS = ("sizing", "wphase")

#: How many ranked candidates a probe will fetch-and-verify before
#: giving up (each failed verification quarantines that record).
_PROBE_ATTEMPTS = 4

#: Trajectories longer than this are not worth shipping through the
#: pool or storing per entry; such jobs simply stay cold.
_MAX_RECORDED_BUMPS = 100_000

#: Per-job warm-start outcomes, in the process-global registry (like
#: the cache-probe counter: the corpus outlives any one service
#: instance, and ``/v1/metrics`` concatenates this registry in).
_WARMSTART = get_registry().counter(
    "repro_warmstart_total",
    "Warm-start outcomes per executed job (plus quarantined records).",
    ("result",),
)

#: Per-process corpus instances keyed by backend spec, so pool workers
#: and service drain threads amortize the index across jobs.
_RESOLVED: dict[str, "WarmCorpus"] = {}


def tech_digest(tech) -> str:
    """Hex digest of a technology parameter set (identity in records)."""
    canonical = canonical_json(asdict(tech))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def record_checksum(record: dict) -> str:
    """Checksum of a warm record (over everything but the checksum)."""
    body = {k: v for k, v in record.items() if k != "checksum"}
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()[:16]


def validate_record(record: object) -> str | None:
    """Cheap structural validation (no checksum); None when OK.

    Runs once per record at index time — the full :func:`verify_record`
    pass (checksum + data shapes) is deferred to selection.
    """
    if not isinstance(record, dict):
        return "not a mapping"
    if record.get("version") != WARM_RECORD_VERSION:
        return f"unsupported version {record.get('version')!r}"
    if record.get("fingerprint") != FINGERPRINT_VERSION:
        return f"unsupported fingerprint {record.get('fingerprint')!r}"
    if record.get("kind") not in _WARM_KINDS:
        return f"unknown kind {record.get('kind')!r}"
    if not isinstance(record.get("dag_sha"), str):
        return "missing dag_sha"
    if not isinstance(record.get("features"), dict):
        return "missing features"
    if not isinstance(record.get("checksum"), str):
        return "missing checksum"
    return None


def _is_numbers(value: object) -> bool:
    return isinstance(value, list) and all(
        isinstance(v, (int, float)) and not isinstance(v, bool) for v in value
    )


def verify_record(record: object) -> str | None:
    """Full validation of a fetched record; None when usable."""
    reason = validate_record(record)
    if reason is not None:
        return reason
    assert isinstance(record, dict)
    if record_checksum(record) != record.get("checksum"):
        return "checksum mismatch"
    data = record.get("data")
    if not isinstance(data, dict):
        return "missing data"
    if record["kind"] == "sizing":
        bumps, trace = data.get("bumps"), data.get("trace")
        if not isinstance(bumps, list) or not all(
            isinstance(step, list)
            and all(isinstance(v, int) and not isinstance(v, bool) for v in step)
            for step in bumps
        ):
            return "malformed bump trajectory"
        if not _is_numbers(trace) or len(trace) != len(bumps) + 1:
            return "malformed delay trace"
    else:  # wphase
        x, budgets = data.get("x"), data.get("budgets")
        if not _is_numbers(x) or not _is_numbers(budgets):
            return "malformed sizes/budgets"
        if len(x) != len(budgets):
            return "sizes/budgets length mismatch"
    return None


def _light_view(record: dict) -> dict:
    """The in-memory index row: identity + features, no trajectory."""
    return {
        key: record.get(key)
        for key in (
            "kind", "mode", "tech", "options", "delay_spec", "target",
            "dag_sha", "netlist_sha256", "features",
        )
    }


class WarmCorpus:
    """Retrieval index over the warm records of one result cache.

    The index is incremental: each :meth:`probe` rescans the backend's
    key set (cheap — keys only) and reads entries just once, so a
    long-lived service replica picks up records written by its peers
    without rebuilding from scratch.  Ranking sorts by
    ``(distance, key)``, making retrieval deterministic regardless of
    the order records were written — property-tested.
    """

    def __init__(self, store: ResultCache, spec: str | None = None):
        self.store = store
        #: Backend spec this corpus was resolved from, if any — what a
        #: parent process hands to pool workers (the corpus itself holds
        #: live connections and must not cross a pickle boundary).
        self.spec = spec
        self._index: dict[str, dict] = {}
        self._seen: set[str] = set()
        self._pending_quarantined = 0

    @classmethod
    def resolve(cls, source) -> "WarmCorpus | None":
        """Coerce a corpus reference into a live :class:`WarmCorpus`.

        Accepts None (no corpus), an existing corpus, a
        :class:`ResultCache`, or a backend spec string / path (cached
        per process so repeated jobs share one index).
        """
        if source is None:
            return None
        if isinstance(source, WarmCorpus):
            return source
        if isinstance(source, ResultCache):
            return cls(source)
        spec = str(source)
        corpus = _RESOLVED.get(spec)
        if corpus is None:
            corpus = _RESOLVED[spec] = cls(ResultCache(spec), spec=spec)
        return corpus

    def __len__(self) -> int:
        return len(self._index)

    def refresh(self) -> None:
        """Fold newly stored warm records into the index."""
        keys = set(self.store.scan())
        for stale in set(self._index) - keys:
            del self._index[stale]
        self._seen &= keys
        for key in sorted(keys - self._seen):
            self._seen.add(key)
            record = self.store.get_warm(key)
            if record is None:
                continue
            if validate_record(record) is not None:
                self.store.strip_warm(key)
                self._pending_quarantined += 1
                continue
            self._index[key] = _light_view(record)

    def probe(self, query: dict) -> tuple[dict | None, dict]:
        """Nearest verified record for ``query``: ``(record, info)``.

        ``info`` always carries ``scanned`` / ``quarantined`` counts
        plus the winning ``donor`` key and ``distance`` on a hit.
        Candidates that fail :func:`verify_record` at fetch time are
        quarantined in place and the next-nearest is tried.
        """
        info: dict = {
            "scanned": 0,
            "quarantined": 0,
            "donor": None,
            "distance": None,
        }
        self.refresh()
        info["quarantined"] += self._pending_quarantined
        self._pending_quarantined = 0
        kind = query.get("kind")
        ranked = sorted(
            (
                (fingerprint_distance(query, light), key)
                for key, light in self._index.items()
                if light.get("kind") == kind
            ),
            key=lambda pair: (pair[0], pair[1]),
        )
        info["scanned"] = len(ranked)
        for distance, key in ranked[:_PROBE_ATTEMPTS]:
            record = self.store.get_warm(key)
            reason = "record vanished" if record is None else verify_record(record)
            if reason is None:
                info["donor"] = key
                info["distance"] = distance
                return record, info
            self.store.strip_warm(key)
            self._index.pop(key, None)
            info["quarantined"] += 1
        return None, info


class WarmSession:
    """One job's warm-start context: probe, seed telemetry, record.

    Created worker-side by ``pool_entry`` when a corpus spec rides
    along; the executors call ``probe_*`` before solving, ``note_seed``
    after, and ``stage_*`` to attach the freshly computed trajectory.
    :meth:`as_obs` is the plain-dict summary shipped back through the
    result tuple — the parent folds it into metrics
    (:func:`record_warm_outcome`) and stores the staged record with
    the cache entry.
    """

    def __init__(self, corpus: WarmCorpus | None):
        self.corpus = corpus
        self.telemetry: dict = {"hit": False, "seeded": False, "fallback": False}
        self.record: dict | None = None
        self._query: dict | None = None

    @classmethod
    def open(cls, source) -> "WarmSession | None":
        """A session for ``source`` (spec/corpus), or None when off.

        An unreachable or malformed corpus degrades to a cold run with
        the error noted in telemetry — never a failed job.
        """
        if source is None:
            return None
        try:
            return cls(WarmCorpus.resolve(source))
        except Exception as exc:  # noqa: BLE001 — warm start is best-effort
            session = cls(None)
            session.telemetry["error"] = f"{type(exc).__name__}: {exc}"
            return session

    # -- query construction -------------------------------------------

    def _build_query(
        self, kind: str, *, dag, tech, mode: str, options: dict,
        delay_spec: float | None, target: float | None,
    ) -> dict:
        query = {
            "version": WARM_RECORD_VERSION,
            "fingerprint": FINGERPRINT_VERSION,
            "kind": kind,
            "mode": mode,
            "tech": tech_digest(tech),
            "options": options,
            "delay_spec": None if delay_spec is None else float(delay_spec),
            "target": None if target is None else float(target),
            "netlist_sha256": None,
            "dag_sha": dag_digest(dag),
            "features": dag_features(dag),
        }
        self._query = query
        return query

    def _probe(self, query: dict) -> dict | None:
        if self.corpus is None:
            return None
        try:
            record, info = self.corpus.probe(query)
        except Exception as exc:  # noqa: BLE001 — warm start is best-effort
            self.telemetry["error"] = f"{type(exc).__name__}: {exc}"
            return None
        self.telemetry.update(info)
        self.telemetry["hit"] = record is not None
        return record

    def probe_sizing(
        self, *, dag, tech, mode: str, options, delay_spec: float | None,
        target: float,
    ) -> dict | None:
        """Nearest sizing record for this instance (or None)."""
        query = self._build_query(
            "sizing", dag=dag, tech=tech, mode=mode,
            options=asdict(options), delay_spec=delay_spec, target=target,
        )
        return self._probe(query)

    def probe_wphase(
        self, *, dag, tech, mode: str, engine: str, delay_spec: float,
        budgets,
    ) -> dict | None:
        """Donor seed for a W-phase instance: ``{"x", "budgets",
        "dag_sha"}`` arrays ready for :func:`repro.sizing.wphase.w_phase`,
        or None."""
        query = self._build_query(
            "wphase", dag=dag, tech=tech, mode=mode,
            options={"engine": engine}, delay_spec=delay_spec, target=None,
        )
        record = self._probe(query)
        if record is None:
            return None
        data = record["data"]
        return {
            "x": np.asarray(data["x"], dtype=float),
            "budgets": np.asarray(data["budgets"], dtype=float),
            "dag_sha": record["dag_sha"],
        }

    # -- post-solve bookkeeping ----------------------------------------

    def note_seed(self, status: str | None) -> None:
        """Record how the seeding attempt went (after a probe hit)."""
        if not self.telemetry.get("hit"):
            return
        if status == "seeded":
            self.telemetry["seeded"] = True
        else:
            self.telemetry["fallback"] = True
            if status:
                self.telemetry["fallback_reason"] = status

    def _stage(self, data: dict) -> None:
        if self._query is None:
            return
        record = dict(self._query)
        record["data"] = data
        record["checksum"] = record_checksum(record)
        self.record = record

    def stage_sizing(self, seed, d_min: float) -> None:
        """Attach the job's own TILOS trajectory as a corpus record."""
        if seed.bumps is None or len(seed.bumps) > _MAX_RECORDED_BUMPS:
            return
        self._stage({
            "d_min": float(d_min),
            "bumps": [[int(v) for v in step] for step in seed.bumps],
            "trace": [float(cp) for cp in seed.trace],
        })

    def stage_wphase(self, result, budgets) -> None:
        """Attach the job's own W-phase solution as a corpus record."""
        self._stage({
            "x": [float(v) for v in result.x],
            "budgets": [float(b) for b in budgets],
        })

    def as_obs(self) -> dict:
        """Plain-dict summary for the result tuple's ``obs`` blob."""
        out = dict(self.telemetry)
        if self.record is not None:
            out["blob"] = self.record
        return out


def record_warm_outcome(warm: dict | None) -> None:
    """Fold one job's warm telemetry into ``repro_warmstart_total``.

    Called on the *parent* side (campaign driver / service ``_finish``)
    with the ``obs["warm"]`` dict a worker shipped back — worker-side
    counter increments would be lost with process pools and
    double-counted with thread pools, so this is the single place the
    metric moves.
    """
    if not warm:
        return
    quarantined = int(warm.get("quarantined") or 0)
    if quarantined:
        _WARMSTART.inc(quarantined, result="quarantined")
    if warm.get("seeded"):
        _WARMSTART.inc(result="seeded")
    elif warm.get("hit"):
        _WARMSTART.inc(result="fallback")
    else:
        _WARMSTART.inc(result="miss")


def warmstart_counts() -> dict[str, int]:
    """Per-result totals of ``repro_warmstart_total`` (for ``/v1/stats``).

    Reads the identical registry cells the Prometheus exposition
    serializes, so the two views can never disagree.
    """
    return {
        labels["result"]: int(value)
        for labels, value in _WARMSTART.items()
    }
