"""Human-readable (and JSON) views of campaign runs.

``format_campaign`` renders a finished :class:`CampaignResult` as the
usual monospace table; ``format_status``/``status_dict`` summarize a
run directory's JSONL for the ``campaign status`` CLI — including a
campaign still in flight (pending jobs show as such).
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.runner.executor import CampaignResult
from repro.runner.progress import RunState, job_summary

__all__ = [
    "format_campaign",
    "format_status",
    "status_dict",
    "campaign_to_dict",
]


def _fmt(value, spec: str = ".2f", missing: str = "--") -> str:
    if value is None:
        return missing
    return format(value, spec)


def format_campaign(result: CampaignResult) -> str:
    """One row per job: status, provenance, headline numbers."""
    rows = []
    for outcome in result.outcomes:
        summary = job_summary(outcome)
        if outcome.cached:
            provenance = "hit"
        elif outcome.batch_size:
            provenance = f"batch:{outcome.batch_size}"
        else:
            provenance = "run"
        rows.append([
            outcome.job.label(),
            outcome.status,
            provenance,
            f"{outcome.wall_seconds:.2f}s",
            _fmt(summary.get("area"), ".1f"),
            _fmt(summary.get("saving_percent"), ".1f"),
            _fmt(summary.get("iterations"), "d"),
        ])
    counts = ", ".join(
        f"{status}: {n}" for status, n in sorted(result.counts().items())
    )
    table = format_table(
        ["job", "status", "cache", "wall", "area", "saving%", "iters"],
        rows,
        title=f"campaign {result.name} — {counts}, "
              f"{result.n_cached}/{len(result.outcomes)} cached",
    )
    failures = [
        f"{o.job.label()}: {o.error.splitlines()[0]}"
        for o in result.outcomes
        if o.error
    ]
    if failures:
        table += "\n\nfailures:\n" + "\n".join(f"  {f}" for f in failures)
    return table


def campaign_to_dict(result: CampaignResult) -> dict:
    """JSON-ready digest of a finished campaign (no size vectors)."""
    return {
        "name": result.name,
        "n_jobs": len(result.outcomes),
        "n_cached": result.n_cached,
        "counts": result.counts(),
        "jobs": [
            {
                "index": o.index,
                "label": o.job.label(),
                "status": o.status,
                "cached": o.cached,
                "wall_seconds": o.wall_seconds,
                "batch_size": o.batch_size,
                "summary": job_summary(o),
                "error": o.error,
            }
            for o in result.outcomes
        ],
    }


def status_dict(state: RunState) -> dict:
    """JSON-ready status of a run directory (possibly mid-flight)."""
    counts = state.counts()
    return {
        "name": state.header.get("name"),
        "n_jobs": state.n_jobs,
        "counts": counts,
        "done": state.n_jobs - counts.get("pending", 0),
        "cached": sum(
            1 for record in state.records.values() if record.get("cached")
        ),
        "wall_seconds": sum(
            record.get("wall_seconds", 0.0)
            for record in state.records.values()
        ),
        "jobs": [
            state.records.get(index)
            or {"index": index, "status": "pending",
                "label": state.header["labels"][index]}
            for index in range(state.n_jobs)
        ],
    }


def format_status(state: RunState) -> str:
    """Monospace status table for one run directory."""
    info = status_dict(state)
    rows = []
    for record in info["jobs"]:
        summary = record.get("summary") or {}
        rows.append([
            record.get("label", str(record["index"])),
            record["status"],
            "hit" if record.get("cached") else "--",
            _fmt(record.get("wall_seconds"), ".2f"),
            _fmt(summary.get("area"), ".1f"),
            _fmt(summary.get("saving_percent"), ".1f"),
        ])
    counts = ", ".join(f"{k}: {n}" for k, n in sorted(info["counts"].items()))
    return format_table(
        ["job", "status", "cache", "wall s", "area", "saving%"],
        rows,
        title=f"campaign {info['name']} — {info['done']}/{info['n_jobs']} "
              f"done ({counts})",
    )
