"""Circuit DAG construction for gate- and transistor-level sizing."""

from repro.circuit.netlist import Circuit
from repro.dag.circuit_dag import DagVertex, SizingDag
from repro.dag.gate_mode import build_gate_dag
from repro.dag.transform import TransformedDag, transform_dag
from repro.dag.transistor_mode import build_transistor_dag
from repro.delay.monotonic import SizeLaw
from repro.errors import NetlistError
from repro.tech.parameters import Technology

__all__ = [
    "DagVertex",
    "SizingDag",
    "TransformedDag",
    "build_gate_dag",
    "build_sizing_dag",
    "build_transistor_dag",
    "transform_dag",
]


def build_sizing_dag(
    circuit: Circuit,
    tech: Technology,
    mode: str = "gate",
    law: SizeLaw | None = None,
    size_wires: bool = False,
) -> SizingDag:
    """Build the circuit DAG for the requested sizing granularity.

    ``mode`` is ``"gate"`` (one equivalent-inverter vertex per gate — the
    relaxed problem evaluated in the paper's section 3) or
    ``"transistor"`` (one vertex per device, the general problem).
    ``size_wires=True`` (gate mode only) adds one width variable per net
    — the simultaneous wire-sizing extension of paper section 2.1.
    """
    if mode == "gate":
        return build_gate_dag(circuit, tech, law=law, size_wires=size_wires)
    if mode == "transistor":
        if size_wires:
            raise NetlistError(
                "wire sizing is implemented for gate mode; map the "
                "circuit and size wires at the gate level first"
            )
        return build_transistor_dag(circuit, tech, law=law)
    raise NetlistError(f"unknown sizing mode {mode!r}")
