"""Gate-sizing DAG builder (the paper's relaxed problem).

Each gate is modelled as an equivalent inverter with one size variable.
The vertex delay is

    delay(i) = intrinsic_i + (r_eq_i / x_i) *
               (sum over driven pins  cin_pin * x_fanout
                + c_wire * branches + c_load[if PO])

which is the simple monotonic form of paper equation (4) with
``a_ij = r_eq_i * cin_j`` (summed over pins of gate j driven by gate i)
and ``b_i`` collecting the constant wire and output loads.

With ``size_wires=True`` the builder also realizes the paper's section
2.1 extension: every driven net becomes an additional vertex whose size
is the wire width.  A wire of width ``s`` has resistance ``r_wire / s``
and a capacitance whose area component scales with ``s`` (the fringe
component does not), so the wire delay is again a simple monotonic
functional and the whole MINFLOTRANSIT machinery applies unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.netlist import Circuit
from repro.dag.circuit_dag import DagVertex, SizingDag
from repro.delay.model import VertexDelayModel
from repro.delay.monotonic import SizeLaw
from repro.errors import NetlistError
from repro.tech.parameters import Technology

__all__ = ["build_gate_dag"]


def build_gate_dag(
    circuit: Circuit,
    tech: Technology,
    law: SizeLaw | None = None,
    size_wires: bool = False,
) -> SizingDag:
    """Build the gate-mode :class:`SizingDag` for ``circuit``.

    ``size_wires=True`` adds one wire vertex per driven net and sizes
    gates and wires simultaneously (paper section 2.1).
    """
    circuit.freeze()
    if circuit.n_gates == 0:
        raise NetlistError(f"circuit {circuit.name!r} has no gates")
    library = circuit.library

    gates = circuit.topological_gates()
    index = {gate.name: i for i, gate in enumerate(gates)}
    eq = [library.equivalent_inverter(gate.cell, tech) for gate in gates]
    outputs = set(circuit.outputs)

    vertices = [
        DagVertex(index=i, label=gate.name, gate=gate.name, kind="gate", block=i)
        for i, gate in enumerate(gates)
    ]
    # Wire vertices (one per gate-driven net with any load).
    wire_index: dict[str, int] = {}
    if size_wires:
        for i, gate in enumerate(gates):
            net = gate.output
            if circuit.fanout_count(net) == 0:
                continue
            w = len(vertices)
            wire_index[net] = w
            vertices.append(
                DagVertex(
                    index=w,
                    label=f"wire:{net}",
                    gate=gate.name,
                    kind="wire",
                    block=w,
                )
            )

    n = len(vertices)
    edges: list[tuple[int, int]] = []
    rows: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    b = np.zeros(n)
    intrinsic = np.zeros(n)
    lower = np.full(n, tech.min_size)
    upper = np.full(n, tech.max_size)
    area_weight = np.ones(n)
    po_vertices: list[int] = []

    for i, gate in enumerate(gates):
        intrinsic[i] = eq[i].intrinsic
        area_weight[i] = eq[i].area
        drive = eq[i].r_eq
        net = gate.output
        loads = circuit.loads_of(net)
        branches = len(loads) + (1 if net in outputs else 0)
        wire_cap = tech.c_wire * branches
        is_po = net in outputs

        for load_gate, _pin in loads:
            j = index[load_gate.name]
            # Elmore: the driver discharges the receiver gate caps too.
            rows[i].append((j, drive * eq[j].cin))
        if is_po:
            b[i] += drive * tech.c_load
        b[i] += eq[i].internal_load_delay

        if size_wires and net in wire_index:
            w = wire_index[net]
            scaling = (1.0 - tech.wire_fringe_fraction) * wire_cap
            fringe = tech.wire_fringe_fraction * wire_cap
            # Driver: wire area cap scales with the wire size.
            rows[i].append((w, drive * scaling))
            b[i] += drive * fringe
            edges.append((i, w))
            # Wire vertex: drives the receivers through r_wire / s; half
            # of its own capacitance is charged through itself.
            intrinsic[w] = 0.5 * tech.r_wire * scaling
            b[w] += 0.5 * tech.r_wire * fringe
            for load_gate, _pin in loads:
                j = index[load_gate.name]
                rows[w].append((j, tech.r_wire * eq[j].cin))
                edges.append((w, j))
            if is_po:
                b[w] += tech.r_wire * tech.c_load
                po_vertices.append(w)
            lower[w] = tech.wire_min_size
            upper[w] = tech.wire_max_size
            area_weight[w] = 1.0
        else:
            b[i] += drive * wire_cap
            for load_gate, _pin in loads:
                edges.append((i, index[load_gate.name]))
            if is_po:
                po_vertices.append(i)

    model = VertexDelayModel.from_rows(rows, b, intrinsic, law=law)
    return SizingDag(
        name=circuit.name,
        mode="gate",
        vertices=vertices,
        edges=edges,
        model=model,
        po_vertices=po_vertices,
        lower=lower,
        upper=upper,
        area_weight=area_weight,
    )
