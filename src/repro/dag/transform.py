"""Dummy-vertex transform of the circuit DAG (paper figure 5).

The D-phase needs, for every vertex ``i``, a dummy vertex ``Dmy(i)`` of
zero delay at its output; every fanout edge of ``i`` is re-rooted at
``Dmy(i)``, and the FSDU on the new ``i -> Dmy(i)`` "delay edge" models
the *change* of vertex i's delay.  All leaf vertices driving primary
outputs additionally connect to one common sink ``O`` (corollary 1),
whose potential — like that of every source vertex — is pinned to zero
so the critical path cannot silently lengthen.

Node numbering of the transformed DAG with ``n`` original vertices:

* ``0 .. n-1``      — original vertices,
* ``n .. 2n-1``     — ``Dmy(i) = n + i``,
* ``2n``            — the common output sink ``O``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.circuit_dag import SizingDag

__all__ = ["TransformedDag", "transform_dag"]


@dataclass(frozen=True)
class TransformedArc:
    """One edge of the transformed DAG.

    ``kind`` is ``"delay"`` (i -> Dmy(i)), ``"wire"`` (Dmy(i) -> j) or
    ``"po"`` (Dmy(leaf) -> O).  Wire arcs remember the original edge.
    """

    src: int
    dst: int
    kind: str
    origin: tuple[int, int] | None = None


@dataclass(frozen=True)
class TransformedDag:
    """The dummy-vertex graph the D-phase optimizes over."""

    n_original: int
    arcs: tuple[TransformedArc, ...]
    #: Vertices whose potential r(.) is pinned to zero: DAG sources
    #: (primary-input vertices) and the common sink O.
    pinned: frozenset[int]
    output_sink: int

    @property
    def n_nodes(self) -> int:
        return 2 * self.n_original + 1

    def dummy(self, i: int) -> int:
        """Node id of Dmy(i)."""
        return self.n_original + i

    def is_dummy(self, node: int) -> bool:
        return self.n_original <= node < 2 * self.n_original


def transform_dag(dag: SizingDag) -> TransformedDag:
    """Apply the figure-5 transform to a sizing DAG."""
    n = dag.n
    arcs: list[TransformedArc] = []
    for i in range(n):
        arcs.append(TransformedArc(src=i, dst=n + i, kind="delay"))
    for u, v in dag.edges:
        arcs.append(
            TransformedArc(src=n + u, dst=v, kind="wire", origin=(u, v))
        )
    sink = 2 * n
    for leaf in dag.po_vertices:
        arcs.append(TransformedArc(src=n + leaf, dst=sink, kind="po"))
    pinned = frozenset(dag.sources) | {sink}
    return TransformedDag(
        n_original=n,
        arcs=tuple(arcs),
        pinned=pinned,
        output_sink=sink,
    )
