"""The circuit DAG of paper section 2.2, for gate and transistor sizing.

A :class:`SizingDag` ties together:

* one vertex per size variable (a gate in gate-sizing mode, a transistor
  in transistor-sizing mode),
* structural edges (wires between gates; stack adjacency inside gates),
* a :class:`~repro.delay.model.VertexDelayModel` holding the simple
  monotonic delay decomposition,
* per-vertex size bounds and area weights,
* topological bookkeeping (order, levels, blocks) used by timing
  analysis, the D-phase triangular solves and the W-phase relaxation.

Builders live in :mod:`repro.dag.gate_mode` and
:mod:`repro.dag.transistor_mode`; use
:func:`repro.dag.build_sizing_dag` as the public entry point.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.delay.model import VertexDelayModel
from repro.errors import TimingError

__all__ = ["DagVertex", "SizingDag"]


@dataclass(frozen=True)
class DagVertex:
    """One vertex of the circuit DAG.

    ``kind`` is ``"gate"`` in gate mode, ``"nmos"``/``"pmos"`` in
    transistor mode.  ``block`` groups vertices whose delay coefficients
    may couple cyclically (the blocks of the paper's block upper
    triangular matrix); in gate mode every vertex is its own block.
    """

    index: int
    label: str
    gate: str
    kind: str
    block: int


class SizingDag:
    """Circuit DAG plus delay model and optimization metadata."""

    def __init__(
        self,
        name: str,
        mode: str,
        vertices: list[DagVertex],
        edges: list[tuple[int, int]],
        model: VertexDelayModel,
        po_vertices: list[int],
        lower: np.ndarray,
        upper: np.ndarray,
        area_weight: np.ndarray,
    ):
        self.name = name
        self.mode = mode
        self.vertices = vertices
        self.n = len(vertices)
        if model.n != self.n:
            raise TimingError(
                f"delay model covers {model.n} vertices, DAG has {self.n}"
            )
        self.model = model
        self.lower = np.asarray(lower, dtype=float)
        self.upper = np.asarray(upper, dtype=float)
        self.area_weight = np.asarray(area_weight, dtype=float)

        # Deduplicate structural edges while remembering multiplicity.
        multiplicity: dict[tuple[int, int], int] = {}
        for u, v in edges:
            if u == v:
                raise TimingError(f"self loop on vertex {u}")
            multiplicity[(u, v)] = multiplicity.get((u, v), 0) + 1
        self.edges = sorted(multiplicity)
        self.edge_multiplicity = np.array(
            [multiplicity[e] for e in self.edges], dtype=np.int64
        )
        self.edge_src = np.array([u for u, _ in self.edges], dtype=np.int64)
        self.edge_dst = np.array([v for _, v in self.edges], dtype=np.int64)

        self.fanin: list[list[int]] = [[] for _ in range(self.n)]
        self.fanout: list[list[int]] = [[] for _ in range(self.n)]
        for u, v in self.edges:
            self.fanout[u].append(v)
            self.fanin[v].append(u)

        self.sources = [i for i in range(self.n) if not self.fanin[i]]
        self.sinks = [i for i in range(self.n) if not self.fanout[i]]
        self.po_vertices = sorted(set(po_vertices))
        if not self.po_vertices and self.n:
            raise TimingError(f"DAG {name!r} has no primary-output vertices")

        self.topo_order = self._topological_order()
        self.level = self._levels()
        self.n_levels = int(self.level.max()) + 1 if self.n else 0
        self.blocks = self._block_order()
        # Per-DAG cache of derived sizing-kernel structures (the SMP
        # level plan, the TILOS coupling plan): the topology and delay
        # coefficients are immutable, so consumers build once and reuse
        # (see repro.sizing.kernels.get_smp_plan / get_tilos_plan).
        self.kernel_cache: dict[str, object] = {}

    # -- construction helpers ------------------------------------------------

    def _topological_order(self) -> np.ndarray:
        indegree = np.zeros(self.n, dtype=np.int64)
        for _, v in self.edges:
            indegree[v] += 1
        ready = deque(i for i in range(self.n) if indegree[i] == 0)
        order: list[int] = []
        while ready:
            u = ready.popleft()
            order.append(u)
            for v in self.fanout[u]:
                indegree[v] -= 1
                if indegree[v] == 0:
                    ready.append(v)
        if len(order) != self.n:
            raise TimingError(f"DAG {self.name!r} contains a cycle")
        return np.array(order, dtype=np.int64)

    def _levels(self) -> np.ndarray:
        level = np.zeros(self.n, dtype=np.int64)
        for u in self.topo_order:
            for v in self.fanout[u]:
                level[v] = max(level[v], level[u] + 1)
        return level

    def _block_order(self) -> list[list[int]]:
        """Vertex blocks in topological block order.

        The block id of a vertex groups delay-coupled vertices (one gate's
        transistors).  Block order follows the minimum topological
        position of any member, which respects the block upper triangular
        structure asserted in section 2.3.
        """
        position = np.empty(self.n, dtype=np.int64)
        position[self.topo_order] = np.arange(self.n)
        members: dict[int, list[int]] = {}
        first: dict[int, int] = {}
        for vertex in self.vertices:
            members.setdefault(vertex.block, []).append(vertex.index)
            pos = int(position[vertex.index])
            first[vertex.block] = min(first.get(vertex.block, pos), pos)
        ordered_blocks = sorted(members, key=lambda blk: first[blk])
        return [sorted(members[blk]) for blk in ordered_blocks]

    # -- queries ----------------------------------------------------------------

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def delays(self, x: np.ndarray) -> np.ndarray:
        return self.model.delays(x)

    def area(self, x: np.ndarray) -> float:
        """Objective value: weighted sum of sizes (paper eq. (1))."""
        return float(self.area_weight @ x)

    def min_sizes(self) -> np.ndarray:
        return self.lower.copy()

    def clip(self, x: np.ndarray) -> np.ndarray:
        return np.clip(x, self.lower, self.upper)

    def labels(self) -> list[str]:
        return [vertex.label for vertex in self.vertices]

    def vertex_by_label(self, label: str) -> DagVertex:
        for vertex in self.vertices:
            if vertex.label == label:
                return vertex
        raise KeyError(label)

    def __repr__(self) -> str:
        return (
            f"SizingDag({self.name!r}, mode={self.mode!r}, n={self.n}, "
            f"edges={self.n_edges}, levels={self.n_levels})"
        )
