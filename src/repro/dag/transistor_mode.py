"""Transistor-sizing DAG builder (paper figures 1, 2 and equation (3)).

Every transistor becomes a vertex.  Within a gate, edges follow each
conducting (dis)charging path from the device adjacent to the output
node down to the device adjacent to the rail; across gates, edges run
from the leaf vertices of the driving gate's PMOS (NMOS) component to
the root vertices of the driven gate's NMOS (PMOS) component that reach
the transistor gated by the wire.

The per-device delay attribute is the simple monotonic projection of the
worst-case path Elmore delay onto the device's own size:

    attr(m) = (r_unit / x_m) * sum of caps at every node between the
              output node and m's output-side terminal

Capacitances are structural: each device deposits its drain cap on its
output-side node and its source cap on its rail-side node; the output
node additionally carries the external load (fanout gate caps, wire and
primary-output caps).  Grouping equation (2) by resistor in this way is
exactly how the paper reaches equation (3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.mapping import is_primitive_circuit
from repro.circuit.netlist import Circuit, Gate
from repro.dag.circuit_dag import DagVertex, SizingDag
from repro.delay.model import VertexDelayModel
from repro.delay.monotonic import SizeLaw
from repro.errors import NetlistError
from repro.tech.networks import SPNetwork
from repro.tech.parameters import Technology

__all__ = ["build_transistor_dag"]


@dataclass
class _Device:
    """One transistor during elaboration (gate-local bookkeeping)."""

    local: int            # index within the gate elaboration
    pin: str
    polarity: str         # "nmos" | "pmos"
    top_node: int         # output-side node id
    bot_node: int         # rail-side node id
    nodes_above: tuple[int, ...]  # output node .. top_node inclusive


@dataclass
class _Component:
    """An elaborated pullup or pulldown network."""

    polarity: str
    devices: list[_Device] = field(default_factory=list)
    edges: list[tuple[int, int]] = field(default_factory=list)  # local ids
    roots: list[int] = field(default_factory=list)
    leaves: list[int] = field(default_factory=list)


class _GateElaboration:
    """All transistor-level structure of one gate instance."""

    OUTPUT = 0
    RAIL = -1

    def __init__(self, gate: Gate, pulldown: SPNetwork, pullup: SPNetwork):
        self.gate = gate
        self._next_node = 1
        self.devices: list[_Device] = []
        self.nmos = self._elaborate(pulldown, "nmos")
        self.pmos = self._elaborate(pullup, "pmos")

    def _new_node(self) -> int:
        node = self._next_node
        self._next_node += 1
        return node

    def _elaborate(self, network: SPNetwork, polarity: str) -> _Component:
        component = _Component(polarity=polarity)
        entry, exit_ = self._walk(
            network, self.OUTPUT, self.RAIL, (self.OUTPUT,), polarity, component
        )
        component.roots = entry
        component.leaves = exit_
        return component

    def _walk(
        self,
        network: SPNetwork,
        top: int,
        bot: int,
        above: tuple[int, ...],
        polarity: str,
        component: _Component,
    ) -> tuple[list[int], list[int]]:
        """Recursively elaborate; returns (entry devices, exit devices)."""
        if network.kind == "leaf":
            device = _Device(
                local=len(self.devices),
                pin=network.pin or "",
                polarity=polarity,
                top_node=top,
                bot_node=bot,
                nodes_above=above,
            )
            self.devices.append(device)
            component.devices.append(device)
            return [device.local], [device.local]
        if network.kind == "parallel":
            entries: list[int] = []
            exits: list[int] = []
            for child in network.children:
                entry, exit_ = self._walk(
                    child, top, bot, above, polarity, component
                )
                entries += entry
                exits += exit_
            return entries, exits
        # series: children are ordered output side first.
        current_top = top
        current_above = above
        first_entry: list[int] | None = None
        previous_exit: list[int] = []
        for position, child in enumerate(network.children):
            is_last = position == len(network.children) - 1
            child_bot = bot if is_last else self._new_node()
            entry, exit_ = self._walk(
                child, current_top, child_bot, current_above, polarity, component
            )
            if first_entry is None:
                first_entry = entry
            else:
                component.edges += [
                    (u, v) for u in previous_exit for v in entry
                ]
            previous_exit = exit_
            if not is_last:
                current_top = child_bot
                current_above = current_above + (child_bot,)
        assert first_entry is not None
        return first_entry, previous_exit

    # -- queries ------------------------------------------------------------

    def devices_on_pin(self, pin: str, polarity: str) -> list[_Device]:
        return [
            device
            for device in self.devices
            if device.pin == pin and device.polarity == polarity
        ]

    def roots_reaching(self, component: _Component, target: int) -> list[int]:
        """Roots of ``component`` with a path to local device ``target``."""
        parents: dict[int, list[int]] = {}
        for u, v in component.edges:
            parents.setdefault(v, []).append(u)
        seen = {target}
        frontier = [target]
        while frontier:
            node = frontier.pop()
            for parent in parents.get(node, []):
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return [root for root in component.roots if root in seen]


def build_transistor_dag(
    circuit: Circuit,
    tech: Technology,
    law: SizeLaw | None = None,
) -> SizingDag:
    """Build the transistor-mode :class:`SizingDag` for ``circuit``.

    The circuit must contain only primitive cells; run
    :func:`repro.circuit.mapping.map_to_primitives` first otherwise.
    """
    circuit.freeze()
    if not is_primitive_circuit(circuit):
        raise NetlistError(
            f"circuit {circuit.name!r} contains macro cells; apply "
            "map_to_primitives() before transistor sizing"
        )
    library = circuit.library
    gates = circuit.topological_gates()

    elaborations: dict[str, _GateElaboration] = {}
    global_index: dict[tuple[str, int], int] = {}
    vertices: list[DagVertex] = []
    for block, gate in enumerate(gates):
        cell = library.cell(gate.cell)
        assert cell.pulldown is not None and cell.pullup is not None
        elaboration = _GateElaboration(gate, cell.pulldown, cell.pullup)
        elaborations[gate.name] = elaboration
        for device in elaboration.devices:
            i = len(vertices)
            global_index[(gate.name, device.local)] = i
            vertices.append(
                DagVertex(
                    index=i,
                    label=f"{gate.name}/{device.polarity[0].upper()}:{device.pin}",
                    gate=gate.name,
                    kind=device.polarity,
                    block=block,
                )
            )

    n = len(vertices)
    rows: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    b = np.zeros(n)
    intrinsic = np.zeros(n)
    edges: list[tuple[int, int]] = []
    po_vertices: list[int] = []
    outputs = set(circuit.outputs)

    for gate in gates:
        elab = elaborations[gate.name]
        # node -> [(global vertex, cap coefficient)], node -> constant cap
        node_coefs: dict[int, list[tuple[int, float]]] = {}
        node_const: dict[int, float] = {}
        for device in elab.devices:
            g_idx = global_index[(gate.name, device.local)]
            drain = (
                tech.c_drain_n if device.polarity == "nmos" else tech.c_drain_p
            )
            source = (
                tech.c_source_n
                if device.polarity == "nmos"
                else tech.c_source_p
            )
            node_coefs.setdefault(device.top_node, []).append((g_idx, drain))
            if device.bot_node != _GateElaboration.RAIL:
                node_coefs.setdefault(device.bot_node, []).append(
                    (g_idx, source)
                )
        for node in node_coefs:
            if node != _GateElaboration.OUTPUT:
                node_const[node] = node_const.get(node, 0.0) + tech.c_internal

        # External load on the output node: driven transistor gates, wire
        # branches and the primary-output load.
        branches = 0
        out_coefs: list[tuple[int, float]] = []
        out_const = 0.0
        for load_gate, pin_pos in circuit.loads_of(gate.output):
            load_elab = elaborations[load_gate.name]
            pin_name = library.cell(load_gate.cell).inputs[pin_pos]
            for device in load_elab.devices_on_pin(pin_name, "nmos"):
                out_coefs.append(
                    (
                        global_index[(load_gate.name, device.local)],
                        tech.c_gate_n,
                    )
                )
            for device in load_elab.devices_on_pin(pin_name, "pmos"):
                out_coefs.append(
                    (
                        global_index[(load_gate.name, device.local)],
                        tech.c_gate_p,
                    )
                )
            branches += 1
        if gate.output in outputs:
            out_const += tech.c_load
            branches += 1
        out_const += tech.c_wire * branches
        node_coefs.setdefault(_GateElaboration.OUTPUT, []).extend(out_coefs)
        node_const[_GateElaboration.OUTPUT] = (
            node_const.get(_GateElaboration.OUTPUT, 0.0) + out_const
        )

        # Per-device delay attribute: r_unit * (caps on nodes above).
        for device in elab.devices:
            g_idx = global_index[(gate.name, device.local)]
            r_unit = tech.r_nmos if device.polarity == "nmos" else tech.r_pmos
            for node in device.nodes_above:
                for j, cap in node_coefs.get(node, []):
                    if j == g_idx:
                        # Self-loading term (A*B style constants of eq. 3).
                        intrinsic[g_idx] += r_unit * cap
                    else:
                        rows[g_idx].append((j, r_unit * cap))
                b[g_idx] += r_unit * node_const.get(node, 0.0)

        # Intra-gate structural edges.
        for component in (elab.nmos, elab.pmos):
            for u, v in component.edges:
                edges.append(
                    (
                        global_index[(gate.name, u)],
                        global_index[(gate.name, v)],
                    )
                )

        # Inter-gate edges: driver PMOS leaves -> driven NMOS roots (and
        # symmetrically), targeting roots that reach the driven device.
        for load_gate, pin_pos in circuit.loads_of(gate.output):
            load_elab = elaborations[load_gate.name]
            pin_name = library.cell(load_gate.cell).inputs[pin_pos]
            pairs = (
                ("pmos", "nmos", load_elab.nmos),
                ("nmos", "pmos", load_elab.pmos),
            )
            for src_pol, dst_pol, dst_component in pairs:
                src_component = elab.pmos if src_pol == "pmos" else elab.nmos
                for driven in load_elab.devices_on_pin(pin_name, dst_pol):
                    roots = load_elab.roots_reaching(
                        dst_component, driven.local
                    )
                    for leaf_local in src_component.leaves:
                        for root_local in roots:
                            edges.append(
                                (
                                    global_index[(gate.name, leaf_local)],
                                    global_index[(load_gate.name, root_local)],
                                )
                            )

        if gate.output in outputs:
            for component in (elab.nmos, elab.pmos):
                po_vertices += [
                    global_index[(gate.name, leaf_local)]
                    for leaf_local in component.leaves
                ]

    model = VertexDelayModel.from_rows(rows, b, intrinsic, law=law)
    return SizingDag(
        name=circuit.name,
        mode="transistor",
        vertices=vertices,
        edges=edges,
        model=model,
        po_vertices=po_vertices,
        lower=np.full(n, tech.min_size),
        upper=np.full(n, tech.max_size),
        area_weight=np.ones(n),
    )
