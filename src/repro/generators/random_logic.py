"""Seeded random combinational logic.

Two uses: a *filler* that pads an ISCAS-equivalent circuit up to the
paper's quoted gate count with realistic random logic, and a standalone
generator for property-based tests (arbitrary valid DAGs with
controlled depth and fanout statistics).

Determinism: everything derives from ``random.Random(seed)``; the same
arguments always produce the identical netlist.
"""

from __future__ import annotations

import random

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.errors import NetlistError

__all__ = ["random_logic", "append_random_logic"]

# Weighted cell palette: mostly 2-input NAND/NOR with occasional wide
# and inverting cells, resembling mapped control logic.
_PALETTE: list[tuple[str, int, float]] = [
    ("NAND2", 2, 0.30),
    ("NOR2", 2, 0.20),
    ("NAND3", 3, 0.12),
    ("NOR3", 3, 0.08),
    ("AOI21", 3, 0.08),
    ("OAI21", 3, 0.08),
    ("INV", 1, 0.10),
    ("NAND4", 4, 0.04),
]


def random_logic(
    n_gates: int,
    n_inputs: int = 16,
    n_outputs: int = 8,
    seed: int = 0,
    name: str | None = None,
    locality: int = 24,
) -> Circuit:
    """A random primitive-cell DAG with ``n_gates`` gates.

    ``locality`` bounds how far back (in creation order) a gate may pick
    its operands, which controls logic depth: small values give long
    thin circuits, large values give shallow wide ones.
    """
    if n_gates < 1 or n_inputs < 1 or n_outputs < 1:
        raise NetlistError("random_logic needs positive sizes")
    builder = CircuitBuilder(name or f"rand{n_gates}_s{seed}")
    rng = random.Random(seed)
    nets = builder.input_bus("x", n_inputs)
    append_random_logic(builder, nets, n_gates, rng, locality)
    _drain_outputs(builder, nets, n_outputs, rng)
    return builder.build()


def append_random_logic(
    builder: CircuitBuilder,
    nets: list[str],
    n_gates: int,
    rng: random.Random,
    locality: int = 24,
) -> list[str]:
    """Append ``n_gates`` random gates reading from (and extending)
    ``nets``; returns the list of new output nets."""
    cells = [entry[0] for entry in _PALETTE]
    arities = {entry[0]: entry[1] for entry in _PALETTE}
    weights = [entry[2] for entry in _PALETTE]
    created: list[str] = []
    for _ in range(n_gates):
        cell = rng.choices(cells, weights=weights, k=1)[0]
        arity = arities[cell]
        window = nets[-locality:] if len(nets) > locality else nets
        if len(window) < arity:
            window = nets
        operands = rng.sample(window, k=min(arity, len(window)))
        while len(operands) < arity:  # tiny windows: allow reuse
            operands.append(rng.choice(nets))
        out = builder.gate(cell, operands)
        nets.append(out)
        created.append(out)
    return created


def _drain_outputs(
    builder: CircuitBuilder,
    nets: list[str],
    n_outputs: int,
    rng: random.Random,
) -> None:
    """Mark outputs and sweep dangling nets into reduction trees so the
    circuit has no dead logic (a lint the sizers care about)."""
    circuit = builder.circuit
    dangling = [
        gate.output
        for gate in circuit.gates
        if not circuit.loads_of(gate.output)
    ]
    rng.shuffle(dangling)
    if not dangling:
        dangling = nets[-n_outputs:]
    groups = max(1, min(n_outputs, len(dangling)))
    for g in range(groups):
        chunk = dangling[g::groups]
        if not chunk:
            continue
        builder.output(_reduce(builder, chunk), name=f"y[{g}]")


def _reduce(builder: CircuitBuilder, nets: list[str]) -> str:
    level = list(nets)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(builder.nand(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
