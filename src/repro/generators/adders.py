"""Ripple-carry adder generator (the paper's adder32 .. adder256 rows).

The paper reports 480 gates for adder32 (15 gates/bit), which matches a
full adder built from macro XOR/AND/OR cells expanded into primitives
(14 gates/bit) plus I/O buffering; ``style="mapped"`` reproduces that
flavour.  ``style="nand"`` gives the compact 9-NAND adder instead.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.mapping import map_to_primitives
from repro.circuit.netlist import Circuit
from repro.errors import NetlistError
from repro.generators.arith import ripple_chain

__all__ = ["ripple_carry_adder"]


def ripple_carry_adder(
    width: int,
    style: str = "mapped",
    name: str | None = None,
) -> Circuit:
    """An unsigned ``width``-bit ripple-carry adder with carry in/out.

    ``style`` is ``"macro"`` (XOR2/AND2/OR2 cells), ``"nand"`` (9-NAND
    full adders) or ``"mapped"`` (macro expanded to primitives — the
    Table 1 configuration).
    """
    if width < 1:
        raise NetlistError(f"adder width must be >= 1, got {width}")
    base_style = "macro" if style == "mapped" else style
    builder = CircuitBuilder(name or f"adder{width}")
    a_bits = builder.input_bus("a", width)
    b_bits = builder.input_bus("b", width)
    cin = builder.input("cin")
    sums, cout = ripple_chain(builder, a_bits, b_bits, cin, style=base_style)
    for i, s in enumerate(sums):
        builder.output(s, name=f"sum[{i}]")
    builder.output(cout, name="cout")
    circuit = builder.build()
    if style == "mapped":
        circuit = map_to_primitives(circuit, suffix="")
    return circuit.freeze()
