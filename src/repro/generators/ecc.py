"""Error-correction circuit generators (c499 / c1355 / c1908 equivalents).

c499 and c1355 are the same 32-bit single-error-correcting (SEC)
circuit — c499 with XOR gates, c1355 with the XORs expanded into NANDs.
This module mirrors that relationship exactly: the c1355 equivalent is
the c499 equivalent passed through
:func:`repro.circuit.mapping.map_to_primitives`.

The architecture is a shortened Hamming code: ``k`` syndrome bits are
XOR trees over data subsets (bit ``i`` participates in syndrome ``j``
when bit ``j`` of ``i+1`` is set), a decoder matches each data position
against the syndrome, and correction XORs flip the erroneous bit.

c1908 (16-bit SEC/DED) adds an overall-parity tree for double-error
detection and error/status outputs.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.mapping import map_to_primitives
from repro.circuit.transform import buffer_high_fanout
from repro.circuit.netlist import Circuit
from repro.errors import NetlistError

__all__ = ["sec_corrector", "sec_ded_corrector"]


def _xor_tree(builder: CircuitBuilder, terms: list[str]) -> str:
    """Balanced XOR reduction."""
    if not terms:
        raise NetlistError("empty XOR tree")
    level = list(terms)
    while len(level) > 1:
        nxt = [
            builder.xor(level[i], level[i + 1])
            for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _syndrome_width(data_width: int) -> int:
    k = 1
    while (1 << k) < data_width + k + 1:
        k += 1
    return k


def sec_corrector(
    data_width: int = 32,
    name: str | None = None,
    mapped: bool = False,
) -> Circuit:
    """Single-error-correcting decoder over ``data_width`` data bits.

    Inputs: data bits plus received check bits.  Outputs: corrected
    data.  ``mapped=True`` expands every macro cell into primitives —
    exactly the c499 -> c1355 relationship.
    """
    k = _syndrome_width(data_width)
    builder = CircuitBuilder(name or f"sec{data_width}")
    data = builder.input_bus("d", data_width)
    checks = builder.input_bus("c", k)

    # Syndrome j: parity of data bits whose (i+1) has bit j set, xor the
    # received check bit.
    syndromes: list[str] = []
    for j in range(k):
        terms = [
            data[i] for i in range(data_width) if (i + 1) >> j & 1
        ]
        terms.append(checks[j])
        syndromes.append(_xor_tree(builder, terms))
    syndrome_bar = [builder.not_(s) for s in syndromes]

    # Decode: position i is erroneous when the syndrome equals i+1.
    for i in range(data_width):
        pattern = [
            syndromes[j] if (i + 1) >> j & 1 else syndrome_bar[j]
            for j in range(k)
        ]
        hit = builder.and_(*pattern)
        builder.output(builder.xor(data[i], hit), name=f"q[{i}]")

    circuit = buffer_high_fanout(builder.build(), max_fanout=8)
    if mapped:
        circuit = map_to_primitives(circuit, suffix="")
    return circuit.freeze()


def sec_ded_corrector(
    data_width: int = 16,
    name: str | None = None,
    mapped: bool = True,
) -> Circuit:
    """SEC/DED decoder (c1908 flavour): corrects singles, flags doubles.

    Adds an overall-parity input/tree; a double error shows as a
    non-zero syndrome with even overall parity.
    """
    k = _syndrome_width(data_width)
    builder = CircuitBuilder(name or f"secded{data_width}")
    data = builder.input_bus("d", data_width)
    checks = builder.input_bus("c", k)
    overall = builder.input("p")

    syndromes: list[str] = []
    for j in range(k):
        terms = [data[i] for i in range(data_width) if (i + 1) >> j & 1]
        terms.append(checks[j])
        syndromes.append(_xor_tree(builder, terms))
    syndrome_bar = [builder.not_(s) for s in syndromes]

    parity = _xor_tree(builder, list(data) + list(checks) + [overall])
    syndrome_nonzero = builder.or_(*syndromes)
    single = builder.and_(syndrome_nonzero, parity)
    double = builder.and_(syndrome_nonzero, builder.not_(parity))

    for i in range(data_width):
        pattern = [
            syndromes[j] if (i + 1) >> j & 1 else syndrome_bar[j]
            for j in range(k)
        ]
        hit = builder.and_(*pattern, single)
        builder.output(builder.xor(data[i], hit), name=f"q[{i}]")
    builder.output(single, name="err_single")
    builder.output(double, name="err_double")

    circuit = buffer_high_fanout(builder.build(), max_fanout=8)
    if mapped:
        circuit = map_to_primitives(circuit, suffix="")
    return circuit.freeze()
