"""Arithmetic building blocks shared by the circuit generators.

Provides full/half adders in three styles:

* ``"macro"`` — XOR2/AND2/OR2 macro cells (5 gates per full adder),
* ``"nand"``  — the classic 9-gate NAND2 full adder (primitive cells,
  the flavour of the ISCAS85 arithmetic circuits),
* ``"mapped"``— macro style expanded by
  :func:`repro.circuit.mapping.map_to_primitives` at the circuit level.

The 9-NAND full adder::

    n1 = NAND(a, b)        n4 = NAND(s1, cin)
    n2 = NAND(a, n1)       n5 = NAND(s1, n4)
    n3 = NAND(b, n1)       n6 = NAND(cin, n4)
    s1 = NAND(n2, n3)      sum = NAND(n5, n6)
    cout = NAND(n1, n4)
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.errors import NetlistError

__all__ = ["full_adder", "half_adder", "ripple_chain"]

STYLES = ("macro", "nand")


def full_adder(
    builder: CircuitBuilder, a: str, b: str, cin: str, style: str = "nand"
) -> tuple[str, str]:
    """Emit one full adder; returns (sum, carry_out)."""
    if style == "macro":
        return builder.full_adder(a, b, cin)
    if style != "nand":
        raise NetlistError(f"unknown adder style {style!r}")
    n1 = builder.nand(a, b)
    n2 = builder.nand(a, n1)
    n3 = builder.nand(b, n1)
    s1 = builder.nand(n2, n3)
    n4 = builder.nand(s1, cin)
    n5 = builder.nand(s1, n4)
    n6 = builder.nand(cin, n4)
    total = builder.nand(n5, n6)
    carry = builder.nand(n1, n4)
    return total, carry


def half_adder(
    builder: CircuitBuilder, a: str, b: str, style: str = "nand"
) -> tuple[str, str]:
    """Emit one half adder; returns (sum, carry_out)."""
    if style == "macro":
        return builder.half_adder(a, b)
    if style != "nand":
        raise NetlistError(f"unknown adder style {style!r}")
    n1 = builder.nand(a, b)
    n2 = builder.nand(a, n1)
    n3 = builder.nand(b, n1)
    total = builder.nand(n2, n3)
    carry = builder.not_(n1)
    return total, carry


def ripple_chain(
    builder: CircuitBuilder,
    a_bits: list[str],
    b_bits: list[str],
    cin: str | None,
    style: str = "nand",
) -> tuple[list[str], str]:
    """A ripple-carry adder over two equal-width buses.

    Returns (sum bits, carry out).  With no carry-in the first stage is
    a half adder.
    """
    if len(a_bits) != len(b_bits):
        raise NetlistError(
            f"bus widths differ: {len(a_bits)} vs {len(b_bits)}"
        )
    sums: list[str] = []
    carry = cin
    for a, b in zip(a_bits, b_bits):
        if carry is None:
            s, carry = half_adder(builder, a, b, style=style)
        else:
            s, carry = full_adder(builder, a, b, carry, style=style)
        sums.append(s)
    assert carry is not None
    return sums, carry
