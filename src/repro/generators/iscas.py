"""The ISCAS85-equivalent benchmark suite (Table 1 rows).

The original ISCAS85 netlists are redistribution-restricted, so this
module generates *structural equivalents*: circuits of the same
function class, architecture and approximate gate count as each Table 1
row (see DESIGN.md section 4 for the substitution argument).  ``c17``
is public and included verbatim.

Every builder is deterministic.  :func:`build_circuit` is the entry
point; :data:`SUITE` lists the rows with the paper's quoted gate count
and delay specification (the ``0.4 Dmin``-style column of Table 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.circuit.bench_io import loads_bench
from repro.circuit.netlist import Circuit
from repro.errors import NetlistError
from repro.generators.adders import ripple_carry_adder
from repro.generators.alu import alu
from repro.generators.comparators import adder_comparator
from repro.generators.control import interrupt_controller
from repro.generators.ecc import sec_corrector, sec_ded_corrector
from repro.generators.multipliers import array_multiplier
from repro.generators.random_logic import append_random_logic

__all__ = ["BenchmarkSpec", "SUITE", "build_circuit", "c17"]

C17_BENCH = """
# c17 — public-domain 6-gate ISCAS85 circuit (exact netlist)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


def c17() -> Circuit:
    """The real c17 netlist (it is public domain)."""
    return loads_bench(C17_BENCH, name="c17")


def _c432eq() -> Circuit:
    return interrupt_controller(
        n_groups=3, group_width=9, name="c432eq", mapped=True
    )


def _c499eq() -> Circuit:
    return sec_corrector(data_width=32, name="c499eq", mapped=False)


def _c1355eq() -> Circuit:
    # The same circuit as c499eq with macros expanded into NAND-level
    # primitives — exactly the real c499/c1355 relationship.
    return sec_corrector(data_width=32, name="c1355eq", mapped=True)


def _c880eq() -> Circuit:
    return alu(width=8, dual_datapath=False, name="c880eq", mapped=True)


def _c1908eq() -> Circuit:
    return sec_ded_corrector(data_width=16, name="c1908eq", mapped=True)


def _c2670eq() -> Circuit:
    # 12-bit ALU plus random control logic, the "ALU and controller"
    # mix of c2670; padded to the paper's gate count.
    circuit = alu(width=12, dual_datapath=False, name="c2670eq", mapped=True)
    return _pad_with_random_logic(circuit, target_gates=1193, seed=2670)


def _c3540eq() -> Circuit:
    # 8-bit dual-datapath ALU with BCD correction; the real c3540
    # carries substantial mode/control logic, represented by the
    # random-logic pad up to the paper's count.
    circuit = alu(
        width=8,
        dual_datapath=True,
        correction_stage=True,
        name="c3540eq",
        mapped=True,
    )
    return _pad_with_random_logic(circuit, target_gates=1669, seed=3540)


def _c5315eq() -> Circuit:
    circuit = alu(width=9, dual_datapath=True, name="c5315eq", mapped=True)
    return _pad_with_random_logic(circuit, target_gates=2307, seed=5315)


def _c6288eq() -> Circuit:
    return array_multiplier(16, style="nand", name="c6288eq")


def _c7552eq() -> Circuit:
    # Duplicated 32-bit adder with cross-check plus comparator/parity —
    # the self-checking structure of the real c7552.
    circuit = adder_comparator(
        width=32, name="c7552eq", mapped=True, dual_bank=True
    )
    return _pad_with_random_logic(circuit, target_gates=3512, seed=7552)


def _pad_with_random_logic(
    circuit: Circuit, target_gates: int, seed: int
) -> Circuit:
    """Append random logic until the gate count reaches the target.

    The filler reads existing internal nets (so it loads the real
    datapath) and drains into extra primary outputs.
    """
    from repro.circuit.builder import CircuitBuilder

    if circuit.n_gates >= target_gates:
        return circuit
    builder = CircuitBuilder(circuit.name, library=circuit.library)
    for net in circuit.inputs:
        builder.input(net)
    for gate in circuit.topological_gates():
        builder.circuit.add_gate(gate.name, gate.cell, gate.inputs, gate.output)
    for net in circuit.outputs:
        builder.circuit.mark_output(net)
    # The copied gates used this same auto-naming scheme; skip past them.
    builder.reserve_names(10 * circuit.n_gates + 1000)

    rng = random.Random(seed)
    nets = [gate.output for gate in circuit.topological_gates()]
    rng.shuffle(nets)
    n_filler = target_gates - circuit.n_gates - 4
    # A wide operand window keeps the filler shallow so the generated
    # control logic does not dominate the datapath's critical path.
    created = append_random_logic(
        builder, nets, n_filler, rng, locality=max(256, n_filler // 4)
    )
    inner = builder.circuit
    dangling = [net for net in created if not inner.loads_of(net)]
    for g in range(4):
        chunk = dangling[g::4]
        if chunk:
            level = chunk
            while len(level) > 1:
                level = [
                    builder.nand(level[i], level[i + 1])
                    for i in range(0, len(level) - 1, 2)
                ] + ([level[-1]] if len(level) % 2 else [])
            builder.output(level[0], name=f"pad[{g}]")
    return builder.build()


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table 1 row: the circuit and the paper's reference numbers."""

    name: str
    builder: Callable[[], Circuit]
    paper_gates: int
    #: Delay target as a fraction of the minimum-sized circuit delay.
    delay_spec: float
    paper_area_saving_percent: float
    #: Size tier used to pick the default benchmark subset.
    tier: str  # "smoke" | "paper"


SUITE: list[BenchmarkSpec] = [
    BenchmarkSpec("adder32", lambda: ripple_carry_adder(32), 480, 0.5, 1.0, "smoke"),
    BenchmarkSpec("adder256", lambda: ripple_carry_adder(256), 3840, 0.5, 1.0, "paper"),
    BenchmarkSpec("c432eq", _c432eq, 160, 0.4, 9.4, "smoke"),
    BenchmarkSpec("c499eq", _c499eq, 202, 0.57, 7.2, "smoke"),
    BenchmarkSpec("c880eq", _c880eq, 383, 0.4, 4.0, "smoke"),
    BenchmarkSpec("c1355eq", _c1355eq, 546, 0.4, 9.5, "paper"),
    BenchmarkSpec("c1908eq", _c1908eq, 880, 0.4, 4.6, "paper"),
    BenchmarkSpec("c2670eq", _c2670eq, 1193, 0.4, 9.1, "paper"),
    BenchmarkSpec("c3540eq", _c3540eq, 1669, 0.4, 7.7, "paper"),
    BenchmarkSpec("c5315eq", _c5315eq, 2307, 0.4, 2.0, "paper"),
    BenchmarkSpec("c6288eq", _c6288eq, 2416, 0.4, 16.5, "paper"),
    BenchmarkSpec("c7552eq", _c7552eq, 3512, 0.4, 3.3, "paper"),
]

_BY_NAME = {spec.name: spec for spec in SUITE}


def build_circuit(name: str) -> Circuit:
    """Build a suite circuit (or c17) by name."""
    if name == "c17":
        return c17()
    spec = _BY_NAME.get(name)
    if spec is None:
        known = ["c17"] + [s.name for s in SUITE]
        raise NetlistError(f"unknown benchmark {name!r}; known: {known}")
    return spec.builder()
