"""Priority / interrupt controller generator (the c432 equivalent).

c432 is a 27-channel interrupt controller: three 9-bit request groups
with enable masks, a priority chain across channels and an encoded
grant output.  This generator builds that architecture for any group
geometry: per-channel masking, a ripple priority chain (a channel is
granted when requesting and no higher-priority channel requests), a
binary encoder over the grant lines and group-pending flags.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.mapping import map_to_primitives
from repro.circuit.transform import buffer_high_fanout
from repro.circuit.netlist import Circuit
from repro.errors import NetlistError

__all__ = ["interrupt_controller"]


def interrupt_controller(
    n_groups: int = 3,
    group_width: int = 9,
    name: str | None = None,
    mapped: bool = True,
) -> Circuit:
    """Build the priority interrupt controller."""
    if n_groups < 1 or group_width < 1:
        raise NetlistError("controller needs >= 1 group and width")
    channels = n_groups * group_width
    builder = CircuitBuilder(name or f"intctl{channels}")

    requests = [
        builder.input_bus(f"req{g}", group_width) for g in range(n_groups)
    ]
    masks = builder.input_bus("mask", n_groups)

    # Masked requests: group mask gates all channels in the group.
    masked: list[str] = []
    for g in range(n_groups):
        enable = builder.not_(masks[g])
        for i in range(group_width):
            masked.append(builder.and_(requests[g][i], enable))

    # Two-level priority: a ripple prefix-OR inside each group plus a
    # group-level chain — the shallow structure of the real c432
    # (within-group depth ~ group_width, not n_channels).
    group_any: list[str] = []
    higher_group: list[str | None] = [None] * n_groups
    prefixes: list[str | None] = []
    for g in range(n_groups):
        block = masked[g * group_width : (g + 1) * group_width]
        running: str | None = None
        for req in block:
            prefixes.append(running)
            running = req if running is None else builder.or_(running, req)
        assert running is not None
        group_any.append(running)
        if g + 1 < n_groups:
            previous = higher_group[g]
            higher_group[g + 1] = (
                group_any[g]
                if previous is None
                else builder.or_(previous, group_any[g])
            )

    grants: list[str] = []
    for i, req in enumerate(masked):
        g = i // group_width
        blockers = [
            net
            for net in (prefixes[i], higher_group[g])
            if net is not None
        ]
        if not blockers:
            grants.append(builder.buf(req))
        elif len(blockers) == 1:
            grants.append(builder.and_(req, builder.not_(blockers[0])))
        else:
            grants.append(
                builder.and_(req, builder.nor(blockers[0], blockers[1]))
            )

    # Binary encoder over the (one-hot) grant vector, plus a grant-valid
    # line (which also consumes grant 0, whose code is all-zero).
    n_code = max(1, (channels - 1).bit_length())
    for bit in range(n_code):
        terms = [grants[i] for i in range(channels) if i >> bit & 1]
        if terms:
            builder.output(builder.or_(*terms), name=f"vec[{bit}]")
    builder.output(builder.or_(*grants), name="gnt")
    # Group-pending flags (already computed by the priority prefix) and
    # a global interrupt line.
    for g in range(n_groups):
        builder.output(group_any[g], name=f"pend[{g}]")
    builder.output(builder.or_(*group_any), name="irq")

    circuit = buffer_high_fanout(builder.build(), max_fanout=8)
    if mapped:
        circuit = map_to_primitives(circuit, suffix="")
    return circuit.freeze()
