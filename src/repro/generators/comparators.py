"""Adder/comparator generator (the c7552 equivalent).

c7552 is a 32-bit adder/comparator with parity checking.  This
generator builds: a 32-bit ripple-carry adder (9-NAND full adders), a
magnitude comparator over the operands (ripple greater/less chain), an
equality tree, and parity trees over inputs and the sum — the same mix
of long arithmetic chains and wide reduction trees.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.mapping import map_to_primitives
from repro.circuit.transform import buffer_high_fanout
from repro.circuit.netlist import Circuit
from repro.errors import NetlistError
from repro.generators.arith import ripple_chain

__all__ = ["adder_comparator"]


def _xor_tree(builder: CircuitBuilder, terms: list[str]) -> str:
    level = list(terms)
    while len(level) > 1:
        nxt = [
            builder.xor(level[i], level[i + 1])
            for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def adder_comparator(
    width: int = 32,
    name: str | None = None,
    mapped: bool = True,
    dual_bank: bool = False,
) -> Circuit:
    """Build the ``width``-bit adder/comparator.

    ``dual_bank=True`` instantiates a second, independent adder over the
    same operands and cross-checks the two sums — the self-checking
    duplicated-adder structure of the real c7552.
    """
    if width < 2:
        raise NetlistError(f"width must be >= 2, got {width}")
    builder = CircuitBuilder(name or f"addcmp{width}")
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    cin = builder.input("cin")

    # Adder core.
    sums, cout = ripple_chain(builder, a, b, cin, style="nand")
    for i, s in enumerate(sums):
        builder.output(s, name=f"sum[{i}]")
    builder.output(cout, name="cout")

    if dual_bank:
        # Checker bank: same function, macro-cell implementation; any
        # mismatch raises the check output.
        sums2, cout2 = ripple_chain(builder, a, b, cin, style="macro")
        mismatches = [
            builder.xor(sums[i], sums2[i]) for i in range(width)
        ]
        mismatches.append(builder.xor(cout, cout2))
        builder.output(builder.or_(*mismatches), name="check_fail")

    # Per-bit (greater, equal) pairs merged by a log-depth combine tree
    # (the real c7552 comparator is shallow, ~15 levels, not a 32-stage
    # ripple): combine(hi, lo) = (hi.gt | hi.eq & lo.gt, hi.eq & lo.eq).
    pairs = [
        (builder.and_(a[i], builder.not_(b[i])), builder.xnor(a[i], b[i]))
        for i in range(width)
    ]  # index 0 = LSB; tree combines keep MSB significance.
    while len(pairs) > 1:
        merged: list[tuple[str, str]] = []
        for i in range(0, len(pairs) - 1, 2):
            lo_gt, lo_eq = pairs[i]
            hi_gt, hi_eq = pairs[i + 1]
            gt_net = builder.or_(hi_gt, builder.and_(hi_eq, lo_gt))
            eq_net = builder.and_(hi_eq, lo_eq)
            merged.append((gt_net, eq_net))
        if len(pairs) % 2:
            merged.append(pairs[-1])
        pairs = merged
    gt, equal = pairs[0]
    less = builder.nor(gt, equal)
    builder.output(gt, name="a_gt_b")
    builder.output(equal, name="a_eq_b")
    builder.output(less, name="a_lt_b")

    # Parity trees over each operand and over the sum.
    builder.output(_xor_tree(builder, list(a)), name="par_a")
    builder.output(_xor_tree(builder, list(b)), name="par_b")
    builder.output(_xor_tree(builder, list(sums) + [cout]), name="par_sum")

    circuit = buffer_high_fanout(builder.build(), max_fanout=8)
    if mapped:
        circuit = map_to_primitives(circuit, suffix="")
    return circuit.freeze()
