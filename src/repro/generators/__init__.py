"""Benchmark circuit generators (ISCAS85 equivalents, adders, multipliers)."""

from repro.generators.adders import ripple_carry_adder
from repro.generators.alu import alu
from repro.generators.comparators import adder_comparator
from repro.generators.control import interrupt_controller
from repro.generators.ecc import sec_corrector, sec_ded_corrector
from repro.generators.iscas import SUITE, BenchmarkSpec, build_circuit, c17
from repro.generators.multipliers import array_multiplier
from repro.generators.random_logic import random_logic

__all__ = [
    "BenchmarkSpec",
    "SUITE",
    "adder_comparator",
    "alu",
    "array_multiplier",
    "build_circuit",
    "c17",
    "interrupt_controller",
    "random_logic",
    "ripple_carry_adder",
    "sec_corrector",
    "sec_ded_corrector",
]
