"""Parameterized ALU generator (c880 / c3540 / c5315 equivalents).

A classic bit-sliced ALU: an operand-conditioning stage (invert /
mask), a ripple-carry add/subtract core, a logic unit (AND / OR / XOR),
an output multiplexer driven by decoded opcode lines, and status flags
(zero, carry-out, overflow, parity).  Width, number of logic functions
and an optional second datapath tune the gate count to the Table 1 row
being matched:

* c880-eq  — 8-bit, single datapath (~380 gates mapped)
* c3540-eq — 8-bit, dual datapath + BCD-style correction (~1700)
* c5315-eq — 9-bit, dual datapath, wide status (~2300)
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.mapping import map_to_primitives
from repro.circuit.transform import buffer_high_fanout
from repro.circuit.netlist import Circuit
from repro.errors import NetlistError

__all__ = ["alu"]


def _xor_tree(builder: CircuitBuilder, terms: list[str]) -> str:
    level = list(terms)
    while len(level) > 1:
        nxt = [
            builder.xor(level[i], level[i + 1])
            for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _prefix_carries(
    builder: CircuitBuilder,
    g: list[str],
    p: list[str],
    cin: str,
) -> list[str]:
    """Sklansky prefix tree over (generate, propagate) pairs.

    Returns carries c[0..width]: c[0] = cin, c[i+1] into bit i+1.
    Combine: (g_hi | p_hi & g_lo, p_hi & p_lo) — log-depth, matching the
    shallow carry structure of the ISCAS85 ALUs.
    """
    width = len(g)
    # spans[i] = (G, P) over bits [start..i] — grown by doubling.
    gg = list(g)
    pp = list(p)
    distance = 1
    while distance < width:
        for i in range(width - 1, distance - 1, -1):
            j = i - distance
            gg[i] = builder.or_(gg[i], builder.and_(pp[i], gg[j]))
            pp[i] = builder.and_(pp[i], pp[j])
        distance *= 2
    carries = [cin]
    for i in range(width):
        # c[i+1] = G[0..i] | P[0..i] & cin.
        carries.append(builder.or_(gg[i], builder.and_(pp[i], cin)))
    return carries


def _datapath(
    builder: CircuitBuilder,
    a: list[str],
    b: list[str],
    sub: str,
    op0: str,
    op1: str,
    tag: str,
) -> tuple[list[str], str, str]:
    """One ALU slice stack; returns (result bits, carry, overflow)."""
    width = len(a)
    # Operand conditioning: b xor sub implements add/subtract.
    b_cond = [builder.xor(bit, sub) for bit in b]

    generate = [builder.and_(a[i], b_cond[i]) for i in range(width)]
    propagate = [builder.xor(a[i], b_cond[i]) for i in range(width)]
    carries = _prefix_carries(builder, generate, propagate, sub)
    sums = [builder.xor(propagate[i], carries[i]) for i in range(width)]
    carry = carries[width]
    overflow = builder.xor(carries[width], carries[width - 1])

    # Logic unit and the 4:1 result mux per bit:
    #   00 -> sum, 01 -> AND, 10 -> OR, 11 -> XOR.
    n_op0 = builder.not_(op0)
    n_op1 = builder.not_(op1)
    sel_sum = builder.and_(n_op1, n_op0)
    sel_and = builder.and_(n_op1, op0)
    sel_or = builder.and_(op1, n_op0)
    sel_xor = builder.and_(op1, op0)
    result: list[str] = []
    for i in range(width):
        land = builder.and_(a[i], b[i])
        lor = builder.or_(a[i], b[i])
        lxor = builder.xor(a[i], b[i])
        t0 = builder.and_(sums[i], sel_sum)
        t1 = builder.and_(land, sel_and)
        t2 = builder.and_(lor, sel_or)
        t3 = builder.and_(lxor, sel_xor)
        result.append(builder.or_(t0, t1, t2, t3, out=f"{tag}_r{i}"))
    return result, carry, overflow


def alu(
    width: int = 8,
    dual_datapath: bool = False,
    correction_stage: bool = False,
    name: str | None = None,
    mapped: bool = True,
) -> Circuit:
    """Build the parameterized ALU.

    ``dual_datapath`` adds a second operand pair and result merge;
    ``correction_stage`` adds a BCD-style +6 corrector on the primary
    result (as in the 8-bit ALU c3540).
    """
    if width < 2:
        raise NetlistError(f"ALU width must be >= 2, got {width}")
    builder = CircuitBuilder(name or f"alu{width}")
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    sub = builder.input("sub")
    op0 = builder.input("op0")
    op1 = builder.input("op1")

    result, carry, overflow = _datapath(builder, a, b, sub, op0, op1, "dp0")

    if dual_datapath:
        c_bus = builder.input_bus("c", width)
        d_bus = builder.input_bus("d", width)
        merge = builder.input("merge")
        result2, carry2, overflow2 = _datapath(
            builder, c_bus, d_bus, sub, op1, op0, "dp1"
        )
        merged = [
            builder.mux(merge, result[i], result2[i]) for i in range(width)
        ]
        result = merged
        carry = builder.mux(merge, carry, carry2)
        overflow = builder.mux(merge, overflow, overflow2)

    if correction_stage:
        # BCD-style correction: when the low nibble exceeds 9, add 6.
        if width >= 4:
            gt9 = builder.and_(
                result[3], builder.or_(result[2], result[1])
            )
            adjust = builder.or_(gt9, carry)
            carry_c = None
            corrected = list(result)
            for i in (1, 2):  # +6 = 0b0110 touches bits 1 and 2
                bit_in = corrected[i]
                add_bit = adjust if carry_c is None else carry_c
                corrected[i] = builder.xor(bit_in, add_bit)
                carry_c = builder.and_(bit_in, add_bit)
            if carry_c is not None and width > 3:
                corrected[3] = builder.xor(corrected[3], carry_c)
            result = corrected

    zero = builder.not_(builder.or_(*result))
    parity = _xor_tree(builder, result)
    for i, bit in enumerate(result):
        builder.output(bit, name=f"f[{i}]")
    builder.output(carry, name="cout")
    builder.output(overflow, name="ovf")
    builder.output(zero, name="zero")
    builder.output(parity, name="par")

    circuit = buffer_high_fanout(builder.build(), max_fanout=8)
    if mapped:
        circuit = map_to_primitives(circuit, suffix="")
    return circuit.freeze()
