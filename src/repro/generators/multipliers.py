"""Carry-save array multiplier generator (the c6288 equivalent).

The real c6288 is a 16x16 array multiplier built from 240 full adders
and 16 half adders (2416 gates).  This generator produces the same
architecture: AND2 partial products feeding a carry-save adder array
row by row, with a final ripple chain — full adders in the 9-NAND
style.  At 16x16 it yields ~2400 primitive gates, within a few percent
of c6288, and shares the property the paper calls out for it: a huge
number of reconvergent, simultaneously-critical paths.

Functional correctness is checked against integer multiplication in
the test suite (small widths, exhaustive / random vectors).
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.errors import NetlistError
from repro.generators.arith import full_adder, half_adder

__all__ = ["array_multiplier"]


def _add_column(
    builder: CircuitBuilder,
    terms: list[str],
    style: str,
) -> tuple[str, str | None]:
    """Sum 1-3 equal-weight bits; returns (sum, carry-or-None)."""
    if len(terms) == 1:
        return terms[0], None
    if len(terms) == 2:
        return half_adder(builder, terms[0], terms[1], style=style)
    if len(terms) == 3:
        return full_adder(builder, terms[0], terms[1], terms[2], style=style)
    raise NetlistError(f"column with {len(terms)} terms")


def array_multiplier(
    width: int,
    style: str = "nand",
    name: str | None = None,
) -> Circuit:
    """An unsigned ``width x width`` carry-save array multiplier."""
    if width < 2:
        raise NetlistError(f"multiplier width must be >= 2, got {width}")
    builder = CircuitBuilder(name or f"mult{width}x{width}")
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)

    # Partial products pp[i][j] = a[j] AND b[i], weight i + j.
    pp = [
        [builder.and_(a[j], b[i]) for j in range(width)]
        for i in range(width)
    ]

    product: list[str] = []
    # After processing row i, sums[j] has weight i + j and carries[j]
    # (possibly None) has weight i + j + 1.
    sums = list(pp[0])
    carries: list[str | None] = [None] * width
    product.append(sums[0])

    for i in range(1, width):
        new_sums: list[str] = []
        new_carries: list[str | None] = []
        for j in range(width):
            terms = [pp[i][j]]
            if j + 1 < width:
                terms.append(sums[j + 1])
            if carries[j] is not None:
                terms.append(carries[j])  # type: ignore[arg-type]
            s, c = _add_column(builder, terms, style)
            new_sums.append(s)
            new_carries.append(c)
        sums, carries = new_sums, new_carries
        product.append(sums[0])

    # Final ripple merge of the leftover carry-save vectors.
    ripple: str | None = None
    for j in range(1, width):
        terms = [sums[j]]
        if carries[j - 1] is not None:
            terms.append(carries[j - 1])  # type: ignore[arg-type]
        if ripple is not None:
            terms.append(ripple)
        s, ripple_out = _add_column(builder, terms, style)
        product.append(s)
        ripple = ripple_out

    # Weight 2w-1: at most one of (final ripple carry, top row carry)
    # can be set — the product never reaches 2^(2w).
    top_terms = [t for t in (ripple, carries[width - 1]) if t is not None]
    if len(top_terms) == 2:
        product.append(builder.or_(top_terms[0], top_terms[1]))
    elif top_terms:
        product.append(builder.buf(top_terms[0]))

    for k, net in enumerate(product):
        builder.output(net, name=f"p[{k}]")
    return builder.build()
