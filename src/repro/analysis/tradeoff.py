"""Area-delay trade-off sweeps (the machinery behind figure 7).

For a list of delay targets (as fractions of the minimum-sized
circuit's delay), size the circuit with TILOS and with MINFLOTRANSIT
and record normalized areas.  TILOS runs are warm-started from the
previous (looser) target's solution — sizes only ever grow along the
sweep, so this matches cold-start results while saving most of the
bumps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


from repro.dag.circuit_dag import SizingDag
from repro.sizing.minflo import MinfloOptions, minflotransit
from repro.sizing.tilos import TilosOptions, tilos_size
from repro.timing.sta import GraphTimer

__all__ = ["CurvePoint", "TradeoffCurve", "area_delay_curve"]


@dataclass(frozen=True)
class CurvePoint:
    """One sweep point; areas are normalized to the min-sized circuit."""

    delay_ratio: float
    target: float
    tilos_area_ratio: float | None
    minflo_area_ratio: float | None
    tilos_seconds: float
    minflo_seconds: float
    saving_percent: float | None


@dataclass
class TradeoffCurve:
    name: str
    d_min: float
    min_area: float
    points: list[CurvePoint] = field(default_factory=list)

    def series(self, which: str) -> list[tuple[float, float]]:
        """(delay ratio, area ratio) pairs for 'tilos' or 'minflo'."""
        out = []
        for p in self.points:
            value = (
                p.tilos_area_ratio if which == "tilos" else p.minflo_area_ratio
            )
            if value is not None:
                out.append((p.delay_ratio, value))
        return out


def area_delay_curve(
    dag: SizingDag,
    delay_ratios: list[float],
    run_minflo: bool = True,
    tilos_options: TilosOptions | None = None,
    minflo_options: MinfloOptions | None = None,
) -> TradeoffCurve:
    """Sweep delay targets and size with both tools.

    Ratios are processed loosest-first so TILOS warm starts apply;
    infeasible targets produce points with ``None`` areas.
    """
    timer = GraphTimer(dag)
    x_min = dag.min_sizes()
    d_min = timer.analyze(dag.delays(x_min)).critical_path_delay
    min_area = dag.area(x_min)
    curve = TradeoffCurve(name=dag.name, d_min=d_min, min_area=min_area)

    warm = x_min
    for ratio in sorted(delay_ratios, reverse=True):
        target = ratio * d_min
        start = time.perf_counter()
        seed = tilos_size(
            dag, target, options=tilos_options, x0=warm, timer=timer
        )
        tilos_seconds = time.perf_counter() - start
        if not seed.feasible:
            curve.points.append(
                CurvePoint(
                    delay_ratio=ratio,
                    target=target,
                    tilos_area_ratio=None,
                    minflo_area_ratio=None,
                    tilos_seconds=tilos_seconds,
                    minflo_seconds=0.0,
                    saving_percent=None,
                )
            )
            continue
        warm = seed.x
        minflo_ratio = None
        saving = None
        minflo_seconds = 0.0
        if run_minflo:
            start = time.perf_counter()
            result = minflotransit(
                dag, target, options=minflo_options, x0=seed.x
            )
            minflo_seconds = time.perf_counter() - start
            minflo_ratio = result.area / min_area
            saving = 100.0 * (1.0 - result.area / seed.area)
        curve.points.append(
            CurvePoint(
                delay_ratio=ratio,
                target=target,
                tilos_area_ratio=seed.area / min_area,
                minflo_area_ratio=minflo_ratio,
                tilos_seconds=tilos_seconds,
                minflo_seconds=minflo_seconds,
                saving_percent=saving,
            )
        )
    curve.points.sort(key=lambda p: p.delay_ratio)
    return curve
