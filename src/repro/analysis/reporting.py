"""Plain-text tables and plots for the experiment harnesses.

The paper's artefacts are one table and one two-panel figure; these
helpers render both on a terminal (no plotting dependencies), matching
the rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["format_table", "ascii_plot"]


def format_table(
    headers: list[str],
    rows: list[list[str]],
    title: str | None = None,
) -> str:
    """Monospace table with column auto-sizing."""
    widths = [len(h) for h in headers]
    for row in rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    line = "  ".join(h.ljust(widths[k]) for k, h in enumerate(headers))
    rule = "-" * len(line)
    body = [
        "  ".join(cell.ljust(widths[k]) for k, cell in enumerate(row))
        for row in rows
    ]
    parts = []
    if title:
        parts += [title, "=" * len(title)]
    parts += [line, rule, *body]
    return "\n".join(parts)


@dataclass
class _Series:
    label: str
    marker: str
    points: list[tuple[float, float]]


def ascii_plot(
    series: list[tuple[str, list[tuple[float, float]]]],
    width: int = 68,
    height: int = 22,
    x_label: str = "",
    y_label: str = "",
    title: str | None = None,
) -> str:
    """Scatter/line plot on a character grid (the figure-7 renderer).

    ``series`` is a list of (label, [(x, y), ...]); each series gets a
    distinct marker.  Axis ranges cover all points with a small margin.
    """
    markers = "ox+*#@"
    data = [
        _Series(label, markers[i % len(markers)], pts)
        for i, (label, pts) in enumerate(series)
        if pts
    ]
    if not data:
        return "(no data)"
    xs = [p[0] for s in data for p in s.points]
    ys = [p[1] for s in data for p in s.points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_pad = 0.05 * (x_hi - x_lo or 1.0)
    y_pad = 0.05 * (y_hi - y_lo or 1.0)
    x_lo, x_hi = x_lo - x_pad, x_hi + x_pad
    y_lo, y_hi = y_lo - y_pad, y_hi + y_pad

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    for s in data:
        for x, y in sorted(s.points):
            place(x, y, s.marker)

    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label)
    for r, row in enumerate(grid):
        tag = ""
        if r == 0:
            tag = f"{y_hi:.2f}"
        elif r == height - 1:
            tag = f"{y_lo:.2f}"
        lines.append(f"{tag:>7s} |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(
        " " * 8 + f"{x_lo:.2f}" + " " * (width - 12) + f"{x_hi:.2f}"
    )
    if x_label:
        lines.append(" " * 8 + x_label.center(width))
    legend = "   ".join(f"{s.marker} = {s.label}" for s in data)
    lines.append(" " * 8 + legend)
    return "\n".join(lines)
