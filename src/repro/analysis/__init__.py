"""Analysis utilities: trade-off sweeps and plain-text reporting."""

from repro.analysis.reporting import ascii_plot, format_table
from repro.analysis.tradeoff import CurvePoint, TradeoffCurve, area_delay_curve

__all__ = [
    "CurvePoint",
    "TradeoffCurve",
    "area_delay_curve",
    "ascii_plot",
    "format_table",
]
