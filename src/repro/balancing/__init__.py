"""Delay balancing and FSDU displacement (paper section 2.3.1)."""

from repro.balancing.fsdu import (
    FsduConfiguration,
    balance,
    displace,
    verify_configuration,
)

__all__ = ["FsduConfiguration", "balance", "displace", "verify_configuration"]
