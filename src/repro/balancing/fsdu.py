"""Delay balancing with Fictitious Specific Delay Units (FSDUs).

A circuit DAG is *delay balanced* when fictitious delay units on its
edges make every source-to-sink path take exactly the horizon ``H``
(the critical path delay, or the delay target).  The FSDUs capture all
slack in the circuit; the D-phase then *displaces* them (equation (9))
to move delay budget where it buys the most area.

Balanced configurations are produced from a *schedule* θ — a potential
with ``θ(v) >= θ(u) + delay(u)`` on every edge:

    FSDU(u -> v)    = θ(v) - θ(u) - delay(u)     >= 0
    FSDU(leaf -> O) = H - θ(leaf) - delay(leaf)  >= 0

* ``asap`` uses θ = arrival times (FSDUs pushed late),
* ``alap`` uses θ = required times (FSDUs pushed early),
* ``dfs``  uses the depth-first insertion heuristic of reference [13]:
  θ(v) is fixed to the arrival time of a depth-first spanning forest
  walk, which concentrates FSDUs on non-tree edges.

Theorem 1 (all legal balanced configurations are FSDU-displacements of
each other) and theorem 2 (path-delay change equals r(j) - r(i)) are
exercised by the test suite through :func:`displace`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.circuit_dag import SizingDag
from repro.errors import BalancingError
from repro.timing.sta import GraphTimer

__all__ = ["FsduConfiguration", "balance", "displace", "verify_configuration"]

_METHODS = ("asap", "alap", "dfs")


@dataclass
class FsduConfiguration:
    """FSDU values for one balanced configuration of a DAG.

    Arrays align with ``dag.edges`` (wire edges), ``dag.po_vertices``
    (edges into the common sink O) and vertices (the ``i -> Dmy(i)``
    delay edges of the transformed DAG, zero for a fresh balance).
    """

    dag: SizingDag
    delay: np.ndarray
    horizon: float
    theta: np.ndarray
    wire_fsdu: np.ndarray
    po_fsdu: np.ndarray
    delay_fsdu: np.ndarray

    @property
    def total_fsdu(self) -> float:
        """Total fictitious delay inserted (a measure of captured slack)."""
        return float(
            self.wire_fsdu.sum() + self.po_fsdu.sum() + self.delay_fsdu.sum()
        )

    def effective_delay(self) -> np.ndarray:
        """Vertex delays including any displaced delay-edge FSDU.

        After the D-phase displacement, the FSDU on ``i -> Dmy(i)``
        *is* the change of vertex i's delay budget.
        """
        return self.delay + self.delay_fsdu


def balance(
    dag: SizingDag,
    delay: np.ndarray,
    horizon: float | None = None,
    method: str = "asap",
    timer: GraphTimer | None = None,
    report=None,
) -> FsduConfiguration:
    """Produce a delay-balanced configuration.

    Raises :class:`BalancingError` if the circuit misses the horizon
    (some path longer than ``H`` — balancing needs a safe circuit).

    ``report`` skips the internal timing analysis: callers that already
    maintain valid timing for ``delay`` (e.g. the incremental engine's
    :meth:`~repro.timing.IncrementalTimer.report`) pass it so balancing
    costs no full STA pass.  The report's ``at``/``rt`` must correspond
    to ``delay``; its ``rt`` is used only when its horizon matches.
    """
    if method not in _METHODS:
        raise BalancingError(
            f"unknown balancing method {method!r}; pick from {_METHODS}"
        )
    delay = np.asarray(delay, dtype=float)
    if report is None:
        timer = timer or GraphTimer(dag)
        report = timer.analyze(delay)
    if horizon is None:
        horizon = report.critical_path_delay
    if report.critical_path_delay > horizon * (1 + 1e-9):
        raise BalancingError(
            f"critical path {report.critical_path_delay:.6g} exceeds "
            f"horizon {horizon:.6g}; circuit is not safe"
        )

    if method == "asap":
        theta = report.at
    elif method == "alap":
        if report.horizon == horizon:
            rt = report.rt
        else:
            rt = (timer or GraphTimer(dag)).required_times(delay, horizon)
        # Dangling vertices have infinite required time; schedule them
        # as early as possible instead.
        theta = np.where(np.isfinite(rt), rt, report.at)
        theta = np.maximum(theta, report.at)  # numerical safety
        # Every complete path starts at time zero (corollary 1 pins the
        # source potentials), so sources stay at schedule zero and their
        # slack lands on their outgoing edges.
        theta[dag.sources] = 0.0
    else:
        theta = _dfs_schedule(dag, delay, report.at)

    src, dst = dag.edge_src, dag.edge_dst
    wire = theta[dst] - theta[src] - delay[src]
    po = np.array(
        [horizon - theta[leaf] - delay[leaf] for leaf in dag.po_vertices]
    )
    config = FsduConfiguration(
        dag=dag,
        delay=delay,
        horizon=float(horizon),
        theta=theta,
        wire_fsdu=_clip_tiny(wire, horizon),
        po_fsdu=_clip_tiny(po, horizon),
        delay_fsdu=np.zeros(dag.n),
    )
    verify_configuration(config)
    return config


def _dfs_schedule(
    dag: SizingDag, delay: np.ndarray, at: np.ndarray
) -> np.ndarray:
    """Depth-first schedule: θ equals AT (tree edges get zero FSDU on the
    first-visited deep path), matching the effect of the depth-first
    insertion heuristic of [13] on tree edges while remaining legal on
    reconvergent edges."""
    theta = np.full(dag.n, -1.0)
    for source in dag.sources:
        stack = [(source, 0.0)]
        while stack:
            vertex, time = stack.pop()
            if theta[vertex] >= 0:
                continue
            # A vertex is scheduled at its arrival time; depth-first
            # order only affects tie-breaking of equal-length paths.
            theta[vertex] = at[vertex]
            for succ in dag.fanout[vertex]:
                if theta[succ] < 0:
                    stack.append((succ, theta[vertex] + delay[vertex]))
    theta[theta < 0] = at[theta < 0]
    return theta


def _clip_tiny(values: np.ndarray, horizon: float) -> np.ndarray:
    """Zero out numerical noise; negative beyond tolerance is an error."""
    tol = 1e-9 * max(horizon, 1.0)
    if np.any(values < -tol):
        worst = float(values.min())
        raise BalancingError(f"negative FSDU {worst:.3g} produced")
    return np.maximum(values, 0.0)


def displace(
    config: FsduConfiguration,
    r_vertex: np.ndarray,
    r_dummy: np.ndarray,
    r_sink: float = 0.0,
) -> FsduConfiguration:
    """Apply an FSDU displacement (paper equation (9)).

    ``r_vertex[i]`` is r(i) for original vertices, ``r_dummy[i]`` is
    r(Dmy(i)); the common sink O has potential ``r_sink``.  Returns the
    displaced configuration (raises if any FSDU would go negative).
    """
    dag = config.dag
    src, dst = dag.edge_src, dag.edge_dst
    wire = config.wire_fsdu + r_vertex[dst] - r_dummy[src]
    po = config.po_fsdu + r_sink - r_dummy[np.array(dag.po_vertices)]
    delay_edge = config.delay_fsdu + r_dummy - r_vertex
    horizon = config.horizon
    return FsduConfiguration(
        dag=dag,
        delay=config.delay,
        horizon=horizon,
        theta=config.theta,  # schedule of the pre-displacement config
        wire_fsdu=_clip_tiny(wire, horizon),
        po_fsdu=_clip_tiny(po, horizon),
        delay_fsdu=delay_edge,  # may be negative: it is a delay *change*
    )


def verify_configuration(
    config: FsduConfiguration, tol: float = 1e-6
) -> None:
    """Check legality: every source-to-sink path totals the horizon.

    Propagates a schedule from the sources using the balance equalities
    and confirms consistency at reconvergence points and at the sink.
    Raises :class:`BalancingError` on violation.
    """
    dag = config.dag
    scale = max(config.horizon, 1.0)
    bound = tol * scale
    effective = config.effective_delay()
    if np.any(config.wire_fsdu < -bound) or np.any(config.po_fsdu < -bound):
        raise BalancingError("configuration has negative FSDUs")

    theta = np.full(dag.n, np.nan)
    edge_lookup = {edge: k for k, edge in enumerate(dag.edges)}
    for source in dag.sources:
        theta[source] = 0.0
    for u in dag.topo_order:
        if np.isnan(theta[u]):
            raise BalancingError(f"vertex {u} unreachable from sources")
        departure = theta[u] + effective[u]
        for v in dag.fanout[u]:
            arrival = departure + config.wire_fsdu[edge_lookup[(u, v)]]
            if np.isnan(theta[v]):
                theta[v] = arrival
            elif abs(theta[v] - arrival) > bound:
                raise BalancingError(
                    f"unbalanced reconvergence at vertex {v}: "
                    f"{theta[v]:.6g} vs {arrival:.6g}"
                )
    for position, leaf in enumerate(dag.po_vertices):
        finish = theta[leaf] + effective[leaf] + config.po_fsdu[position]
        if abs(finish - config.horizon) > bound:
            raise BalancingError(
                f"path through output leaf {leaf} totals {finish:.6g}, "
                f"horizon is {config.horizon:.6g}"
            )
