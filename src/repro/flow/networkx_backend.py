"""networkx ``network_simplex`` backend.

Closest in spirit to the paper's solver (a network simplex variant,
reference [9]).  ``network_simplex`` returns flows only, so the primal
potentials ``r`` are recovered by a shortest-path pass over the
*residual* graph from the ground node: at optimality the residual
graph has no negative cycle, and residual distances ``d`` satisfy every
reduced-cost constraint, making ``r(v) = -d(v)`` an optimal primal
solution (complementary slackness holds where flow is positive).

networkx's simplex requires integer-valued data for exactness; the
D-phase integerizes costs and supplies before reaching this module
(paper section 2.3.1: "integerized by appropriate scaling ... powers of
10"), and this backend rounds defensively.
"""

from __future__ import annotations

from collections import deque

import networkx as nx
import numpy as np

from repro.errors import FlowError, InfeasibleFlowError, UnboundedFlowError
from repro.flow.duality import (
    DifferenceConstraintLP,
    LpSolution,
    ground_flow,
    integerize_supplies,
    integerize_values,
    recover_r,
)

__all__ = ["solve_lp_networkx", "residual_distances"]


def solve_lp_networkx(lp: DifferenceConstraintLP) -> LpSolution:
    """Solve a difference LP via ``networkx.network_simplex`` on its dual."""
    grounded = ground_flow(lp)
    problem = grounded.problem
    assert problem.supply is not None

    supplies = integerize_supplies(problem.supply, grounded.ground)

    graph = nx.DiGraph()
    for node in range(problem.n_nodes):
        graph.add_node(node, demand=-int(supplies[node]))
    for arc in problem.arcs:
        weight = int(integerize_values(arc.cost))
        if (arc.src, arc.dst) in graph.edges:
            weight = min(weight, graph.edges[arc.src, arc.dst]["weight"])
        graph.add_edge(arc.src, arc.dst, weight=weight)

    try:
        _cost, flow_dict = nx.network_simplex(graph)
    except nx.NetworkXUnfeasible as exc:
        raise InfeasibleFlowError(str(exc)) from exc
    except nx.NetworkXUnbounded as exc:
        raise UnboundedFlowError(str(exc)) from exc

    distances = residual_distances(graph, flow_dict, grounded.ground)
    potentials = distances  # r(v) = -d(v); recover_r negates via ground.
    r = recover_r(grounded, potentials, lp.n_nodes)
    # recover_r computes π(g) - π(v) = d(g) - d(v) = -d(v) since d(g)=0.
    return LpSolution(r=r, objective=lp.objective(r), backend="networkx")


def residual_distances(
    graph: nx.DiGraph, flow_dict: dict, ground: int
) -> np.ndarray:
    """Shortest distances from ``ground`` in the residual graph (SPFA).

    Residual arcs: every graph arc forward at its weight; backward at
    negated weight wherever flow is positive.  The optimal flow has no
    negative residual cycle, so SPFA terminates.
    """
    arcs: dict[int, list[tuple[int, float]]] = {}
    for u, v, attributes in graph.edges(data=True):
        weight = float(attributes.get("weight", 0.0))
        arcs.setdefault(u, []).append((v, weight))
        if flow_dict.get(u, {}).get(v, 0) > 0:
            arcs.setdefault(v, []).append((u, -weight))

    n = graph.number_of_nodes()
    dist = np.full(n, np.inf)
    dist[ground] = 0.0
    in_queue = np.zeros(n, dtype=bool)
    queue: deque[int] = deque([ground])
    in_queue[ground] = True
    relaxations = 0
    limit = 4 * n * max(1, graph.number_of_edges())
    while queue:
        u = queue.popleft()
        in_queue[u] = False
        for v, weight in arcs.get(u, []):
            candidate = dist[u] + weight
            if candidate < dist[v] - 1e-9:
                dist[v] = candidate
                relaxations += 1
                if relaxations > limit:
                    raise FlowError(
                        "residual graph relaxation did not converge "
                        "(negative cycle?)"
                    )
                if not in_queue[v]:
                    queue.append(v)
                    in_queue[v] = True
    if np.any(np.isinf(dist)):
        unreachable = int(np.flatnonzero(np.isinf(dist))[0])
        raise FlowError(
            f"node {unreachable} unreachable from ground in residual graph"
        )
    return dist
