"""Flow backend registry: discovery, capability metadata, auto-selection.

Every D-phase LP solver registers here by name with a capability record
(:class:`BackendCapabilities`), replacing the ad-hoc if/elif dispatch
that used to live in :func:`repro.flow.duality.solve_difference_lp`.
The registry owns three responsibilities:

* **Lookup** — :func:`get_backend` resolves a user-facing name
  (``--flow-backend``) to a solver, with a helpful error listing the
  registered names.
* **Auto-selection** — :func:`select_backend` picks a backend for a
  concrete instance from capability metadata: availability of the
  underlying dependency, a soft instance-size cap, and priority.
* **Statistics** — every solve routed through
  :func:`repro.flow.duality.solve_difference_lp` records a
  :class:`SolveStats` here; :func:`solver_statistics` exposes the
  per-backend running totals (augmentations, relaxation work, wall
  time), which the CLI prints under ``--flow-stats``.

The module deliberately imports nothing from the rest of the flow
package at import time; backend modules are imported lazily on first
lookup, so registering a backend can never create an import cycle.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.errors import FlowError

__all__ = [
    "BACKEND_NAMES",
    "BackendCapabilities",
    "FlowBackend",
    "SolveStats",
    "get_backend",
    "register_backend",
    "registered_backends",
    "reset_solver_statistics",
    "select_backend",
    "solver_statistics",
    "stats_scope",
]

#: Canonical backend names, in documentation order.  Kept static so
#: importing it never forces the (heavier) backend modules to load.
BACKEND_NAMES = ("ssp", "ssp-legacy", "networkx", "scipy")


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do, used by :func:`select_backend`."""

    #: Exact on integer-valued costs/supplies (no LP tolerance noise).
    exact_integer: bool
    #: Returns optimal node potentials (duals) directly, without a
    #: residual-graph recovery pass.
    returns_duals: bool
    #: Implemented in this library (numpy only, no optional dependency).
    native: bool
    #: Whether the auto-picker may choose this backend.
    auto_eligible: bool = True
    #: Soft cap on constraint count for auto-selection (None = no cap).
    max_constraints: int | None = None
    #: Accepts a ``warm_start`` basis from a previous solve of a
    #: structurally identical instance (``solve(lp, warm_start=...)``).
    supports_warm_start: bool = False


@dataclass
class SolveStats:
    """Counters collected on every solve routed through the registry."""

    backend: str
    n_nodes: int = 0
    n_arcs: int = 0
    #: Augmenting paths pushed (native engines only).
    augmentations: int = 0
    #: Potential updates / shortest-path rounds (native engines only).
    sp_rounds: int = 0
    #: Edge-parallel relaxation sweeps (native engines only).
    relax_passes: int = 0
    #: Individual distance-label improvements — the array engine's
    #: analogue of Dijkstra heap pops.
    dijkstra_pops: int = 0
    #: Solves that started from a warm basis (native array engine only).
    warm_solves: int = 0
    #: Flow units retained from the warm basis instead of re-routed.
    warm_flow_reused: float = 0.0
    #: Supply the augmentation loop actually had to route; on a cold
    #: solve this is the full positive supply, on a warm solve only the
    #: divergence gap — the difference is the warm-start saving.
    supply_routed: float = 0.0
    wall_time_s: float = 0.0
    solves: int = 1

    def merge(self, other: "SolveStats") -> None:
        """Fold another solve's counters into this running total."""
        self.augmentations += other.augmentations
        self.sp_rounds += other.sp_rounds
        self.relax_passes += other.relax_passes
        self.dijkstra_pops += other.dijkstra_pops
        self.warm_solves += other.warm_solves
        self.warm_flow_reused += other.warm_flow_reused
        self.supply_routed += other.supply_routed
        self.wall_time_s += other.wall_time_s
        self.solves += other.solves
        self.n_nodes = max(self.n_nodes, other.n_nodes)
        self.n_arcs = max(self.n_arcs, other.n_arcs)


@dataclass(frozen=True)
class FlowBackend:
    """A registered LP solver plus the metadata the picker needs."""

    name: str
    #: ``solve(lp: DifferenceConstraintLP) -> LpSolution``.
    solve: Callable
    capabilities: BackendCapabilities
    #: Higher wins in auto-selection among eligible backends.
    priority: int = 0
    #: Probe for the underlying dependency (import check).
    available: Callable[[], bool] = field(default=lambda: True)


_REGISTRY: dict[str, FlowBackend] = {}
_TOTALS: dict[str, SolveStats] = {}


def register_backend(backend: FlowBackend) -> FlowBackend:
    """Register (or replace) a backend under ``backend.name``."""
    _REGISTRY[backend.name] = backend
    return backend


def _ensure_default_backends() -> None:
    """Lazily register the built-in backends on first lookup."""
    if "ssp" in _REGISTRY:
        return

    def _solve_ssp(lp, warm_start=None):
        from repro.flow.arrayssp import solve_lp_ssp

        return solve_lp_ssp(lp, warm_start=warm_start)

    def _solve_ssp_legacy(lp):
        from repro.flow.ssp import solve_lp_ssp_reference

        return solve_lp_ssp_reference(lp)

    def _solve_networkx(lp):
        from repro.flow.networkx_backend import solve_lp_networkx

        return solve_lp_networkx(lp)

    def _solve_scipy(lp):
        from repro.flow.scipy_backend import solve_lp_scipy

        return solve_lp_scipy(lp)

    def _has_networkx() -> bool:
        try:
            import networkx  # noqa: F401
        except ImportError:
            return False
        return True

    def _has_scipy() -> bool:
        try:
            from scipy.optimize import linprog  # noqa: F401
        except ImportError:
            return False
        return True

    # Auto policy, measured on randomized difference LPs and smoke-tier
    # D-phase instances (see benchmarks/run_flow_bench.py): the native
    # array engine wins below ~100 constraints (no LP setup overhead,
    # exact integer arithmetic); above that HiGHS takes over; network
    # simplex is the no-scipy fallback until its Python overhead blows
    # up on big graphs.
    register_backend(FlowBackend(
        name="ssp",
        solve=_solve_ssp,
        capabilities=BackendCapabilities(
            exact_integer=True, returns_duals=True, native=True,
            max_constraints=128, supports_warm_start=True,
        ),
        priority=100,
    ))
    register_backend(FlowBackend(
        name="ssp-legacy",
        solve=_solve_ssp_legacy,
        capabilities=BackendCapabilities(
            exact_integer=True, returns_duals=True, native=True,
            auto_eligible=False,
        ),
        priority=0,
    ))
    register_backend(FlowBackend(
        name="networkx",
        solve=_solve_networkx,
        capabilities=BackendCapabilities(
            exact_integer=True, returns_duals=False, native=False,
            auto_eligible=True, max_constraints=20_000,
        ),
        priority=10,
        available=_has_networkx,
    ))
    register_backend(FlowBackend(
        name="scipy",
        solve=_solve_scipy,
        capabilities=BackendCapabilities(
            exact_integer=False, returns_duals=True, native=False,
        ),
        priority=90,
        available=_has_scipy,
    ))


def registered_backends() -> tuple[FlowBackend, ...]:
    """All registered backends, highest auto-selection priority first."""
    _ensure_default_backends()
    return tuple(
        sorted(_REGISTRY.values(), key=lambda b: -b.priority)
    )


def get_backend(name: str) -> FlowBackend:
    """Look a backend up by exact name; FlowError lists known names."""
    _ensure_default_backends()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise FlowError(
            f"unknown flow backend {name!r}; registered: {known} (or 'auto')"
        ) from None


def select_backend(n_constraints: int, hint: str = "auto") -> FlowBackend:
    """Resolve ``hint`` to a backend for an instance of the given size.

    ``hint="auto"`` picks the highest-priority eligible backend whose
    dependency imports and whose ``max_constraints`` cap (if any)
    admits the instance; any other hint is an exact name lookup.
    """
    if hint != "auto":
        return get_backend(hint)
    candidates = [
        backend for backend in registered_backends()
        if backend.capabilities.auto_eligible and backend.available()
    ]
    for backend in candidates:
        cap = backend.capabilities.max_constraints
        if cap is not None and n_constraints > cap:
            continue
        return backend
    # Size caps are soft preferences: when every in-cap backend is
    # unavailable (e.g. no scipy on a large instance), fall back to the
    # best available backend rather than refusing to solve.
    if candidates:
        return candidates[0]
    raise FlowError(
        "no registered flow backend is available for auto-selection"
    )


def record_stats(stats: SolveStats) -> None:
    """Fold one solve's counters into the per-backend running totals."""
    total = _TOTALS.get(stats.backend)
    if total is None:
        _TOTALS[stats.backend] = replace(stats)
    else:
        total.merge(stats)


def solver_statistics() -> dict[str, SolveStats]:
    """Snapshot of per-backend totals since the last reset."""
    return {name: replace(total) for name, total in _TOTALS.items()}


def reset_solver_statistics() -> None:
    """Zero the per-backend running totals."""
    _TOTALS.clear()


@contextmanager
def stats_scope():
    """Collect solver statistics for exactly the enclosed work.

    The module-level totals are cumulative since import, which makes
    them wrong for any consumer that needs *per-run* numbers (the CLI's
    ``--flow-stats``, the campaign executor's per-job telemetry): totals
    from earlier runs in the same process would leak in.  This context
    manager isolates a scope — the yielded dict is filled with the
    scope's own per-backend :class:`SolveStats` on exit — and then folds
    the scoped counters back into the outer totals so nested/global
    accounting still adds up.

    Usage::

        with stats_scope() as scoped:
            minflotransit(...)
        print(scoped)   # only this run's solves
    """
    outer = {name: replace(total) for name, total in _TOTALS.items()}
    _TOTALS.clear()
    scoped: dict[str, SolveStats] = {}
    try:
        yield scoped
    finally:
        scoped.update(
            {name: replace(total) for name, total in _TOTALS.items()}
        )
        for name, total in outer.items():
            mine = _TOTALS.get(name)
            if mine is None:
                _TOTALS[name] = replace(total)
            else:
                mine.merge(total)


def timed_solve(backend: FlowBackend, lp, warm_start=None) -> "object":
    """Run ``backend.solve`` with wall-time + stats accounting.

    Returns the backend's ``LpSolution`` with ``stats`` populated (a
    backend that produced its own counters keeps them; only timing and
    instance-size fields are filled in here).  ``warm_start`` is
    forwarded only to backends whose capabilities advertise
    ``supports_warm_start``; other backends solve cold.
    """
    start = time.perf_counter()
    if warm_start is not None and backend.capabilities.supports_warm_start:
        solution = backend.solve(lp, warm_start=warm_start)
    else:
        solution = backend.solve(lp)
    wall = time.perf_counter() - start
    stats = getattr(solution, "stats", None)
    if stats is None:
        stats = SolveStats(backend=backend.name)
    stats.backend = backend.name
    stats.n_nodes = lp.n_nodes
    stats.n_arcs = len(lp.constraints)
    stats.wall_time_s = wall
    solution.stats = stats
    record_stats(stats)
    return solution
