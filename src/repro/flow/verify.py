"""Optimality and feasibility checkers for flow/LP solutions.

Used by the test suite to certify solver correctness independently of
any reference implementation:

* flow conservation and capacity feasibility,
* reduced-cost optimality (``cost + π(u) - π(v) >= 0`` on residual arcs),
* complementary slackness between an LP solution and a flow solution,
* strong duality (LP objective == flow cost).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FlowError
from repro.flow.network import FlowSolution

__all__ = ["check_flow_feasible", "check_flow_optimal"]


def check_flow_feasible(solution: FlowSolution, tol: float = 1e-6) -> None:
    """Raise unless the flow satisfies capacities and conservation."""
    problem = solution.problem
    assert problem.supply is not None
    scale = 1.0 + problem.total_positive_supply
    balance = -problem.supply.astype(float).copy()
    for k, arc in enumerate(problem.arcs):
        f = solution.flow[k]
        if f < -tol * scale:
            raise FlowError(f"negative flow {f:.3g} on arc {k}")
        if arc.capacity is not None and f > arc.capacity + tol * scale:
            raise FlowError(
                f"arc {k} over capacity: {f:.6g} > {arc.capacity:.6g}"
            )
        balance[arc.src] += f
        balance[arc.dst] -= f
    worst = float(np.abs(balance).max()) if len(balance) else 0.0
    if worst > tol * scale:
        node = int(np.abs(balance).argmax())
        raise FlowError(
            f"conservation violated at node {node} by {balance[node]:.6g}"
        )


def check_flow_optimal(solution: FlowSolution, tol: float = 1e-6) -> None:
    """Raise unless reduced costs certify optimality of the flow."""
    check_flow_feasible(solution, tol)
    potentials = solution.potentials
    costs = [abs(arc.cost) for arc in solution.problem.arcs]
    scale = 1.0 + (max(costs) if costs else 0.0)
    for src, dst, _capacity, cost in solution.residual_arcs():
        reduced = cost + potentials[src] - potentials[dst]
        if reduced < -tol * scale:
            raise FlowError(
                f"residual arc {src}->{dst} has reduced cost "
                f"{reduced:.6g} < 0; flow is not optimal"
            )
