"""Array-based successive-shortest-path min-cost flow engine.

This is the library's native D-phase solver, replacing the list-of-lists
``heapq`` implementation kept in :mod:`repro.flow.ssp` as
``solve_ssp_reference``.  Three design decisions give it its speed on
the shallow, DAG-shaped instances the D-phase produces:

* **CSR-style arc arrays.**  The residual graph lives in flat numpy
  arrays (``arc_src``, ``arc_dst``, ``arc_cap``, ``arc_cost``) with the
  classic pairing trick — arc ``2k`` is the forward copy of problem arc
  ``k`` and ``2k ^ 1`` its reverse — so pushing flow is two scatter
  updates and no Python object is touched per arc.

* **Edge-parallel shortest paths.**  Distances are computed by
  vectorized Bellman-Ford-Moore sweeps (``np.minimum.at`` over every
  active arc at once).  The D-phase networks are shallow — a sweep count
  near the circuit depth — so a handful of full-edge numpy passes beats
  a binary heap whose every pop and push runs in the interpreter.  The
  sweeps also absorb negative arc costs with no separate initialization
  pass.

* **Multi-path (primal-dual) augmentation.**  After each potential
  update the solver pushes a full Dinic blocking flow through the
  zero-reduced-cost admissible subgraph instead of a single augmenting
  path, so one shortest-path computation funds many augmentations.
  Every admissible path telescopes to the current shortest-path length,
  which preserves the reduced-cost optimality invariant.

Scratch buffers are allocated once per :class:`ArraySspEngine` and
reused across rounds and across repeated ``solve()`` calls on the same
engine.  (The registry's LP entry point builds a fresh engine per
solve; callers that repeatedly solve one instance can hold the engine
to amortize construction.)
"""

from __future__ import annotations

import numpy as np

from repro.errors import FlowError, InfeasibleFlowError, UnboundedFlowError
from repro.flow.network import FlowProblem, FlowSolution
from repro.flow.registry import SolveStats

__all__ = ["ArraySspEngine", "solve_ssp_array"]

_INF = float("inf")


class ArraySspEngine:
    """Reusable min-cost-flow solver over flat residual-arc arrays."""

    def __init__(self, problem: FlowProblem):
        problem.check_balanced()
        self.problem = problem
        n = problem.n_nodes
        self.source = n
        self.sink = n + 1
        self.n_total = n + 2
        assert problem.supply is not None
        supply = problem.supply

        big = float(np.abs(supply).sum())
        self.needed = float(supply[supply > 0].sum())

        n_arcs = len(problem.arcs)
        src = np.empty(n_arcs, dtype=np.int64)
        dst = np.empty(n_arcs, dtype=np.int64)
        cap = np.empty(n_arcs, dtype=np.float64)
        cost = np.empty(n_arcs, dtype=np.float64)
        for k, arc in enumerate(problem.arcs):
            src[k] = arc.src
            dst[k] = arc.dst
            cap[k] = big if arc.capacity is None else float(arc.capacity)
            cost[k] = arc.cost
        self.has_negative = bool(np.any(cost < 0))

        supply_nodes = np.flatnonzero(supply > 0)
        demand_nodes = np.flatnonzero(supply < 0)
        src = np.concatenate([
            src,
            np.full(len(supply_nodes), self.source, dtype=np.int64),
            demand_nodes.astype(np.int64),
        ])
        dst = np.concatenate([
            dst,
            supply_nodes.astype(np.int64),
            np.full(len(demand_nodes), self.sink, dtype=np.int64),
        ])
        cap = np.concatenate([
            cap, supply[supply_nodes], -supply[demand_nodes]
        ]).astype(np.float64)
        cost = np.concatenate([
            cost, np.zeros(len(supply_nodes) + len(demand_nodes))
        ]).astype(np.float64)

        m = len(src)
        self.n_problem_arcs = n_arcs
        # Interleave forward (even) and reverse (odd) copies: 2k ^ 1 flips.
        self.arc_src = np.empty(2 * m, dtype=np.int64)
        self.arc_dst = np.empty(2 * m, dtype=np.int64)
        self.arc_cost = np.empty(2 * m, dtype=np.float64)
        self.arc_src[0::2] = src
        self.arc_src[1::2] = dst
        self.arc_dst[0::2] = dst
        self.arc_dst[1::2] = src
        self.arc_cost[0::2] = cost
        self.arc_cost[1::2] = -cost
        self._cap0 = np.zeros(2 * m, dtype=np.float64)
        self._cap0[0::2] = cap

        self._eps_cap = 1e-12 * max(1.0, big)
        self._eps_cost = 1e-9 * (
            1.0 + float(np.abs(cost).max(initial=0.0))
        )

        # Scratch buffers, reused across rounds and solves.
        self.arc_cap = np.empty_like(self._cap0)
        self._pot = np.zeros(self.n_total)
        self._dist = np.empty(self.n_total)
        self._clamped = np.empty(self.n_total)
        self._arc_mask = np.zeros(2 * m, dtype=bool)

        # Optional compiled Dijkstra (scipy); the edge-parallel
        # Bellman-Ford sweeps below are the pure-numpy fallback.
        try:
            from scipy import sparse as sparse_mod
            from scipy.sparse import csgraph as csgraph_mod
        except ImportError:  # pragma: no cover - scipy is baked in
            sparse_mod = csgraph_mod = None
        self._sparse = sparse_mod
        self._csgraph = csgraph_mod

    def solve(self, allow_negative: bool = False) -> FlowSolution:
        """Run successive shortest paths; returns a certified solution.

        The returned :class:`FlowSolution` carries a populated
        :class:`~repro.flow.registry.SolveStats` in ``stats``.
        """
        if self.has_negative and not allow_negative:
            raise FlowError(
                "negative arc costs require allow_negative=True "
                "(absorbed by the first Bellman-Ford sweep)"
            )
        cap = self.arc_cap
        np.copyto(cap, self._cap0)
        pot = self._pot
        pot[:] = 0.0
        stats = SolveStats(backend="ssp", n_nodes=self.problem.n_nodes,
                           n_arcs=self.n_problem_arcs)
        if self.has_negative:
            self._initial_potentials(cap, pot, stats)

        shipped = 0.0
        flow_eps = 1e-9 * max(1.0, self.needed)
        # Pure runaway backstop: the sink distance strictly increases
        # every round (each round pushes a max flow of the admissible
        # subgraph), so legitimate instances terminate on their own.
        # Rounds scale with saturations — i.e. arcs, not nodes.
        max_rounds = 32 * (self.n_total + len(self.arc_src)) + 64
        for _round in range(max_rounds):
            if self.needed - shipped <= flow_eps:
                break
            dist = self._shortest_paths(cap, pot, stats)
            if not np.isfinite(dist[self.sink]):
                raise InfeasibleFlowError(
                    f"cannot route {self.needed - shipped:.6g} "
                    "remaining units"
                )
            # pot += min(dist, dist[sink]): the clamped update keeps
            # every residual reduced cost non-negative (unreachable and
            # beyond-sink nodes saturate at the sink distance).
            np.minimum(dist, dist[self.sink], out=self._clamped)
            pot += self._clamped
            stats.sp_rounds += 1
            shipped += self._augment_admissible(cap, pot, dist, stats)
        else:
            raise FlowError(
                "successive-shortest-path rounds did not converge "
                f"within {max_rounds} potential updates"
            )

        n_arcs = self.n_problem_arcs
        flow = cap[1 : 2 * n_arcs : 2].copy()  # reverse cap == flow sent
        total_cost = float(flow @ self.arc_cost[0 : 2 * n_arcs : 2])
        solution = FlowSolution(
            problem=self.problem,
            flow=flow,
            potentials=pot[: self.problem.n_nodes].copy(),
            total_cost=total_cost,
            backend="ssp",
            stats=stats,
        )
        return solution

    def _initial_potentials(
        self, cap: np.ndarray, pot: np.ndarray, stats: SolveStats
    ) -> None:
        """Bellman-Ford potentials that absorb negative arc costs.

        All-zeros initialization treats every node as a virtual source
        (handles disconnection); afterwards every residual reduced cost
        is non-negative, the invariant the main loop maintains.
        """
        active = np.flatnonzero(cap > self._eps_cap)
        asrc = self.arc_src[active]
        adst = self.arc_dst[active]
        cost = self.arc_cost[active]
        dist = self._dist
        dist.fill(0.0)
        for _pass in range(self.n_total + 1):
            candidate = dist[asrc] + cost
            improves = candidate < dist[adst] - self._eps_cost
            if not improves.any():
                pot += dist
                return
            np.minimum.at(dist, adst[improves], candidate[improves])
            stats.relax_passes += 1
        raise UnboundedFlowError("negative-cost cycle detected")

    def _shortest_paths(
        self, cap: np.ndarray, pot: np.ndarray, stats: SolveStats
    ) -> np.ndarray:
        """Reduced-cost shortest distances from the super source.

        Fast path: the residual arcs are deduplicated (parallel arcs
        keep the cheapest copy) into a CSR matrix and handed to scipy's
        compiled Dijkstra.  Reduced costs are non-negative by the
        potential invariant; sub-tolerance negatives from float noise
        are clipped to zero first.

        Fallback (no scipy): edge-parallel Bellman-Ford-Moore — every
        pass relaxes all active residual arcs at once, converging in
        (shortest-path hop diameter) passes on these shallow networks.
        """
        dist = self._dist
        active = np.flatnonzero(cap > self._eps_cap)
        if active.size == 0:
            dist.fill(_INF)
            dist[self.source] = 0.0
            return dist
        asrc = self.arc_src[active]
        adst = self.arc_dst[active]
        rcost = self.arc_cost[active] + pot[asrc] - pot[adst]
        if self._csgraph is not None:
            np.maximum(rcost, 0.0, out=rcost)  # clip tolerance noise
            order = np.lexsort((adst, asrc))
            s2, d2, r2 = asrc[order], adst[order], rcost[order]
            first = np.empty(len(s2), dtype=bool)
            first[0] = True
            np.logical_or(
                np.diff(s2) != 0, np.diff(d2) != 0, out=first[1:]
            )
            starts = np.flatnonzero(first)
            graph = self._sparse.csr_matrix(
                (np.minimum.reduceat(r2, starts),
                 (s2[starts], d2[starts])),
                shape=(self.n_total, self.n_total),
            )
            np.copyto(dist, self._csgraph.dijkstra(
                graph, indices=self.source
            ))
            stats.dijkstra_pops += int(np.isfinite(dist).sum())
            return dist
        dist.fill(_INF)
        dist[self.source] = 0.0
        for _pass in range(self.n_total + 1):
            candidate = dist[asrc] + rcost
            improves = candidate < dist[adst] - self._eps_cost
            if not improves.any():
                return dist
            np.minimum.at(dist, adst[improves], candidate[improves])
            stats.relax_passes += 1
            stats.dijkstra_pops += int(improves.sum())
        raise UnboundedFlowError("negative-cost cycle detected")

    def _augment_admissible(
        self,
        cap: np.ndarray,
        pot: np.ndarray,
        dist: np.ndarray,
        stats: SolveStats,
    ) -> float:
        """Dinic blocking flows on the zero-reduced-cost subgraph.

        Admissible arcs are the distance-tight residual arcs (both
        endpoints on shortest paths no longer than the sink's), plus
        their reverses so flow pushed inside this round can be rerouted.
        Repeats level-BFS + blocking flow until the sink is unreachable,
        i.e. a maximum flow of the admissible subgraph — one shortest
        path computation funds many augmentations.
        """
        eps_cap, eps_cost = self._eps_cap, self._eps_cost
        horizon = dist[self.sink] + eps_cost
        active = np.flatnonzero(cap > eps_cap)
        asrc = self.arc_src[active]
        adst = self.arc_dst[active]
        # pot was just bumped by the clamped distances, so an arc is on
        # a shortest path iff its reduced cost is now zero; the horizon
        # filter drops tight arcs strictly beyond the sink's distance.
        rcost_now = self.arc_cost[active] + pot[asrc] - pot[adst]
        tight = (
            (dist[asrc] <= horizon)
            & (dist[adst] <= horizon)
            & (np.abs(rcost_now) <= eps_cost)
        )
        admissible = active[tight]
        if admissible.size == 0:
            return 0.0
        # Tight arcs plus their reverses (so flow pushed within this
        # round can be rerouted); the mask buffer dedupes arcs whose
        # opposite direction is tight as well.
        mask = self._arc_mask
        mask[admissible] = True
        mask[admissible ^ 1] = True
        arcs = np.flatnonzero(mask)
        mask[arcs] = False  # restore the all-False scratch state

        # Group by source node (CSR layout) with numpy, then drop to
        # plain Python lists for the Dinic phases: the admissible
        # subgraph is small and list indexing is far cheaper than
        # per-element numpy access.
        srcs_arr = self.arc_src[arcs]
        order = np.argsort(srcs_arr, kind="stable")
        arcs = arcs[order]
        srcs_arr = srcs_arr[order]
        adj_start = np.searchsorted(
            srcs_arr, np.arange(self.n_total + 1)
        ).tolist()
        id_order = np.argsort(arcs)
        rev = id_order[
            np.searchsorted(arcs[id_order], arcs ^ 1)
        ].tolist()
        srcs = srcs_arr.tolist()
        dsts = self.arc_dst[arcs].tolist()
        caps = cap[arcs].tolist()

        sink = self.sink
        pushed_total = 0.0
        while True:
            level = self._bfs_levels(adj_start, dsts, caps)
            if level[sink] < 0:
                break
            pushed = self._blocking_flow(
                adj_start, srcs, dsts, caps, rev, level, stats
            )
            if pushed <= 0.0:
                break
            pushed_total += pushed
        cap[arcs] = caps
        return pushed_total

    def _bfs_levels(
        self,
        adj_start: list[int],
        dsts: list[int],
        caps: list[float],
    ) -> list[int]:
        """Level assignment for one Dinic phase (stops at the sink)."""
        eps_cap = self._eps_cap
        sink = self.sink
        level = [-1] * self.n_total
        level[self.source] = 0
        queue = [self.source]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            if u == sink:
                break
            depth = level[u] + 1
            for k in range(adj_start[u], adj_start[u + 1]):
                if caps[k] > eps_cap:
                    v = dsts[k]
                    if level[v] < 0:
                        level[v] = depth
                        queue.append(v)
        return level

    def _blocking_flow(
        self,
        adj_start: list[int],
        srcs: list[int],
        dsts: list[int],
        caps: list[float],
        rev: list[int],
        level: list[int],
        stats: SolveStats,
    ) -> float:
        """Current-arc DFS over the level graph (classic Dinic step).

        Arc indices double as adjacency positions (the arrays are in
        CSR order), so the per-node cursor state is a flat list and the
        inner loop touches no dict and no numpy scalar.
        """
        eps_cap = self._eps_cap
        source, sink = self.source, self.sink
        ptr = adj_start[:-1].copy()
        path: list[int] = []  # arc indices == adjacency positions
        u = source
        pushed_total = 0.0
        while True:
            if u == sink:
                bottleneck = min(caps[k] for k in path)
                cut = len(path)
                for i, k in enumerate(path):
                    caps[k] -= bottleneck
                    caps[rev[k]] += bottleneck
                    if caps[k] <= eps_cap and i < cut:
                        cut = i
                stats.augmentations += 1
                pushed_total += bottleneck
                # Retreat to just before the first saturated arc.
                u = srcs[path[cut]]
                del path[cut:]
                continue
            position = ptr[u]
            end = adj_start[u + 1]
            advanced = False
            depth = level[u] + 1
            while position < end:
                v = dsts[position]
                if caps[position] > eps_cap and level[v] == depth:
                    path.append(position)
                    ptr[u] = position
                    u = v
                    advanced = True
                    break
                position += 1
            if not advanced:
                ptr[u] = position
                level[u] = -2  # dead end for this phase
                if u == source:
                    return pushed_total
                k = path.pop()
                u = srcs[k]
                ptr[u] += 1


def solve_ssp_array(
    problem: FlowProblem, allow_negative: bool = False
) -> FlowSolution:
    """One-shot wrapper: build an :class:`ArraySspEngine` and solve.

    Callers that solve many structurally identical instances should
    hold on to the engine instead to reuse its scratch buffers.
    """
    return ArraySspEngine(problem).solve(allow_negative=allow_negative)


def solve_lp_ssp(lp) -> "object":
    """LP entry point for the ``ssp`` registry backend."""
    from repro.flow.duality import LpSolution, ground_flow, recover_r

    grounded = ground_flow(lp)
    flow = ArraySspEngine(grounded.problem).solve(allow_negative=True)
    r = recover_r(grounded, flow.potentials, lp.n_nodes)
    return LpSolution(
        r=r, objective=lp.objective(r), backend="ssp", stats=flow.stats
    )
