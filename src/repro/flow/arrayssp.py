"""Array-based successive-shortest-path min-cost flow engine.

This is the library's native D-phase solver, replacing the list-of-lists
``heapq`` implementation kept in :mod:`repro.flow.ssp` as
``solve_ssp_reference``.  Three design decisions give it its speed on
the shallow, DAG-shaped instances the D-phase produces:

* **CSR-style arc arrays.**  The residual graph lives in flat numpy
  arrays (``arc_src``, ``arc_dst``, ``arc_cap``, ``arc_cost``) with the
  classic pairing trick — arc ``2k`` is the forward copy of problem arc
  ``k`` and ``2k ^ 1`` its reverse — so pushing flow is two scatter
  updates and no Python object is touched per arc.

* **Edge-parallel shortest paths.**  Distances are computed by
  vectorized Bellman-Ford-Moore sweeps (``np.minimum.at`` over every
  active arc at once).  The D-phase networks are shallow — a sweep count
  near the circuit depth — so a handful of full-edge numpy passes beats
  a binary heap whose every pop and push runs in the interpreter.  The
  sweeps also absorb negative arc costs with no separate initialization
  pass.

* **Multi-path (primal-dual) augmentation.**  After each potential
  update the solver pushes a full Dinic blocking flow through the
  zero-reduced-cost admissible subgraph instead of a single augmenting
  path, so one shortest-path computation funds many augmentations.
  Every admissible path telescopes to the current shortest-path length,
  which preserves the reduced-cost optimality invariant.

Scratch buffers are allocated once per :class:`ArraySspEngine` and
reused across rounds and across repeated ``solve()`` calls on the same
engine.  (The registry's LP entry point builds a fresh engine per
solve; callers that repeatedly solve one instance can hold the engine
to amortize construction.)

**Warm starts.**  The MINFLOTRANSIT W/D alternation solves a sequence
of flow instances with identical arc topology and slowly drifting
costs/supplies.  :meth:`ArraySspEngine.solve` accepts a
:class:`WarmStartBasis` (the previous solve's node potentials, arc
flows, and the costs they were optimal for) and starts from a *reduced*
problem instead of scratch:

1. previous flow is retained on every arc whose cost did not increase
   (on such arcs the reverse residual reduced cost stays non-negative),
2. a greedy *divergence-fitting* pass adjusts the retained arcs to
   cancel matched supply drift at their endpoints — without it, the
   small per-node supply drift between iterations would cost one
   augmenting path per node, as many as a cold solve,
3. a Bellman-Ford sweep repairs any negative reduced costs the cost
   drift introduced (a residual negative cycle — possible when another
   path got much cheaper — aborts the warm path and falls back to a
   cold solve, so warm starts can never change the answer),
4. successive shortest paths then route only the remaining *imbalance*
   between the fitted flow's divergence and the new supplies.

Starting from a reduced-cost-optimal pseudoflow keeps the SSP
invariant, so the warm result is exactly optimal — the only thing that
changes is how much flow remains to push (``SolveStats.supply_routed``
vs the cold total), which is where the augmentation savings come from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FlowError, InfeasibleFlowError, UnboundedFlowError
from repro.flow.network import FlowProblem, FlowSolution
from repro.flow.registry import SolveStats

__all__ = [
    "ArraySspEngine",
    "WarmStartBasis",
    "basis_from_solution",
    "solve_ssp_array",
]

_INF = float("inf")


@dataclass(frozen=True)
class WarmStartBasis:
    """Starting basis for a warm solve of a structurally equal instance.

    All arrays live in the coordinate system of the *problem* that
    produced them: ``potentials`` per node, ``flow`` and ``arc_costs``
    aligned with ``problem.arcs``.  A basis whose shapes do not match
    the instance being solved is silently ignored (the solve falls back
    to cold), so callers may pass a stale basis without risk.
    """

    potentials: np.ndarray
    flow: np.ndarray
    arc_costs: np.ndarray


def basis_from_solution(solution: FlowSolution) -> WarmStartBasis:
    """Extract a :class:`WarmStartBasis` from a completed solve."""
    return WarmStartBasis(
        potentials=np.array(solution.potentials, dtype=float),
        flow=np.array(solution.flow, dtype=float),
        arc_costs=np.array(
            [arc.cost for arc in solution.problem.arcs], dtype=float
        ),
    )


class ArraySspEngine:
    """Reusable min-cost-flow solver over flat residual-arc arrays."""

    def __init__(self, problem: FlowProblem):
        problem.check_balanced()
        self.problem = problem
        n = problem.n_nodes
        self.source = n
        self.sink = n + 1
        self.n_total = n + 2
        assert problem.supply is not None
        supply = problem.supply

        big = float(np.abs(supply).sum())
        self.needed = float(supply[supply > 0].sum())

        n_arcs = len(problem.arcs)
        src = np.empty(n_arcs, dtype=np.int64)
        dst = np.empty(n_arcs, dtype=np.int64)
        cap = np.empty(n_arcs, dtype=np.float64)
        cost = np.empty(n_arcs, dtype=np.float64)
        self._uncapacitated = np.zeros(n_arcs, dtype=bool)
        for k, arc in enumerate(problem.arcs):
            src[k] = arc.src
            dst[k] = arc.dst
            cap[k] = big if arc.capacity is None else float(arc.capacity)
            self._uncapacitated[k] = arc.capacity is None
            cost[k] = arc.cost
        self._big = big
        self.has_negative = bool(np.any(cost < 0))

        # Source and sink arcs exist for *every* node; capacity selects
        # the live ones (cold: the supplies; warm: the divergence the
        # retained flow leaves unserved).  Zero-capacity arcs are inert
        # — every kernel masks on residual capacity — so the cold solve
        # touches exactly the same active arcs as before.
        all_nodes = np.arange(n, dtype=np.int64)
        src = np.concatenate([
            src, np.full(n, self.source, dtype=np.int64), all_nodes,
        ])
        dst = np.concatenate([
            dst, all_nodes, np.full(n, self.sink, dtype=np.int64),
        ])
        cap = np.concatenate([
            cap, np.maximum(supply, 0.0), np.maximum(-supply, 0.0)
        ]).astype(np.float64)
        cost = np.concatenate([cost, np.zeros(2 * n)]).astype(np.float64)

        m = len(src)
        self.n_problem_arcs = n_arcs
        # Interleave forward (even) and reverse (odd) copies: 2k ^ 1 flips.
        self.arc_src = np.empty(2 * m, dtype=np.int64)
        self.arc_dst = np.empty(2 * m, dtype=np.int64)
        self.arc_cost = np.empty(2 * m, dtype=np.float64)
        self.arc_src[0::2] = src
        self.arc_src[1::2] = dst
        self.arc_dst[0::2] = dst
        self.arc_dst[1::2] = src
        self.arc_cost[0::2] = cost
        self.arc_cost[1::2] = -cost
        self._cap0 = np.zeros(2 * m, dtype=np.float64)
        self._cap0[0::2] = cap

        self._eps_cap = 1e-12 * max(1.0, big)
        self._eps_cost = 1e-9 * (
            1.0 + float(np.abs(cost).max(initial=0.0))
        )

        # Scratch buffers, reused across rounds and solves.
        self.arc_cap = np.empty_like(self._cap0)
        self._pot = np.zeros(self.n_total)
        self._dist = np.empty(self.n_total)
        self._clamped = np.empty(self.n_total)
        self._arc_mask = np.zeros(2 * m, dtype=bool)

        # Optional compiled Dijkstra (scipy); the edge-parallel
        # Bellman-Ford sweeps below are the pure-numpy fallback.
        try:
            from scipy import sparse as sparse_mod
            from scipy.sparse import csgraph as csgraph_mod
        except ImportError:  # pragma: no cover - scipy is baked in
            sparse_mod = csgraph_mod = None
        self._sparse = sparse_mod
        self._csgraph = csgraph_mod

    def solve(
        self,
        allow_negative: bool = False,
        warm_start: WarmStartBasis | None = None,
    ) -> FlowSolution:
        """Run successive shortest paths; returns a certified solution.

        The returned :class:`FlowSolution` carries a populated
        :class:`~repro.flow.registry.SolveStats` in ``stats``.

        ``warm_start`` seeds the solve with a previous solution of a
        structurally identical instance (same node count, same arc
        sequence).  Warm starts are strictly an accelerator: a basis
        with mismatched shapes is ignored, and a basis invalidated by
        the cost drift (residual negative cycle) triggers an automatic
        cold restart — the returned solution is exactly optimal either
        way.
        """
        if self.has_negative and not allow_negative:
            raise FlowError(
                "negative arc costs require allow_negative=True "
                "(absorbed by the first Bellman-Ford sweep)"
            )
        if warm_start is not None and self._warm_compatible(warm_start):
            try:
                return self._run(warm_start)
            except UnboundedFlowError:
                # The retained flow has a negative residual cycle under
                # the new costs; it is not optimal for its divergence.
                # Discard the basis rather than repair it.
                pass
            except InfeasibleFlowError:
                # The retained flow's divergence gap is unroutable in
                # the residual graph (possible when supplies shrank in
                # a weakly connected corner) even though the instance
                # itself is feasible — solve it cold instead.
                pass
        return self._run(None)

    def _warm_compatible(self, basis: WarmStartBasis) -> bool:
        return (
            len(basis.flow) == self.n_problem_arcs
            and len(basis.arc_costs) == self.n_problem_arcs
            and len(basis.potentials) == self.problem.n_nodes
        )

    def _run(self, basis: WarmStartBasis | None) -> FlowSolution:
        cap = self.arc_cap
        np.copyto(cap, self._cap0)
        pot = self._pot
        pot[:] = 0.0
        stats = SolveStats(backend="ssp", n_nodes=self.problem.n_nodes,
                           n_arcs=self.n_problem_arcs)
        if basis is None:
            needed = self.needed
            if self.has_negative:
                self._repair_potentials(cap, pot, stats)
        else:
            needed = self._load_warm_basis(basis, cap, pot, stats)
        stats.supply_routed = needed

        shipped = 0.0
        flow_eps = 1e-9 * max(1.0, self.needed)
        # Pure runaway backstop: the sink distance strictly increases
        # every round (each round pushes a max flow of the admissible
        # subgraph), so legitimate instances terminate on their own.
        # Rounds scale with saturations — i.e. arcs, not nodes.
        max_rounds = 32 * (self.n_total + len(self.arc_src)) + 64
        for _round in range(max_rounds):
            if needed - shipped <= flow_eps:
                break
            dist = self._shortest_paths(cap, pot, stats)
            if not np.isfinite(dist[self.sink]):
                raise InfeasibleFlowError(
                    f"cannot route {needed - shipped:.6g} "
                    "remaining units"
                )
            # pot += min(dist, dist[sink]): the clamped update keeps
            # every residual reduced cost non-negative (unreachable and
            # beyond-sink nodes saturate at the sink distance).
            np.minimum(dist, dist[self.sink], out=self._clamped)
            pot += self._clamped
            stats.sp_rounds += 1
            shipped += self._augment_admissible(cap, pot, dist, stats)
        else:
            raise FlowError(
                "successive-shortest-path rounds did not converge "
                f"within {max_rounds} potential updates"
            )

        n_arcs = self.n_problem_arcs
        flow = cap[1 : 2 * n_arcs : 2].copy()  # reverse cap == flow sent
        total_cost = float(flow @ self.arc_cost[0 : 2 * n_arcs : 2])
        solution = FlowSolution(
            problem=self.problem,
            flow=flow,
            potentials=pot[: self.problem.n_nodes].copy(),
            total_cost=total_cost,
            backend="ssp",
            stats=stats,
        )
        return solution

    def _load_warm_basis(
        self,
        basis: WarmStartBasis,
        cap: np.ndarray,
        pot: np.ndarray,
        stats: SolveStats,
    ) -> float:
        """Install a warm basis; returns the supply left to route.

        Flow is kept only on arcs whose cost did not increase: on those,
        the previous complementary slackness (``flow > 0`` implies zero
        reduced cost) guarantees the reverse residual arc stays
        non-negative under the old potentials, so the retained
        pseudoflow is optimal for its own divergence once
        :meth:`_repair_potentials` absorbs any forward arcs whose cost
        *decreased*.  The super source/sink arcs are re-capacitated to
        the divergence gap ``supply - div(retained)``, which is all the
        main loop still has to route.
        """
        n = self.problem.n_nodes
        k = self.n_problem_arcs
        new_cost = self.arc_cost[0 : 2 * k : 2]
        keep = (
            (basis.flow > self._eps_cap)
            & (new_cost <= basis.arc_costs + self._eps_cost)
        )
        flow = np.where(keep, basis.flow, 0.0)
        limit = np.where(
            self._uncapacitated, _INF, self._cap0[0 : 2 * k : 2]
        )
        np.minimum(flow, limit, out=flow)
        stats.warm_solves = 1

        div = np.zeros(n)
        psrc = self.arc_src[0 : 2 * k : 2]
        pdst = self.arc_dst[0 : 2 * k : 2]
        np.add.at(div, psrc, flow)
        np.subtract.at(div, pdst, flow)
        assert self.problem.supply is not None
        excess = self.problem.supply - div

        # Divergence fitting: supplies drift a little at *every* node
        # between W/D iterations, and routing each node's drift as its
        # own augmenting path would cost as many paths as a cold solve.
        # One greedy pass over the carrying arcs adjusts their flow to
        # cancel matched excess/deficit at the endpoints instead (the
        # delay-arc pairs of the D-phase dual cancel exactly this way).
        # Decreases only enlarge forward residuals that already exist;
        # increases only touch arcs that carried flow — zero reduced
        # cost under the basis potentials — so any violation the drift
        # introduces stays tiny and is absorbed by the repair sweep.
        self._fit_divergence(flow, excess, psrc, pdst)
        # ``big`` stand-in capacities are sized for *this* problem's
        # supplies; retained flow from a larger previous instance must
        # not eat that headroom, or uncapacitated arcs would saturate
        # and manufacture infeasibility a cold solve does not have.
        cap[0 : 2 * k : 2] = np.where(
            self._uncapacitated,
            flow + self._big,
            self._cap0[0 : 2 * k : 2] - flow,
        )
        cap[1 : 2 * k : 2] = self._cap0[1 : 2 * k : 2] + flow
        stats.warm_flow_reused = float(flow.sum())

        source_cap = np.maximum(excess, 0.0)
        sink_cap = np.maximum(-excess, 0.0)
        cap[2 * k : 2 * (k + n) : 2] = source_cap
        cap[2 * (k + n) : 2 * (k + 2 * n) : 2] = sink_cap

        pot[:n] = basis.potentials
        # Source/sink potentials that keep their zero-cost arcs
        # reduced-cost-feasible: at least / at most every live endpoint.
        live_out = source_cap > self._eps_cap
        live_in = sink_cap > self._eps_cap
        pot[self.source] = float(pot[:n][live_out].max(initial=0.0))
        pot[self.sink] = float(pot[:n][live_in].min(initial=0.0))
        self._repair_potentials(cap, pot, stats)
        return float(source_cap.sum())

    def _fit_divergence(
        self,
        flow: np.ndarray,
        excess: np.ndarray,
        psrc: np.ndarray,
        pdst: np.ndarray,
    ) -> None:
        """Adjust carrying arcs in place to cancel endpoint excesses.

        For an arc ``u -> v`` with flow: a surplus at ``u`` facing a
        deficit at ``v`` is absorbed by pushing more flow through the
        arc (uncapacitated instances always admit this; capacitated
        arcs are bounded by their remaining headroom); the mirrored
        case drains the arc instead, bounded by its current flow.
        ``flow`` and ``excess`` are updated consistently, so the caller
        can derive capacities and source/sink arcs from them directly.
        """
        carrying = np.flatnonzero(flow > self._eps_cap)
        if carrying.size == 0:
            return
        headroom = np.where(
            self._uncapacitated,
            _INF,
            self._cap0[0 : 2 * self.n_problem_arcs : 2],
        )
        eps = self._eps_cap
        for a in carrying.tolist():
            u = psrc[a]
            v = pdst[a]
            eu = excess[u]
            ev = excess[v]
            if eu > eps and ev < -eps:
                push = min(eu, -ev, headroom[a] - flow[a])
                if push > 0.0:
                    flow[a] += push
                    excess[u] = eu - push
                    excess[v] = ev + push
            elif eu < -eps and ev > eps:
                drain = min(-eu, ev, flow[a])
                if drain > 0.0:
                    flow[a] -= drain
                    excess[u] = eu + drain
                    excess[v] = ev - drain

    def _repair_potentials(
        self, cap: np.ndarray, pot: np.ndarray, stats: SolveStats
    ) -> None:
        """Bellman-Ford sweep restoring non-negative reduced costs.

        All-zeros distance initialization treats every node as a
        virtual source (handles disconnection); afterwards every
        residual reduced cost is non-negative, the invariant the main
        loop maintains.  With ``pot == 0`` this is the classic
        negative-cost absorption pass; with warm potentials it only has
        to absorb the cost *drift*, which typically converges in a pass
        or two.  A residual negative cycle raises
        :class:`UnboundedFlowError` (the warm path catches it and
        restarts cold).
        """
        active = np.flatnonzero(cap > self._eps_cap)
        asrc = self.arc_src[active]
        adst = self.arc_dst[active]
        rcost = self.arc_cost[active] + pot[asrc] - pot[adst]
        dist = self._dist
        dist.fill(0.0)
        for _pass in range(self.n_total + 1):
            candidate = dist[asrc] + rcost
            improves = candidate < dist[adst] - self._eps_cost
            if not improves.any():
                pot += dist
                return
            np.minimum.at(dist, adst[improves], candidate[improves])
            stats.relax_passes += 1
        raise UnboundedFlowError("negative-cost cycle detected")

    def _shortest_paths(
        self, cap: np.ndarray, pot: np.ndarray, stats: SolveStats
    ) -> np.ndarray:
        """Reduced-cost shortest distances from the super source.

        Fast path: the residual arcs are deduplicated (parallel arcs
        keep the cheapest copy) into a CSR matrix and handed to scipy's
        compiled Dijkstra.  Reduced costs are non-negative by the
        potential invariant; sub-tolerance negatives from float noise
        are clipped to zero first.

        Fallback (no scipy): edge-parallel Bellman-Ford-Moore — every
        pass relaxes all active residual arcs at once, converging in
        (shortest-path hop diameter) passes on these shallow networks.
        """
        dist = self._dist
        active = np.flatnonzero(cap > self._eps_cap)
        if active.size == 0:
            dist.fill(_INF)
            dist[self.source] = 0.0
            return dist
        asrc = self.arc_src[active]
        adst = self.arc_dst[active]
        rcost = self.arc_cost[active] + pot[asrc] - pot[adst]
        if self._csgraph is not None:
            np.maximum(rcost, 0.0, out=rcost)  # clip tolerance noise
            order = np.lexsort((adst, asrc))
            s2, d2, r2 = asrc[order], adst[order], rcost[order]
            first = np.empty(len(s2), dtype=bool)
            first[0] = True
            np.logical_or(
                np.diff(s2) != 0, np.diff(d2) != 0, out=first[1:]
            )
            starts = np.flatnonzero(first)
            graph = self._sparse.csr_matrix(
                (np.minimum.reduceat(r2, starts),
                 (s2[starts], d2[starts])),
                shape=(self.n_total, self.n_total),
            )
            np.copyto(dist, self._csgraph.dijkstra(
                graph, indices=self.source
            ))
            stats.dijkstra_pops += int(np.isfinite(dist).sum())
            return dist
        dist.fill(_INF)
        dist[self.source] = 0.0
        for _pass in range(self.n_total + 1):
            candidate = dist[asrc] + rcost
            improves = candidate < dist[adst] - self._eps_cost
            if not improves.any():
                return dist
            np.minimum.at(dist, adst[improves], candidate[improves])
            stats.relax_passes += 1
            stats.dijkstra_pops += int(improves.sum())
        raise UnboundedFlowError("negative-cost cycle detected")

    def _augment_admissible(
        self,
        cap: np.ndarray,
        pot: np.ndarray,
        dist: np.ndarray,
        stats: SolveStats,
    ) -> float:
        """Dinic blocking flows on the zero-reduced-cost subgraph.

        Admissible arcs are the distance-tight residual arcs (both
        endpoints on shortest paths no longer than the sink's), plus
        their reverses so flow pushed inside this round can be rerouted.
        Repeats level-BFS + blocking flow until the sink is unreachable,
        i.e. a maximum flow of the admissible subgraph — one shortest
        path computation funds many augmentations.
        """
        eps_cap, eps_cost = self._eps_cap, self._eps_cost
        horizon = dist[self.sink] + eps_cost
        active = np.flatnonzero(cap > eps_cap)
        asrc = self.arc_src[active]
        adst = self.arc_dst[active]
        # pot was just bumped by the clamped distances, so an arc is on
        # a shortest path iff its reduced cost is now zero; the horizon
        # filter drops tight arcs strictly beyond the sink's distance.
        rcost_now = self.arc_cost[active] + pot[asrc] - pot[adst]
        tight = (
            (dist[asrc] <= horizon)
            & (dist[adst] <= horizon)
            & (np.abs(rcost_now) <= eps_cost)
        )
        admissible = active[tight]
        if admissible.size == 0:
            return 0.0
        # Tight arcs plus their reverses (so flow pushed within this
        # round can be rerouted); the mask buffer dedupes arcs whose
        # opposite direction is tight as well.
        mask = self._arc_mask
        mask[admissible] = True
        mask[admissible ^ 1] = True
        arcs = np.flatnonzero(mask)
        mask[arcs] = False  # restore the all-False scratch state

        # Group by source node (CSR layout) with numpy, then drop to
        # plain Python lists for the Dinic phases: the admissible
        # subgraph is small and list indexing is far cheaper than
        # per-element numpy access.
        srcs_arr = self.arc_src[arcs]
        order = np.argsort(srcs_arr, kind="stable")
        arcs = arcs[order]
        srcs_arr = srcs_arr[order]
        adj_start = np.searchsorted(
            srcs_arr, np.arange(self.n_total + 1)
        ).tolist()
        id_order = np.argsort(arcs)
        rev = id_order[
            np.searchsorted(arcs[id_order], arcs ^ 1)
        ].tolist()
        srcs = srcs_arr.tolist()
        dsts = self.arc_dst[arcs].tolist()
        caps = cap[arcs].tolist()

        sink = self.sink
        pushed_total = 0.0
        while True:
            level = self._bfs_levels(adj_start, dsts, caps)
            if level[sink] < 0:
                break
            pushed = self._blocking_flow(
                adj_start, srcs, dsts, caps, rev, level, stats
            )
            if pushed <= 0.0:
                break
            pushed_total += pushed
        cap[arcs] = caps
        return pushed_total

    def _bfs_levels(
        self,
        adj_start: list[int],
        dsts: list[int],
        caps: list[float],
    ) -> list[int]:
        """Level assignment for one Dinic phase (stops at the sink)."""
        eps_cap = self._eps_cap
        sink = self.sink
        level = [-1] * self.n_total
        level[self.source] = 0
        queue = [self.source]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            if u == sink:
                break
            depth = level[u] + 1
            for k in range(adj_start[u], adj_start[u + 1]):
                if caps[k] > eps_cap:
                    v = dsts[k]
                    if level[v] < 0:
                        level[v] = depth
                        queue.append(v)
        return level

    def _blocking_flow(
        self,
        adj_start: list[int],
        srcs: list[int],
        dsts: list[int],
        caps: list[float],
        rev: list[int],
        level: list[int],
        stats: SolveStats,
    ) -> float:
        """Current-arc DFS over the level graph (classic Dinic step).

        Arc indices double as adjacency positions (the arrays are in
        CSR order), so the per-node cursor state is a flat list and the
        inner loop touches no dict and no numpy scalar.
        """
        eps_cap = self._eps_cap
        source, sink = self.source, self.sink
        ptr = adj_start[:-1].copy()
        path: list[int] = []  # arc indices == adjacency positions
        u = source
        pushed_total = 0.0
        while True:
            if u == sink:
                bottleneck = min(caps[k] for k in path)
                cut = len(path)
                for i, k in enumerate(path):
                    caps[k] -= bottleneck
                    caps[rev[k]] += bottleneck
                    if caps[k] <= eps_cap and i < cut:
                        cut = i
                stats.augmentations += 1
                pushed_total += bottleneck
                # Retreat to just before the first saturated arc.
                u = srcs[path[cut]]
                del path[cut:]
                continue
            position = ptr[u]
            end = adj_start[u + 1]
            advanced = False
            depth = level[u] + 1
            while position < end:
                v = dsts[position]
                if caps[position] > eps_cap and level[v] == depth:
                    path.append(position)
                    ptr[u] = position
                    u = v
                    advanced = True
                    break
                position += 1
            if not advanced:
                ptr[u] = position
                level[u] = -2  # dead end for this phase
                if u == source:
                    return pushed_total
                k = path.pop()
                u = srcs[k]
                ptr[u] += 1


def solve_ssp_array(
    problem: FlowProblem,
    allow_negative: bool = False,
    warm_start: WarmStartBasis | None = None,
) -> FlowSolution:
    """One-shot wrapper: build an :class:`ArraySspEngine` and solve.

    Callers that solve many structurally identical instances should
    hold on to the engine instead to reuse its scratch buffers.
    """
    return ArraySspEngine(problem).solve(
        allow_negative=allow_negative, warm_start=warm_start
    )


def solve_lp_ssp(lp, warm_start: WarmStartBasis | None = None) -> "object":
    """LP entry point for the ``ssp`` registry backend.

    The returned solution carries a :class:`WarmStartBasis` in
    ``warm_basis``; feeding it into the next ``solve_lp_ssp`` call on a
    structurally identical LP (the W/D alternation produces exactly
    such a sequence) lets the engine route only the supply drift.
    """
    from repro.flow.duality import LpSolution, ground_flow, recover_r

    grounded = ground_flow(lp)
    flow = ArraySspEngine(grounded.problem).solve(
        allow_negative=True, warm_start=warm_start
    )
    r = recover_r(grounded, flow.potentials, lp.n_nodes)
    return LpSolution(
        r=r,
        objective=lp.objective(r),
        backend="ssp",
        stats=flow.stats,
        warm_basis=basis_from_solution(flow),
    )
