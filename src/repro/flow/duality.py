"""Difference-constraint LPs and their min-cost-flow duals.

The D-phase optimization (paper equation (10)) has the form

    maximize    sum_v w_v * r(v)
    subject to  r(u) - r(v) <= c_uv          for every constraint arc
                r(v) = 0                     for pinned v (PIs, sink O)

Its LP dual is a min-cost network flow: each constraint becomes an arc
``u -> v`` with cost ``c_uv``; conservation requires
``outflow(v) - inflow(v) = w_v``, i.e. a supply of ``w_v`` at ``v``.
Pinned nodes have no conservation constraint — they merge into one
*ground* node that absorbs the residual imbalance.  Optimal node
potentials of the flow are (up to sign and the ground offset) an
optimal primal ``r``:  ``r(v) = π(ground) - π(v)``.

:func:`solve_difference_lp` dispatches through the backend registry
(:mod:`repro.flow.registry`); the registered backends are cross-checked
in the test suite:

* ``"ssp"``        — the array-based primal-dual engine
  (:mod:`repro.flow.arrayssp`), the native default,
* ``"ssp-legacy"`` — the original heapq successive-shortest-path
  solver, kept as a parity oracle and benchmark baseline,
* ``"networkx"``   — ``networkx.network_simplex`` (closest in spirit to
  the paper's network simplex reference [9]),
* ``"scipy"``      — HiGHS on the primal LP.

This module is also the single home of the **integerization policy**:
:func:`integerize_values` (nearest / conservative-floor rounding) and
:func:`integerize_supplies` (balance-preserving supply rounding) are
used both by the D-phase scaling step and by backends that need exact
integer data, so the rounding rules cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FlowError, InfeasibleFlowError
from repro.flow.network import FlowProblem
from repro.flow.registry import BACKEND_NAMES, get_backend, select_backend
from repro.flow.registry import timed_solve as _timed_solve

__all__ = [
    "BACKENDS",
    "DifferenceConstraintLP",
    "GroundedFlow",
    "LpSolution",
    "ground_flow",
    "integerize_supplies",
    "integerize_values",
    "solve_difference_lp",
]

#: Backward-compatible alias of :data:`repro.flow.registry.BACKEND_NAMES`.
BACKENDS = BACKEND_NAMES


def integerize_values(
    values: np.ndarray | float, mode: str = "nearest"
) -> np.ndarray:
    """Round already-scaled data to exact integers (as float64).

    ``mode="nearest"`` is the default defensive rounding for data that
    is integral up to float noise (costs, weights); ``mode="floor"`` is
    the conservative choice for slack-like quantities where rounding
    *down* keeps the integerized feasible set inside the true one
    (paper section 2.3.1).  Every rounding decision in the flow layer
    and the D-phase goes through here.
    """
    array = np.asarray(values, dtype=float)
    if mode == "nearest":
        return np.rint(array)
    if mode == "floor":
        return np.floor(array)
    raise FlowError(f"unknown rounding mode {mode!r}")


def integerize_supplies(
    supplies: np.ndarray, ground: int
) -> np.ndarray:
    """Round supplies to int64 and dump the drift on the ground node.

    Backends that require exactly balanced integer supplies (network
    simplex) call this; the repair keeps ``sum(supply) == 0`` without
    touching any non-ground node by more than the rounding itself.
    """
    rounded = integerize_values(supplies, mode="nearest").astype(np.int64)
    rounded[ground] -= rounded.sum()
    return rounded


@dataclass
class DifferenceConstraintLP:
    """``max w^T r`` subject to difference constraints and pins."""

    n_nodes: int
    weights: np.ndarray
    pinned: frozenset[int]
    #: (u, v, c) meaning r(u) - r(v) <= c.
    constraints: list[tuple[int, int, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=float)
        if self.weights.shape != (self.n_nodes,):
            raise FlowError(
                f"weights shape {self.weights.shape} != ({self.n_nodes},)"
            )
        if not self.pinned:
            raise FlowError("difference LP needs at least one pinned node")

    def add(self, u: int, v: int, c: float) -> None:
        """Append the constraint ``r[u] - r[v] <= c``."""
        self.constraints.append((u, v, float(c)))

    def objective(self, r: np.ndarray) -> float:
        """The LP objective ``weights @ r`` for an assignment."""
        return float(self.weights @ r)

    def check_feasible(self, r: np.ndarray, tol: float = 1e-6) -> None:
        """Raise if ``r`` violates a constraint or a pin."""
        scale = 1.0 + max(
            (abs(c) for _, _, c in self.constraints), default=0.0
        )
        for node in self.pinned:
            if abs(r[node]) > tol * scale:
                raise FlowError(f"pinned node {node} has r = {r[node]:.3g}")
        for u, v, c in self.constraints:
            if r[u] - r[v] > c + tol * scale:
                raise FlowError(
                    f"constraint r({u}) - r({v}) <= {c:.6g} violated by "
                    f"{r[u] - r[v] - c:.3g}"
                )


@dataclass
class GroundedFlow:
    """The dual flow instance with pinned nodes merged into ``ground``."""

    problem: FlowProblem
    ground: int
    #: LP node -> flow node.
    node_map: np.ndarray


@dataclass
class LpSolution:
    """A solved difference LP: optimal assignment, objective, telemetry."""

    r: np.ndarray
    objective: float
    backend: str
    #: Solver counters (see :class:`repro.flow.registry.SolveStats`);
    #: filled in by the registry on every dispatched solve.
    stats: object | None = None
    #: Starting basis for the next solve of a structurally identical
    #: LP (see :class:`repro.flow.arrayssp.WarmStartBasis`); populated
    #: by backends that advertise ``supports_warm_start``, else None.
    warm_basis: object | None = None


def ground_flow(lp: DifferenceConstraintLP) -> GroundedFlow:
    """Build the dual min-cost flow instance of a difference LP."""
    node_map = np.full(lp.n_nodes, -1, dtype=np.int64)
    free_nodes = [v for v in range(lp.n_nodes) if v not in lp.pinned]
    for new_id, node in enumerate(free_nodes):
        node_map[node] = new_id
    ground = len(free_nodes)
    for node in lp.pinned:
        node_map[node] = ground

    problem = FlowProblem(n_nodes=ground + 1)
    # Uncapacitated parallel arcs: only the cheapest can carry flow.
    cheapest: dict[tuple[int, int], float] = {}
    for u, v, c in lp.constraints:
        mu, mv = int(node_map[u]), int(node_map[v])
        if mu == mv:
            if c < -1e-12:
                raise InfeasibleFlowError(
                    f"constraint between pinned nodes violated: "
                    f"r({u}) - r({v}) <= {c:.6g}"
                )
            continue
        key = (mu, mv)
        if key not in cheapest or c < cheapest[key]:
            cheapest[key] = c
    for (mu, mv), c in sorted(cheapest.items()):
        problem.add_arc(mu, mv, cost=c)

    for node in free_nodes:
        problem.add_supply(int(node_map[node]), float(lp.weights[node]))
    assert problem.supply is not None
    problem.supply[ground] = -problem.supply[:ground].sum()
    return GroundedFlow(problem=problem, ground=ground, node_map=node_map)


def recover_r(
    grounded: GroundedFlow, potentials: np.ndarray, n_nodes: int
) -> np.ndarray:
    """``r(v) = π(ground) - π(v)`` mapped back to LP node ids."""
    r = np.zeros(n_nodes)
    ground_potential = potentials[grounded.ground]
    for node in range(n_nodes):
        r[node] = ground_potential - potentials[grounded.node_map[node]]
    return r


def solve_difference_lp(
    lp: DifferenceConstraintLP,
    backend: str = "auto",
    warm_start: object | None = None,
) -> LpSolution:
    """Solve the LP via the backend registry; verifies feasibility.

    ``backend`` is a registered name or ``"auto"``, which lets
    :func:`repro.flow.registry.select_backend` pick per instance from
    capability metadata.  Wall time and solver counters are recorded on
    the returned solution (``stats``) and in the registry's running
    totals on every solve.

    ``warm_start`` is the ``warm_basis`` of a previous solution of a
    structurally identical LP; it reaches only backends that support
    warm starts (currently the native ``ssp`` engine) and can never
    change the optimum, only the work done to reach it.
    """
    if backend == "auto":
        chosen = select_backend(len(lp.constraints), hint="auto")
    else:
        chosen = get_backend(backend)
    solution = _timed_solve(chosen, lp, warm_start=warm_start)
    lp.check_feasible(solution.r)
    return solution
