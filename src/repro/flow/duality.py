"""Difference-constraint LPs and their min-cost-flow duals.

The D-phase optimization (paper equation (10)) has the form

    maximize    sum_v w_v * r(v)
    subject to  r(u) - r(v) <= c_uv          for every constraint arc
                r(v) = 0                     for pinned v (PIs, sink O)

Its LP dual is a min-cost network flow: each constraint becomes an arc
``u -> v`` with cost ``c_uv``; conservation requires
``outflow(v) - inflow(v) = w_v``, i.e. a supply of ``w_v`` at ``v``.
Pinned nodes have no conservation constraint — they merge into one
*ground* node that absorbs the residual imbalance.  Optimal node
potentials of the flow are (up to sign and the ground offset) an
optimal primal ``r``:  ``r(v) = π(ground) - π(v)``.

:func:`solve_difference_lp` dispatches between three backends that are
cross-checked in the test suite:

* ``"ssp"``       — this library's successive-shortest-path solver,
* ``"networkx"``  — ``networkx.network_simplex`` (closest in spirit to
  the paper's network simplex reference [9]),
* ``"scipy"``     — HiGHS on the primal LP (fast path for big graphs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FlowError, InfeasibleFlowError
from repro.flow.network import FlowProblem
from repro.flow.ssp import solve_ssp

__all__ = [
    "DifferenceConstraintLP",
    "GroundedFlow",
    "LpSolution",
    "ground_flow",
    "solve_difference_lp",
]

BACKENDS = ("ssp", "networkx", "scipy")


@dataclass
class DifferenceConstraintLP:
    """``max w^T r`` subject to difference constraints and pins."""

    n_nodes: int
    weights: np.ndarray
    pinned: frozenset[int]
    #: (u, v, c) meaning r(u) - r(v) <= c.
    constraints: list[tuple[int, int, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=float)
        if self.weights.shape != (self.n_nodes,):
            raise FlowError(
                f"weights shape {self.weights.shape} != ({self.n_nodes},)"
            )
        if not self.pinned:
            raise FlowError("difference LP needs at least one pinned node")

    def add(self, u: int, v: int, c: float) -> None:
        self.constraints.append((u, v, float(c)))

    def objective(self, r: np.ndarray) -> float:
        return float(self.weights @ r)

    def check_feasible(self, r: np.ndarray, tol: float = 1e-6) -> None:
        """Raise if ``r`` violates a constraint or a pin."""
        scale = 1.0 + max(
            (abs(c) for _, _, c in self.constraints), default=0.0
        )
        for node in self.pinned:
            if abs(r[node]) > tol * scale:
                raise FlowError(f"pinned node {node} has r = {r[node]:.3g}")
        for u, v, c in self.constraints:
            if r[u] - r[v] > c + tol * scale:
                raise FlowError(
                    f"constraint r({u}) - r({v}) <= {c:.6g} violated by "
                    f"{r[u] - r[v] - c:.3g}"
                )


@dataclass
class GroundedFlow:
    """The dual flow instance with pinned nodes merged into ``ground``."""

    problem: FlowProblem
    ground: int
    #: LP node -> flow node.
    node_map: np.ndarray


@dataclass
class LpSolution:
    r: np.ndarray
    objective: float
    backend: str


def ground_flow(lp: DifferenceConstraintLP) -> GroundedFlow:
    """Build the dual min-cost flow instance of a difference LP."""
    node_map = np.full(lp.n_nodes, -1, dtype=np.int64)
    free_nodes = [v for v in range(lp.n_nodes) if v not in lp.pinned]
    for new_id, node in enumerate(free_nodes):
        node_map[node] = new_id
    ground = len(free_nodes)
    for node in lp.pinned:
        node_map[node] = ground

    problem = FlowProblem(n_nodes=ground + 1)
    # Uncapacitated parallel arcs: only the cheapest can carry flow.
    cheapest: dict[tuple[int, int], float] = {}
    for u, v, c in lp.constraints:
        mu, mv = int(node_map[u]), int(node_map[v])
        if mu == mv:
            if c < -1e-12:
                raise InfeasibleFlowError(
                    f"constraint between pinned nodes violated: "
                    f"r({u}) - r({v}) <= {c:.6g}"
                )
            continue
        key = (mu, mv)
        if key not in cheapest or c < cheapest[key]:
            cheapest[key] = c
    for (mu, mv), c in sorted(cheapest.items()):
        problem.add_arc(mu, mv, cost=c)

    for node in free_nodes:
        problem.add_supply(int(node_map[node]), float(lp.weights[node]))
    assert problem.supply is not None
    problem.supply[ground] = -problem.supply[:ground].sum()
    return GroundedFlow(problem=problem, ground=ground, node_map=node_map)


def recover_r(
    grounded: GroundedFlow, potentials: np.ndarray, n_nodes: int
) -> np.ndarray:
    """``r(v) = π(ground) - π(v)`` mapped back to LP node ids."""
    r = np.zeros(n_nodes)
    ground_potential = potentials[grounded.ground]
    for node in range(n_nodes):
        r[node] = ground_potential - potentials[grounded.node_map[node]]
    return r


def solve_difference_lp(
    lp: DifferenceConstraintLP, backend: str = "auto"
) -> LpSolution:
    """Solve the LP; verifies feasibility of the returned ``r``."""
    if backend == "auto":
        backend = "scipy" if _scipy_available() else "networkx"
    if backend not in BACKENDS:
        raise FlowError(f"unknown backend {backend!r}; pick from {BACKENDS}")
    if backend == "scipy":
        from repro.flow.scipy_backend import solve_lp_scipy

        solution = solve_lp_scipy(lp)
    elif backend == "networkx":
        from repro.flow.networkx_backend import solve_lp_networkx

        solution = solve_lp_networkx(lp)
    else:
        grounded = ground_flow(lp)
        flow = solve_ssp(grounded.problem, allow_negative=True)
        r = recover_r(grounded, flow.potentials, lp.n_nodes)
        solution = LpSolution(
            r=r, objective=lp.objective(r), backend="ssp"
        )
    lp.check_feasible(solution.r)
    return solution


def _scipy_available() -> bool:
    try:
        from scipy.optimize import linprog  # noqa: F401
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return False
    return True
