"""HiGHS (scipy.optimize.linprog) backend for the D-phase LP.

Solves the primal difference-constraint LP directly: variables are the
non-pinned node potentials, each constraint is one sparse row.  HiGHS
is compiled code, so this backend is the fastest for large circuits; it
also returns the potentials directly, with no dual recovery step.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.errors import FlowError, InfeasibleFlowError, UnboundedFlowError
from repro.flow.duality import DifferenceConstraintLP, LpSolution

__all__ = ["solve_lp_scipy"]


def solve_lp_scipy(lp: DifferenceConstraintLP) -> LpSolution:
    """Solve a difference LP directly with HiGHS (``scipy.optimize.linprog``)."""
    free_nodes = [v for v in range(lp.n_nodes) if v not in lp.pinned]
    column = np.full(lp.n_nodes, -1, dtype=np.int64)
    for col, node in enumerate(free_nodes):
        column[node] = col
    n_free = len(free_nodes)
    for u, v, c in lp.constraints:
        if column[u] < 0 and column[v] < 0 and c < -1e-12:
            raise InfeasibleFlowError(
                f"pinned-pinned constraint violated (c = {c:.6g})"
            )
    if n_free == 0:
        r = np.zeros(lp.n_nodes)
        return LpSolution(r=r, objective=0.0, backend="scipy")

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    rhs: list[float] = []
    row_id = 0
    for u, v, c in lp.constraints:
        cu, cv = column[u], column[v]
        if cu < 0 and cv < 0:
            if c < -1e-12:
                raise InfeasibleFlowError(
                    f"pinned-pinned constraint violated (c = {c:.6g})"
                )
            continue
        if cu >= 0:
            rows.append(row_id)
            cols.append(int(cu))
            data.append(1.0)
        if cv >= 0:
            rows.append(row_id)
            cols.append(int(cv))
            data.append(-1.0)
        rhs.append(c)
        row_id += 1

    a_ub = sparse.coo_matrix(
        (data, (rows, cols)), shape=(row_id, n_free)
    ).tocsr()
    objective = -lp.weights[free_nodes]  # linprog minimizes

    result = linprog(
        c=objective,
        A_ub=a_ub,
        b_ub=np.array(rhs),
        bounds=[(None, None)] * n_free,
        method="highs",
    )
    if result.status == 2:
        raise InfeasibleFlowError(f"LP infeasible: {result.message}")
    if result.status == 3:
        raise UnboundedFlowError(f"LP unbounded: {result.message}")
    if not result.success:
        raise FlowError(f"HiGHS failed: {result.message}")

    r = np.zeros(lp.n_nodes)
    r[free_nodes] = result.x
    return LpSolution(r=r, objective=lp.objective(r), backend="scipy")
