"""Min-cost network flow substrate for the D-phase."""

from repro.flow.duality import (
    BACKENDS,
    DifferenceConstraintLP,
    GroundedFlow,
    LpSolution,
    ground_flow,
    solve_difference_lp,
)
from repro.flow.network import Arc, FlowProblem, FlowSolution
from repro.flow.ssp import solve_ssp
from repro.flow.verify import check_flow_feasible, check_flow_optimal

__all__ = [
    "Arc",
    "BACKENDS",
    "DifferenceConstraintLP",
    "FlowProblem",
    "FlowSolution",
    "GroundedFlow",
    "LpSolution",
    "check_flow_feasible",
    "check_flow_optimal",
    "ground_flow",
    "solve_difference_lp",
    "solve_ssp",
]
