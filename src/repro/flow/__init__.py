"""Min-cost network flow substrate for the D-phase."""

from repro.flow.arrayssp import (
    ArraySspEngine,
    WarmStartBasis,
    basis_from_solution,
    solve_ssp_array,
)
from repro.flow.duality import (
    BACKENDS,
    DifferenceConstraintLP,
    GroundedFlow,
    LpSolution,
    ground_flow,
    integerize_supplies,
    integerize_values,
    solve_difference_lp,
)
from repro.flow.network import Arc, FlowProblem, FlowSolution
from repro.flow.registry import (
    BACKEND_NAMES,
    BackendCapabilities,
    FlowBackend,
    SolveStats,
    get_backend,
    register_backend,
    registered_backends,
    reset_solver_statistics,
    select_backend,
    solver_statistics,
)
from repro.flow.ssp import solve_ssp, solve_ssp_reference
from repro.flow.verify import check_flow_feasible, check_flow_optimal

__all__ = [
    "Arc",
    "ArraySspEngine",
    "BACKENDS",
    "BACKEND_NAMES",
    "BackendCapabilities",
    "DifferenceConstraintLP",
    "FlowBackend",
    "FlowProblem",
    "FlowSolution",
    "GroundedFlow",
    "LpSolution",
    "SolveStats",
    "WarmStartBasis",
    "basis_from_solution",
    "check_flow_feasible",
    "check_flow_optimal",
    "get_backend",
    "ground_flow",
    "integerize_supplies",
    "integerize_values",
    "register_backend",
    "registered_backends",
    "reset_solver_statistics",
    "select_backend",
    "solve_difference_lp",
    "solve_ssp",
    "solve_ssp_array",
    "solve_ssp_reference",
    "solver_statistics",
]
