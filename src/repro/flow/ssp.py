"""Reference successive-shortest-path solver (the ``ssp-legacy`` backend).

This was the library's original native D-phase solver: Python
lists-of-lists for the residual graph and a per-arc ``heapq`` Dijkstra
per augmentation.  It keeps the classic invariant that reduced costs
``c + π(u) - π(v)`` are non-negative on all residual arcs, so on
termination the potentials π are an optimal dual solution — exactly the
quantity the D-phase needs to recover the displacement ``r``
(``r(v) = π(ground) - π(v)``).

It has been superseded as the default native engine by the array-based
primal-dual solver in :mod:`repro.flow.arrayssp` (registered as
``"ssp"``), but stays in-tree as ``solve_ssp_reference``: it is the
cross-check oracle in the parity suite and the baseline that
``benchmarks/run_flow_bench.py`` measures speedups against.
:func:`solve_ssp` now points at the array engine so existing callers
transparently get the fast path.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import FlowError, InfeasibleFlowError, UnboundedFlowError
from repro.flow.arrayssp import solve_ssp_array as solve_ssp
from repro.flow.network import FlowProblem, FlowSolution

__all__ = ["solve_ssp", "solve_ssp_reference", "solve_lp_ssp_reference"]

_INF = float("inf")


class _Residual:
    """Paired forward/backward residual arc arrays."""

    def __init__(self, n_nodes: int):
        self.n = n_nodes
        self.head: list[list[int]] = [[] for _ in range(n_nodes)]
        self.to: list[int] = []
        self.cap: list[float] = []
        self.cost: list[float] = []

    def add(self, u: int, v: int, cap: float, cost: float) -> int:
        arc_id = len(self.to)
        self.to.append(v)
        self.cap.append(cap)
        self.cost.append(cost)
        self.head[u].append(arc_id)
        self.to.append(u)
        self.cap.append(0.0)
        self.cost.append(-cost)
        self.head[v].append(arc_id + 1)
        return arc_id


def solve_ssp_reference(
    problem: FlowProblem, allow_negative: bool = False
) -> FlowSolution:
    """Solve a min-cost flow instance by successive shortest paths."""
    problem.check_balanced()
    n = problem.n_nodes
    source, sink = n, n + 1
    residual = _Residual(n + 2)

    big = 0.0
    assert problem.supply is not None
    for value in problem.supply:
        big += abs(value)
    arc_ids: list[int] = []
    has_negative = False
    for arc in problem.arcs:
        cap = big if arc.capacity is None else float(arc.capacity)
        if arc.cost < 0:
            has_negative = True
        arc_ids.append(residual.add(arc.src, arc.dst, cap, arc.cost))
    if has_negative and not allow_negative:
        raise FlowError(
            "negative arc costs require allow_negative=True "
            "(adds a Bellman-Ford initialization)"
        )

    needed = 0.0
    for node, value in enumerate(problem.supply):
        if value > 0:
            residual.add(source, node, float(value), 0.0)
            needed += float(value)
        elif value < 0:
            residual.add(node, sink, float(-value), 0.0)

    potential = np.zeros(n + 2)
    if has_negative:
        potential = _bellman_ford_potentials(residual, source)

    shipped = 0.0
    to = residual.to
    cap = residual.cap
    cost = residual.cost
    head = residual.head
    while shipped + 1e-12 < needed:
        dist = np.full(n + 2, _INF)
        parent_arc = np.full(n + 2, -1, dtype=np.int64)
        dist[source] = 0.0
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u] + 1e-12:
                continue
            for arc_id in head[u]:
                if cap[arc_id] <= 1e-12:
                    continue
                v = to[arc_id]
                nd = d + cost[arc_id] + potential[u] - potential[v]
                if nd < dist[v] - 1e-12:
                    dist[v] = nd
                    parent_arc[v] = arc_id
                    heapq.heappush(heap, (nd, v))
        if not np.isfinite(dist[sink]):
            raise InfeasibleFlowError(
                f"cannot route {needed - shipped:.6g} remaining units"
            )
        finite = np.isfinite(dist)
        potential[finite] += dist[finite]
        potential[~finite] += dist[sink]

        # Find the bottleneck along the augmenting path, then push.
        bottleneck = _INF
        v = sink
        while v != source:
            arc_id = int(parent_arc[v])
            bottleneck = min(bottleneck, cap[arc_id])
            v = to[arc_id ^ 1]
        v = sink
        while v != source:
            arc_id = int(parent_arc[v])
            cap[arc_id] -= bottleneck
            cap[arc_id ^ 1] += bottleneck
            v = to[arc_id ^ 1]
        shipped += bottleneck

    flow = np.zeros(len(problem.arcs))
    total_cost = 0.0
    for k, arc in enumerate(problem.arcs):
        pushed = cap[arc_ids[k] ^ 1]  # reverse capacity == flow sent
        flow[k] = pushed
        total_cost += pushed * arc.cost
    return FlowSolution(
        problem=problem,
        flow=flow,
        potentials=potential[:n].copy(),
        total_cost=total_cost,
        backend="ssp-legacy",
    )


def solve_lp_ssp_reference(lp) -> "object":
    """LP entry point for the ``ssp-legacy`` registry backend."""
    from repro.flow.duality import LpSolution, ground_flow, recover_r

    grounded = ground_flow(lp)
    flow = solve_ssp_reference(grounded.problem, allow_negative=True)
    r = recover_r(grounded, flow.potentials, lp.n_nodes)
    return LpSolution(
        r=r, objective=lp.objective(r), backend="ssp-legacy"
    )


def _bellman_ford_potentials(residual: _Residual, source: int) -> np.ndarray:
    """Initial potentials for instances with negative arc costs."""
    n = residual.n
    dist = np.zeros(n)  # all nodes as virtual sources handles disconnection
    for iteration in range(n):
        changed = False
        for u in range(n):
            for arc_id in residual.head[u]:
                if residual.cap[arc_id] <= 1e-12:
                    continue
                v = residual.to[arc_id]
                candidate = dist[u] + residual.cost[arc_id]
                if candidate < dist[v] - 1e-12:
                    dist[v] = candidate
                    changed = True
        if not changed:
            return dist
    raise UnboundedFlowError("negative-cost cycle detected")
