"""Minimum-cost network flow instance representation.

The D-phase of MINFLOTRANSIT is the LP dual of a min-cost flow problem
(paper section 2.3.1, step (5)); this module holds the flow instance
itself, independent of the solver used (:mod:`repro.flow.ssp`,
:mod:`repro.flow.networkx_backend` or the LP route in
:mod:`repro.flow.scipy_backend`).

Conventions: arc costs may be any finite number, capacities default to
"uncapacitated" (``None``); ``supply[v] > 0`` means the node injects
flow, ``supply[v] < 0`` means it absorbs flow.  Conservation is
``outflow(v) - inflow(v) = supply(v)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FlowError

__all__ = ["Arc", "FlowProblem", "FlowSolution"]


@dataclass(frozen=True)
class Arc:
    """One directed arc: endpoints, unit cost, optional capacity."""

    src: int
    dst: int
    cost: float
    capacity: float | None = None  # None = uncapacitated

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 0:
            raise FlowError(f"negative capacity on arc {self.src}->{self.dst}")


@dataclass
class FlowProblem:
    """A min-cost flow instance on nodes ``0 .. n_nodes-1``."""

    n_nodes: int
    arcs: list[Arc] = field(default_factory=list)
    supply: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.supply is None:
            self.supply = np.zeros(self.n_nodes)
        self.supply = np.asarray(self.supply, dtype=float)
        if self.supply.shape != (self.n_nodes,):
            raise FlowError(
                f"supply shape {self.supply.shape} != ({self.n_nodes},)"
            )

    def add_arc(
        self, src: int, dst: int, cost: float, capacity: float | None = None
    ) -> int:
        """Append an arc; returns its index."""
        for node in (src, dst):
            if not 0 <= node < self.n_nodes:
                raise FlowError(f"arc endpoint {node} out of range")
        self.arcs.append(Arc(src, dst, cost, capacity))
        return len(self.arcs) - 1

    def add_supply(self, node: int, amount: float) -> None:
        """Add ``amount`` to a node's supply (negative = demand)."""
        assert self.supply is not None
        self.supply[node] += amount

    @property
    def total_positive_supply(self) -> float:
        """Sum of all positive supplies (the flow a solver must route)."""
        assert self.supply is not None
        return float(self.supply[self.supply > 0].sum())

    def check_balanced(self, tol: float = 1e-9) -> None:
        """Raise :class:`FlowError` unless supplies sum to ~zero."""
        assert self.supply is not None
        imbalance = float(self.supply.sum())
        if abs(imbalance) > tol * max(1.0, self.total_positive_supply):
            raise FlowError(f"supplies do not balance (sum = {imbalance:.6g})")


@dataclass
class FlowSolution:
    """Result of a min-cost flow solve.

    ``flow`` aligns with ``problem.arcs``; ``potentials`` are node
    potentials π satisfying reduced-cost optimality
    (``cost + π(u) - π(v) >= 0`` on every residual arc).
    """

    problem: FlowProblem
    flow: np.ndarray
    potentials: np.ndarray
    total_cost: float
    backend: str
    #: Solver counters (populated by the native engines; see
    #: :class:`repro.flow.registry.SolveStats`).
    stats: object | None = None

    def residual_arcs(self):
        """Yield (src, dst, reduced capacity, cost) of the residual graph."""
        for k, arc in enumerate(self.problem.arcs):
            f = self.flow[k]
            remaining = None if arc.capacity is None else arc.capacity - f
            if remaining is None or remaining > 1e-12:
                yield arc.src, arc.dst, remaining, arc.cost
            if f > 1e-12:
                yield arc.dst, arc.src, f, -arc.cost
