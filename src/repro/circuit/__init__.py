"""Circuit substrate: netlists, builders, validation, ``.bench`` I/O."""

from repro.circuit.bench_io import dumps_bench, load_bench, loads_bench, save_bench
from repro.circuit.builder import CircuitBuilder
from repro.circuit.mapping import is_primitive_circuit, map_to_primitives
from repro.circuit.netlist import Circuit, Gate
from repro.circuit.stats import CircuitStats, circuit_stats
from repro.circuit.transform import prune_dangling
from repro.circuit.validate import Lint, validate_circuit

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "CircuitStats",
    "Gate",
    "Lint",
    "circuit_stats",
    "dumps_bench",
    "is_primitive_circuit",
    "load_bench",
    "loads_bench",
    "map_to_primitives",
    "prune_dangling",
    "save_bench",
    "validate_circuit",
]
