"""Structural validation and linting of circuits.

:func:`validate_circuit` raises :class:`~repro.errors.NetlistError` on
hard violations and returns a list of :class:`Lint` records for
soft issues (dangling gate outputs, unused inputs, excessive fanout)
that the sizing algorithms tolerate but a designer would want to know
about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.errors import NetlistError

__all__ = ["Lint", "validate_circuit"]


@dataclass(frozen=True)
class Lint:
    """One soft finding. ``kind`` is a stable machine-readable tag."""

    kind: str
    subject: str
    message: str


def validate_circuit(
    circuit: Circuit, max_fanout_warning: int = 32
) -> list[Lint]:
    """Check structure; raise on hard errors, return lints otherwise.

    Hard errors (duplicate drivers, undriven nets, cycles, arity
    mismatches) are detected by :meth:`Circuit.freeze`, which this calls.
    """
    circuit.freeze()
    lints: list[Lint] = []

    outputs = set(circuit.outputs)
    for gate in circuit.gates:
        if not circuit.loads_of(gate.output) and gate.output not in outputs:
            lints.append(
                Lint(
                    kind="dangling-output",
                    subject=gate.name,
                    message=(
                        f"gate {gate.name!r} output {gate.output!r} drives "
                        "nothing and is not a primary output"
                    ),
                )
            )
    for net in circuit.inputs:
        if not circuit.loads_of(net) and net not in outputs:
            lints.append(
                Lint(
                    kind="unused-input",
                    subject=net,
                    message=f"primary input {net!r} drives nothing",
                )
            )
    for net in circuit.nets:
        fanout = circuit.fanout_count(net)
        if fanout > max_fanout_warning:
            lints.append(
                Lint(
                    kind="high-fanout",
                    subject=net,
                    message=f"net {net!r} has fanout {fanout}",
                )
            )
    seen_pairs: set[tuple[str, str]] = set()
    for gate in circuit.gates:
        for net in gate.inputs:
            pair = (net, gate.name)
            if pair in seen_pairs:
                lints.append(
                    Lint(
                        kind="multi-pin-net",
                        subject=gate.name,
                        message=(
                            f"net {net!r} feeds multiple pins of gate "
                            f"{gate.name!r}"
                        ),
                    )
                )
            seen_pairs.add(pair)
    return lints


def require_clean(circuit: Circuit, allow: tuple[str, ...] = ()) -> None:
    """Raise if the circuit has lints other than the allowed kinds."""
    findings = [
        lint for lint in validate_circuit(circuit) if lint.kind not in allow
    ]
    if findings:
        summary = "; ".join(lint.message for lint in findings[:5])
        raise NetlistError(
            f"circuit {circuit.name!r} has {len(findings)} lint(s): {summary}"
        )
