"""Netlist data model: nets, gates and circuits.

A :class:`Circuit` is a gate-level combinational netlist.  Gates
instantiate library cells; nets connect one driver (a gate output or a
primary input) to any number of loads (gate input pins or primary
outputs).  The model is deliberately simple — combinational, single
driver per net — because that is the problem class of the paper.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import NetlistError
from repro.tech.cells import CellLibrary, shared_default_library

__all__ = ["Gate", "Circuit"]


@dataclass
class Gate:
    """One cell instance.

    ``inputs`` are net names in cell-pin order; ``output`` is the net the
    gate drives.
    """

    name: str
    cell: str
    inputs: tuple[str, ...]
    output: str

    @property
    def n_inputs(self) -> int:
        return len(self.inputs)


class Circuit:
    """A combinational gate-level netlist.

    Construction is incremental (:meth:`add_input`, :meth:`add_gate`,
    :meth:`mark_output`), after which :meth:`freeze` checks structural
    sanity and computes the topological order.  Most library entry points
    call :meth:`freeze` on your behalf.
    """

    def __init__(self, name: str, library: CellLibrary | None = None):
        self.name = name
        self.library = library or shared_default_library()
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._gates: dict[str, Gate] = {}
        self._driver: dict[str, Gate] = {}  # net -> driving gate
        self._loads: dict[str, list[tuple[Gate, int]]] = {}  # net -> pins
        self._order: list[Gate] | None = None

    # -- construction ------------------------------------------------------

    def add_input(self, net: str) -> str:
        """Declare ``net`` as a primary input."""
        self._mutable()
        if net in self._driver or net in self._inputs:
            raise NetlistError(f"net {net!r} already driven")
        self._inputs.append(net)
        self._loads.setdefault(net, [])
        return net

    def add_gate(
        self, name: str, cell: str, inputs: Iterable[str], output: str
    ) -> Gate:
        """Instantiate library cell ``cell``; returns the new gate."""
        self._mutable()
        if name in self._gates:
            raise NetlistError(f"duplicate gate name {name!r}")
        cell_def = self.library.cell(cell)  # raises on unknown cell
        pins = tuple(inputs)
        if len(pins) != cell_def.n_inputs:
            raise NetlistError(
                f"gate {name!r}: cell {cell} has {cell_def.n_inputs} inputs, "
                f"got {len(pins)}"
            )
        if output in self._driver or output in self._inputs:
            raise NetlistError(f"net {output!r} already driven")
        gate = Gate(name=name, cell=cell, inputs=pins, output=output)
        self._gates[name] = gate
        self._driver[output] = gate
        self._loads.setdefault(output, [])
        for position, net in enumerate(pins):
            self._loads.setdefault(net, []).append((gate, position))
        return gate

    def mark_output(self, net: str) -> None:
        """Declare ``net`` as a primary output."""
        self._mutable()
        if net in self._outputs:
            raise NetlistError(f"net {net!r} already a primary output")
        self._outputs.append(net)

    def _mutable(self) -> None:
        if self._order is not None:
            raise NetlistError(f"circuit {self.name!r} is frozen")

    # -- freezing / validation ----------------------------------------------

    def freeze(self) -> "Circuit":
        """Validate structure and compute the topological gate order."""
        if self._order is not None:
            return self
        undriven = [
            net
            for net in self._loads
            if net not in self._driver and net not in self._inputs
        ]
        for gate in self._gates.values():
            for net in gate.inputs:
                if net not in self._driver and net not in self._inputs:
                    undriven.append(net)
        if undriven:
            raise NetlistError(
                f"circuit {self.name!r}: undriven nets "
                f"{sorted(set(undriven))[:8]}"
            )
        for net in self._outputs:
            if net not in self._driver and net not in self._inputs:
                raise NetlistError(
                    f"circuit {self.name!r}: primary output {net!r} undriven"
                )
        self._order = self._topological_order()
        return self

    def _topological_order(self) -> list[Gate]:
        """Kahn's algorithm over gates; raises on combinational cycles."""
        indegree: dict[str, int] = {}
        for gate in self._gates.values():
            indegree[gate.name] = sum(
                1 for net in gate.inputs if net in self._driver
            )
        ready = deque(
            gate
            for gate in self._gates.values()
            if indegree[gate.name] == 0
        )
        order: list[Gate] = []
        while ready:
            gate = ready.popleft()
            order.append(gate)
            for load_gate, _pin in self._loads.get(gate.output, []):
                indegree[load_gate.name] -= 1
                if indegree[load_gate.name] == 0:
                    ready.append(load_gate)
        if len(order) != len(self._gates):
            cyclic = sorted(
                name for name, deg in indegree.items() if deg > 0
            )
            raise NetlistError(
                f"circuit {self.name!r}: combinational cycle through "
                f"{cyclic[:8]}"
            )
        return order

    @property
    def is_frozen(self) -> bool:
        return self._order is not None

    # -- queries -------------------------------------------------------------

    @property
    def inputs(self) -> tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[str, ...]:
        return tuple(self._outputs)

    @property
    def gates(self) -> tuple[Gate, ...]:
        return tuple(self._gates.values())

    @property
    def n_gates(self) -> int:
        return len(self._gates)

    @property
    def nets(self) -> list[str]:
        return list(self._loads)

    def gate(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError:
            raise NetlistError(f"unknown gate {name!r}") from None

    def driver_of(self, net: str) -> Gate | None:
        """Gate driving ``net``; ``None`` for primary inputs."""
        return self._driver.get(net)

    def loads_of(self, net: str) -> list[tuple[Gate, int]]:
        """(gate, pin position) pairs loading ``net``."""
        return list(self._loads.get(net, []))

    def fanout_count(self, net: str) -> int:
        extra = 1 if net in self._outputs else 0
        return len(self._loads.get(net, [])) + extra

    def topological_gates(self) -> list[Gate]:
        """Gates in topological (input to output) order."""
        if self._order is None:
            raise NetlistError(
                f"circuit {self.name!r}: freeze() before ordering queries"
            )
        return list(self._order)

    def device_count(self) -> int:
        """Total transistors across all gates."""
        return sum(
            self.library.device_count(gate.cell) for gate in self._gates.values()
        )

    # -- simulation ------------------------------------------------------------

    def evaluate(self, input_values: Mapping[str, bool]) -> dict[str, bool]:
        """Evaluate all net values for the given primary-input assignment.

        Used by generator and mapping equivalence tests.
        """
        self.freeze()
        values: dict[str, bool] = {}
        for net in self._inputs:
            if net not in input_values:
                raise NetlistError(f"missing value for primary input {net!r}")
            values[net] = bool(input_values[net])
        for gate in self.topological_gates():
            cell = self.library.cell(gate.cell)
            values[gate.output] = cell.evaluate(
                *(values[net] for net in gate.inputs)
            )
        return values

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, gates={len(self._gates)}, "
            f"inputs={len(self._inputs)}, outputs={len(self._outputs)})"
        )

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates.values())
