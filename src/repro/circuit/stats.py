"""Summary statistics of a circuit's structure.

Used by the benchmark suite to document how closely the generated
ISCAS85-equivalent circuits match the gate counts quoted in the paper's
Table 1, and by tests asserting topology character (depth, fanout
distribution, reconvergence).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.circuit.netlist import Circuit

__all__ = ["CircuitStats", "circuit_stats"]


@dataclass(frozen=True)
class CircuitStats:
    name: str
    n_gates: int
    n_inputs: int
    n_outputs: int
    n_devices: int
    logic_depth: int
    max_fanout: int
    mean_fanout: float
    cells: dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.name}: {self.n_gates} gates, {self.n_devices} devices, "
            f"{self.n_inputs} PI, {self.n_outputs} PO, depth {self.logic_depth}, "
            f"max fanout {self.max_fanout}"
        )


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute structural statistics (freezes the circuit)."""
    circuit.freeze()
    depth: dict[str, int] = {net: 0 for net in circuit.inputs}
    logic_depth = 0
    for gate in circuit.topological_gates():
        level = 1 + max((depth.get(net, 0) for net in gate.inputs), default=0)
        depth[gate.output] = level
        logic_depth = max(logic_depth, level)
    fanouts = [circuit.fanout_count(gate.output) for gate in circuit.gates]
    fanouts += [circuit.fanout_count(net) for net in circuit.inputs]
    cells = Counter(gate.cell for gate in circuit.gates)
    return CircuitStats(
        name=circuit.name,
        n_gates=circuit.n_gates,
        n_inputs=len(circuit.inputs),
        n_outputs=len(circuit.outputs),
        n_devices=circuit.device_count(),
        logic_depth=logic_depth,
        max_fanout=max(fanouts, default=0),
        mean_fanout=(sum(fanouts) / len(fanouts)) if fanouts else 0.0,
        cells=dict(cells),
    )
