"""ISCAS ``.bench`` netlist reader/writer.

The classic ISCAS85 interchange format::

    # c17
    INPUT(1)
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)

Functions recognized: AND, OR, NAND, NOR, NOT, BUF/BUFF, XOR, XNOR, and
(as an extension for round-tripping this library's netlists) AOI21,
AOI22, OAI21, OAI22.  Sequential elements (DFF) are rejected: the paper
sizes combinational circuits.

Wide AND/OR/NAND/NOR terms beyond the library's 4-input cells are
decomposed into balanced trees, preserving logic function (tested by
random-vector equivalence in the test suite).
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import TextIO

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.errors import BenchFormatError
from repro.tech.cells import CellLibrary

__all__ = ["load_bench", "loads_bench", "save_bench", "dumps_bench"]

_LINE = re.compile(
    r"^\s*(?P<out>[^=\s]+)\s*=\s*(?P<fn>[A-Za-z0-9]+)\s*\((?P<args>[^)]*)\)\s*$"
)
_IO = re.compile(r"^\s*(?P<kind>INPUT|OUTPUT)\s*\((?P<net>[^)]+)\)\s*$", re.I)

_FUNCTION_ALIASES = {
    "BUFF": "BUF",
    "NOT": "NOT",
    "INV": "NOT",
}

_EXTENSION_CELLS = {"AOI21", "AOI22", "OAI21", "OAI22"}


def loads_bench(
    text: str, name: str = "bench", library: CellLibrary | None = None
) -> Circuit:
    """Parse ``.bench`` text into a frozen :class:`Circuit`."""
    return _parse(io.StringIO(text), name, library)


def load_bench(path: str | Path, library: CellLibrary | None = None) -> Circuit:
    """Read a ``.bench`` file from disk."""
    path = Path(path)
    with open(path) as handle:
        return _parse(handle, path.stem, library)


def _parse(
    stream: TextIO, name: str, library: CellLibrary | None
) -> Circuit:
    builder = CircuitBuilder(name, library=library)
    outputs: list[str] = []
    gate_lines: list[tuple[int, str, str, list[str]]] = []

    for lineno, raw in enumerate(stream, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO.match(line)
        if io_match:
            net = _canon(io_match.group("net"))
            if io_match.group("kind").upper() == "INPUT":
                builder.input(net)
            else:
                outputs.append(net)
            continue
        gate_match = _LINE.match(line)
        if gate_match is None:
            raise BenchFormatError(f"{name}:{lineno}: cannot parse {line!r}")
        function = gate_match.group("fn").upper()
        function = _FUNCTION_ALIASES.get(function, function)
        if function == "DFF":
            raise BenchFormatError(
                f"{name}:{lineno}: sequential element DFF unsupported "
                "(combinational circuits only)"
            )
        args = [
            _canon(token)
            for token in gate_match.group("args").split(",")
            if token.strip()
        ]
        if not args:
            raise BenchFormatError(f"{name}:{lineno}: gate with no inputs")
        gate_lines.append((lineno, _canon(gate_match.group("out")), function, args))

    for lineno, out, function, args in gate_lines:
        _emit(builder, name, lineno, out, function, args)
    for net in outputs:
        builder.output(net)
    try:
        return builder.build()
    except Exception as exc:  # re-tag structural errors with the file name
        raise BenchFormatError(f"{name}: {exc}") from exc


def _canon(token: str) -> str:
    token = token.strip()
    if not token:
        raise BenchFormatError("empty net name")
    return token


def _emit(
    builder: CircuitBuilder,
    name: str,
    lineno: int,
    out: str,
    function: str,
    args: list[str],
) -> None:
    arity = len(args)
    try:
        if function == "NOT":
            _require_arity(arity, 1, name, lineno, function)
            builder.not_(args[0], out=out)
        elif function == "BUF":
            _require_arity(arity, 1, name, lineno, function)
            builder.buf(args[0], out=out)
        elif function == "XOR":
            _require_arity(arity, 2, name, lineno, function)
            builder.xor(args[0], args[1], out=out)
        elif function == "XNOR":
            _require_arity(arity, 2, name, lineno, function)
            builder.xnor(args[0], args[1], out=out)
        elif function == "AND":
            builder.and_(*args, out=out)
        elif function == "OR":
            builder.or_(*args, out=out)
        elif function == "NAND":
            builder.nand(*args, out=out)
        elif function == "NOR":
            builder.nor(*args, out=out)
        elif function in _EXTENSION_CELLS:
            builder.gate(function, args, out=out)
        else:
            raise BenchFormatError(
                f"{name}:{lineno}: unknown function {function!r}"
            )
    except BenchFormatError:
        raise
    except Exception as exc:
        raise BenchFormatError(f"{name}:{lineno}: {exc}") from exc


def _require_arity(
    arity: int, expected: int, name: str, lineno: int, function: str
) -> None:
    if arity != expected:
        raise BenchFormatError(
            f"{name}:{lineno}: {function} expects {expected} inputs, got {arity}"
        )


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------

_CELL_TO_FUNCTION = {
    "INV": "NOT",
    "BUF": "BUF",
}


def dumps_bench(circuit: Circuit) -> str:
    """Serialize a circuit to ``.bench`` text.

    Multi-input cells are written with their logic function (``NAND2``
    becomes ``NAND``); AOI/OAI cells use the extension keywords this
    module's reader understands.
    """
    circuit.freeze()
    lines = [f"# {circuit.name} — written by repro.circuit.bench_io"]
    lines += [f"INPUT({net})" for net in circuit.inputs]
    lines += [f"OUTPUT({net})" for net in circuit.outputs]
    for gate in circuit.topological_gates():
        cell = gate.cell
        if cell in _CELL_TO_FUNCTION:
            function = _CELL_TO_FUNCTION[cell]
        elif cell in _EXTENSION_CELLS:
            function = cell
        else:
            function = re.sub(r"\d+$", "", cell)
        args = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {function}({args})")
    return "\n".join(lines) + "\n"


def save_bench(circuit: Circuit, path: str | Path) -> Path:
    """Write a circuit to a ``.bench`` file; returns the path."""
    path = Path(path)
    with open(path, "w") as handle:
        handle.write(dumps_bench(circuit))
    return path
