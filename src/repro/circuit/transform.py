"""Structural circuit transforms.

:func:`prune_dangling` removes logic that drives neither a primary
output nor any other gate.  The sizing optimizers require load on every
vertex (a zero-load vertex has no delay attribute and makes the
``(D - A)`` system singular), so netlists imported from ``.bench``
files or hand-built circuits should be pruned first.

:func:`buffer_high_fanout` splits nets with excessive fanout across a
tree of buffers.  Sizing cannot change topology, so a net with dozens
of loads puts a hard floor on the achievable delay even at the maximum
size; real netlists (including the ISCAS85 suite) contain buffer trees
for exactly this reason.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit

__all__ = ["buffer_high_fanout", "prune_dangling"]


def prune_dangling(circuit: Circuit, suffix: str = "") -> Circuit:
    """Return a copy without gates whose fanout cone reaches no output.

    Iterates to a fixed point (removing one dangling gate can strand its
    drivers).  Primary inputs are kept even if unused, preserving the
    interface.
    """
    circuit.freeze()
    live: set[str] = set()
    # Walk backwards from the outputs marking live gates.
    worklist = [
        circuit.driver_of(net)
        for net in circuit.outputs
        if circuit.driver_of(net) is not None
    ]
    while worklist:
        gate = worklist.pop()
        assert gate is not None
        if gate.name in live:
            continue
        live.add(gate.name)
        for net in gate.inputs:
            driver = circuit.driver_of(net)
            if driver is not None and driver.name not in live:
                worklist.append(driver)

    if len(live) == circuit.n_gates:
        return circuit

    pruned = Circuit(circuit.name + suffix, library=circuit.library)
    for net in circuit.inputs:
        pruned.add_input(net)
    for gate in circuit.topological_gates():
        if gate.name in live:
            pruned.add_gate(gate.name, gate.cell, gate.inputs, gate.output)
    for net in circuit.outputs:
        pruned.mark_output(net)
    return pruned.freeze()


def buffer_high_fanout(
    circuit: Circuit, max_fanout: int = 8, suffix: str = ""
) -> Circuit:
    """Rebuild the circuit with buffer trees on nets over ``max_fanout``.

    Loads beyond ``max_fanout`` are grouped under BUF cells, recursively,
    so no net drives more than ``max_fanout`` pins.  Primary outputs stay
    attached to the original net.  Logic function is preserved (BUF is
    the identity), which the test suite checks by simulation.
    """
    if max_fanout < 2:
        raise ValueError(f"max_fanout must be >= 2, got {max_fanout}")
    circuit.freeze()
    rebuilt = Circuit(circuit.name + suffix, library=circuit.library)
    for net in circuit.inputs:
        rebuilt.add_input(net)

    # Buffer trees must be created before the loads that read them, but
    # a BUF reading net X must come after X's driver; emitting trees
    # lazily per driven net in topological order satisfies both.
    replacement: dict[tuple[str, str, int], str] = {}

    def emit_tree(net: str) -> None:
        loads = circuit.loads_of(net)
        if len(loads) <= max_fanout:
            return
        root_budget = max_fanout
        if net in circuit.outputs:
            # Keep one slot of the root for the primary-output load.
            root_budget = max(2, max_fanout - 1)
        nets_out = _spread_tree(rebuilt, net, len(loads), max_fanout, root_budget)
        for (gate, position), new_net in zip(loads, nets_out):
            replacement[(net, gate.name, position)] = new_net

    for net in circuit.inputs:
        emit_tree(net)
    for gate in circuit.topological_gates():
        new_inputs = tuple(
            replacement.get((net, gate.name, position), net)
            for position, net in enumerate(gate.inputs)
        )
        rebuilt.add_gate(gate.name, gate.cell, new_inputs, gate.output)
        emit_tree(gate.output)
    for net in circuit.outputs:
        rebuilt.mark_output(net)
    return rebuilt.freeze()


def _spread_tree(
    rebuilt: Circuit,
    net: str,
    n_loads: int,
    max_fanout: int,
    root_budget: int,
) -> list[str]:
    """Emit a buffer tree under ``net`` serving ``n_loads`` consumers.

    Returns one replacement net per load (in load order).
    """
    counter = 0

    def expand(source: str, count: int, budget: int) -> list[str]:
        nonlocal counter
        if count <= budget:
            return [source] * count
        legs: list[str] = []
        for _ in range(budget):
            leg = f"{source}__fb{counter}"
            counter += 1
            rebuilt.add_gate(f"fb_{leg}", "BUF", (source,), leg)
            legs.append(leg)
        out: list[str] = []
        base, extra = divmod(count, budget)
        for i, leg in enumerate(legs):
            share = base + (1 if i < extra else 0)
            out.extend(expand(leg, share, max_fanout))
        return out

    return expand(net, n_loads, root_budget)
