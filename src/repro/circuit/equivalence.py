"""Randomized combinational equivalence checking.

Circuit transforms (technology mapping, fanout buffering, pruning) must
preserve logic function.  This module provides the library-grade
checker the transforms' test suites use: random input vectors plus
optional exhaustive mode for small input counts.

Randomized checking is sound for refutation and probabilistically
complete for confirmation; ``exhaustive=True`` (or few inputs) makes it
a proof.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.errors import NetlistError

__all__ = ["EquivalenceResult", "check_equivalence"]


@dataclass(frozen=True)
class EquivalenceResult:
    equivalent: bool
    vectors_checked: int
    exhaustive: bool
    #: First failing assignment and output, when not equivalent.
    counterexample: dict | None = None
    failing_output: str | None = None

    def __bool__(self) -> bool:
        return self.equivalent


def check_equivalence(
    first: Circuit,
    second: Circuit,
    n_vectors: int = 64,
    seed: int = 0,
    exhaustive: bool | None = None,
) -> EquivalenceResult:
    """Compare two circuits on their common interface.

    Both circuits must have identical input and output sets.  With
    ``exhaustive=None`` the mode is chosen automatically: exhaustive
    when the input count allows at most ``n_vectors`` assignments.
    """
    if set(first.inputs) != set(second.inputs):
        raise NetlistError(
            "circuits expose different inputs: "
            f"{sorted(set(first.inputs) ^ set(second.inputs))[:6]}"
        )
    if set(first.outputs) != set(second.outputs):
        raise NetlistError(
            "circuits expose different outputs: "
            f"{sorted(set(first.outputs) ^ set(second.outputs))[:6]}"
        )
    inputs = list(first.inputs)
    n = len(inputs)
    if exhaustive is None:
        exhaustive = n <= 16 and 2**n <= n_vectors * 4

    if exhaustive:
        assignments = (
            {name: bool(bits >> k & 1) for k, name in enumerate(inputs)}
            for bits in range(2**n)
        )
        total = 2**n
    else:
        rng = random.Random(seed)
        assignments = (
            {name: rng.random() < 0.5 for name in inputs}
            for _ in range(n_vectors)
        )
        total = n_vectors

    checked = 0
    for assignment in assignments:
        va = first.evaluate(assignment)
        vb = second.evaluate(assignment)
        checked += 1
        for out in first.outputs:
            if va[out] != vb[out]:
                return EquivalenceResult(
                    equivalent=False,
                    vectors_checked=checked,
                    exhaustive=exhaustive,
                    counterexample=assignment,
                    failing_output=out,
                )
    return EquivalenceResult(
        equivalent=True, vectors_checked=total, exhaustive=exhaustive
    )
