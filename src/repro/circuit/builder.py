"""Fluent construction helper for circuits.

Generators build netlists from logic expressions; writing explicit gate
and net names for every instance is noisy, so :class:`CircuitBuilder`
auto-names gates/nets and offers one method per logic function.  Each
method returns the output net name, letting expressions compose:

    b = CircuitBuilder("half_adder")
    a, c = b.input("a"), b.input("c")
    b.output(b.xor(a, c), name="sum")
    b.output(b.and_(a, c), name="carry")
    circuit = b.build()
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.circuit.netlist import Circuit
from repro.errors import NetlistError
from repro.tech.cells import CellLibrary

__all__ = ["CircuitBuilder"]


class CircuitBuilder:
    """Incrementally constructs a :class:`~repro.circuit.netlist.Circuit`."""

    #: Widest AND/OR/NAND/NOR cell in the default library.
    MAX_FAN_IN = 4

    def __init__(self, name: str, library: CellLibrary | None = None):
        self._circuit = Circuit(name, library=library)
        self._counter = 0

    # -- io -------------------------------------------------------------

    def input(self, name: str) -> str:
        return self._circuit.add_input(name)

    def inputs(self, names: Iterable[str]) -> list[str]:
        return [self.input(name) for name in names]

    def input_bus(self, prefix: str, width: int) -> list[str]:
        return [self.input(f"{prefix}[{i}]") for i in range(width)]

    def output(self, net: str, name: str | None = None) -> str:
        """Mark ``net`` as a primary output, optionally via a named alias.

        ``.bench`` files name outputs after nets, so aliasing inserts a
        buffer only when a distinct name is requested.
        """
        if name is not None and name != net:
            net = self.buf(net, out=name)
        self._circuit.mark_output(net)
        return net

    # -- gates ------------------------------------------------------------

    def gate(self, cell: str, inputs: Sequence[str], out: str | None = None) -> str:
        """Instantiate an arbitrary library cell; returns the output net."""
        out = out or self._fresh_net()
        name = f"g{self._counter}_{cell.lower()}"
        self._counter += 1
        self._circuit.add_gate(name, cell, inputs, out)
        return out

    def _fresh_net(self) -> str:
        net = f"n{self._counter}"
        self._counter += 1
        return net

    def reserve_names(self, count: int) -> None:
        """Advance the auto-name counter by ``count``.

        Needed when gates/nets from another circuit (which used the same
        ``n<k>``/``g<k>`` naming scheme) are copied into this builder —
        otherwise freshly generated names would collide with them.
        """
        if count < 0:
            raise NetlistError(f"cannot reserve {count} names")
        self._counter += count

    def not_(self, a: str, out: str | None = None) -> str:
        return self.gate("INV", [a], out)

    inv = not_

    def buf(self, a: str, out: str | None = None) -> str:
        return self.gate("BUF", [a], out)

    def _tree(self, cell_prefix: str, nets: Sequence[str], out: str | None) -> str:
        """Balanced reduction tree for wide AND/OR/NAND/NOR terms."""
        nets = list(nets)
        if not nets:
            raise NetlistError(f"{cell_prefix}: needs at least one input")
        if len(nets) == 1:
            return self.buf(nets[0], out) if out else nets[0]
        invert = cell_prefix in ("NAND", "NOR")
        base = {"NAND": "AND", "NOR": "OR"}.get(cell_prefix, cell_prefix)
        while len(nets) > self.MAX_FAN_IN:
            grouped: list[str] = []
            for i in range(0, len(nets), self.MAX_FAN_IN):
                chunk = nets[i : i + self.MAX_FAN_IN]
                if len(chunk) == 1:
                    grouped.append(chunk[0])
                else:
                    grouped.append(self.gate(f"{base}{len(chunk)}", chunk))
            nets = grouped
        final = f"{cell_prefix}{len(nets)}" if invert else f"{base}{len(nets)}"
        return self.gate(final, nets, out)

    def and_(self, *nets: str, out: str | None = None) -> str:
        return self._tree("AND", nets, out)

    def or_(self, *nets: str, out: str | None = None) -> str:
        return self._tree("OR", nets, out)

    def nand(self, *nets: str, out: str | None = None) -> str:
        return self._tree("NAND", nets, out)

    def nor(self, *nets: str, out: str | None = None) -> str:
        return self._tree("NOR", nets, out)

    def xor(self, a: str, b: str, out: str | None = None) -> str:
        return self.gate("XOR2", [a, b], out)

    def xnor(self, a: str, b: str, out: str | None = None) -> str:
        return self.gate("XNOR2", [a, b], out)

    def aoi21(self, a: str, b: str, c: str, out: str | None = None) -> str:
        return self.gate("AOI21", [a, b, c], out)

    def oai21(self, a: str, b: str, c: str, out: str | None = None) -> str:
        return self.gate("OAI21", [a, b, c], out)

    def mux(self, sel: str, a: str, b: str, out: str | None = None) -> str:
        """2:1 multiplexer: ``sel ? b : a`` from AOI/INV primitives."""
        nsel = self.not_(sel)
        term = self.gate(
            "AOI22", [a, nsel, b, sel]
        )  # not(a·~sel + b·sel)
        return self.not_(term, out)

    # -- multi-bit helpers --------------------------------------------------

    def half_adder(self, a: str, b: str) -> tuple[str, str]:
        """Returns (sum, carry)."""
        return self.xor(a, b), self.and_(a, b)

    def full_adder(self, a: str, b: str, cin: str) -> tuple[str, str]:
        """Returns (sum, carry-out); standard two-half-adder structure."""
        s1 = self.xor(a, b)
        total = self.xor(s1, cin)
        c1 = self.and_(a, b)
        c2 = self.and_(s1, cin)
        return total, self.or_(c1, c2)

    # -- finish -----------------------------------------------------------

    @property
    def circuit(self) -> Circuit:
        return self._circuit

    def build(self) -> Circuit:
        """Freeze and return the circuit."""
        return self._circuit.freeze()
