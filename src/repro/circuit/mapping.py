"""Technology mapping of macro cells onto primitive cells.

True transistor sizing needs explicit transistor networks, which only
primitive cells (INV, NANDk, NORk, AOI/OAI) carry.
:func:`map_to_primitives` rewrites a circuit so every gate is primitive:

* ``BUF``      -> INV, INV
* ``ANDk``     -> NANDk, INV
* ``ORk``      -> NORk, INV
* ``XOR2``     -> the classic 4-NAND2 network
* ``XNOR2``    -> 4-NAND2 XOR followed by INV

The rewrite preserves the boolean function (checked by randomized
equivalence tests) and primary input/output names.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit, Gate
from repro.errors import NetlistError
from repro.tech.cells import CellLibrary

__all__ = ["map_to_primitives", "is_primitive_circuit"]


def is_primitive_circuit(circuit: Circuit) -> bool:
    """True when every gate instantiates a primitive cell."""
    return all(
        circuit.library.cell(gate.cell).is_primitive for gate in circuit.gates
    )


def map_to_primitives(
    circuit: Circuit, suffix: str = "_mapped"
) -> Circuit:
    """Return a functionally equivalent all-primitive circuit."""
    circuit.freeze()
    mapped = Circuit(circuit.name + suffix, library=circuit.library)
    for net in circuit.inputs:
        mapped.add_input(net)
    for gate in circuit.topological_gates():
        _map_gate(mapped, circuit.library, gate)
    for net in circuit.outputs:
        mapped.mark_output(net)
    return mapped.freeze()


def _map_gate(target: Circuit, library: CellLibrary, gate: Gate) -> None:
    cell = library.cell(gate.cell)
    if cell.is_primitive:
        target.add_gate(gate.name, gate.cell, gate.inputs, gate.output)
        return
    name = gate.name
    ins = gate.inputs
    out = gate.output
    if cell.name == "BUF":
        mid = f"{name}__m0"
        target.add_gate(f"{name}__i0", "INV", ins, mid)
        target.add_gate(f"{name}__i1", "INV", (mid,), out)
    elif cell.function == "AND":
        mid = f"{name}__m0"
        target.add_gate(f"{name}__n", f"NAND{len(ins)}", ins, mid)
        target.add_gate(f"{name}__i", "INV", (mid,), out)
    elif cell.function == "OR":
        mid = f"{name}__m0"
        target.add_gate(f"{name}__n", f"NOR{len(ins)}", ins, mid)
        target.add_gate(f"{name}__i", "INV", (mid,), out)
    elif cell.name == "XOR2":
        _emit_xor(target, name, ins[0], ins[1], out)
    elif cell.name == "XNOR2":
        mid = f"{name}__x"
        _emit_xor(target, name, ins[0], ins[1], mid)
        target.add_gate(f"{name}__i", "INV", (mid,), out)
    else:
        raise NetlistError(f"no primitive mapping for cell {cell.name!r}")


def _emit_xor(target: Circuit, name: str, a: str, b: str, out: str) -> None:
    """The 4-NAND2 XOR: n1=NAND(a,b); out=NAND(NAND(a,n1), NAND(n1,b))."""
    n1 = f"{name}__n1"
    n2 = f"{name}__n2"
    n3 = f"{name}__n3"
    target.add_gate(f"{name}__g1", "NAND2", (a, b), n1)
    target.add_gate(f"{name}__g2", "NAND2", (a, n1), n2)
    target.add_gate(f"{name}__g3", "NAND2", (n1, b), n3)
    target.add_gate(f"{name}__g4", "NAND2", (n2, n3), out)
