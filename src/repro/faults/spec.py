"""Fault-schedule grammar: compile ``--faults`` strings into rules.

A *fault spec* names where faults fire, what kind they are, and how
often, in a compact operator-facing string::

    SITE:KIND[=ARG]@RATE[*MAX] [; SITE:KIND[=ARG]@RATE[*MAX] ...]

    cache.get:io_error@0.05; worker:kill@0.02*2; queue.lease:busy@0.1

* ``SITE`` — a probe name (see :data:`KNOWN_SITES` for the wired-in
  points; unknown sites parse fine so tests can add private probes).
* ``KIND`` — the failure mode (:data:`KNOWN_KINDS`); ``delay``/``hang``
  accept ``=SECONDS`` (e.g. ``solver:delay=0.01@0.5``).
* ``RATE`` — per-invocation fire probability in ``(0, 1]``, drawn from
  a seeded per-rule RNG so the schedule replays exactly.
* ``MAX`` — optional cap on total fires for the rule (``*2`` = at most
  two fires); with a shared state directory the cap is fleet-wide.

Parsing is strict: unknown kinds, rates outside ``(0, 1]``, or
malformed clauses raise :class:`~repro.errors.ReproError` so a typo in
``--faults`` fails fast instead of silently injecting nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["FaultRule", "KNOWN_KINDS", "KNOWN_SITES", "format_spec", "parse_spec"]

#: Failure modes the injector knows how to act out.
KNOWN_KINDS = (
    "io_error",   # raise OSError (cache backend I/O failure)
    "busy",       # raise sqlite3.OperationalError("database is locked")
    "error",      # raise RuntimeError (generic transient failure)
    "kill",       # os._exit(137): simulate SIGKILL of the worker process
    "hang",       # sleep ARG seconds (default 30) — exercises timeouts
    "delay",      # sleep ARG seconds (default 0.01) — jitter, not death
    "truncate",   # decision probe: caller cuts the payload short
)

#: Probe points wired into the library (documented, not enforced —
#: private test probes may use any site name).
KNOWN_SITES = (
    "cache.get",      # backend read, fires before the store is touched
    "cache.put",      # backend write
    "queue.lease",    # work-queue lease transaction
    "queue.publish",  # work-queue create/finish transactions
    "worker",         # pool-worker entry, before the job runs
    "solver",         # between solver phases inside a job
    "http.response",  # server response write (``truncate``)
)

#: Default sleep (seconds) for ``hang`` / ``delay`` when no ``=ARG``.
DEFAULT_SLEEPS = {"hang": 30.0, "delay": 0.01}


@dataclass(frozen=True)
class FaultRule:
    """One compiled clause of a fault spec."""

    site: str
    kind: str
    rate: float
    arg: float | None = None
    max_count: int | None = None

    @property
    def sleep_seconds(self) -> float:
        """Sleep duration for ``hang``/``delay`` rules."""
        if self.arg is not None:
            return self.arg
        return DEFAULT_SLEEPS.get(self.kind, 0.0)

    def to_clause(self) -> str:
        """Render back to spec-string form (inverse of parsing)."""
        clause = f"{self.site}:{self.kind}"
        if self.arg is not None:
            clause += f"={self.arg:g}"
        clause += f"@{self.rate:g}"
        if self.max_count is not None:
            clause += f"*{self.max_count}"
        return clause


def _parse_clause(clause: str) -> FaultRule:
    site, sep, rest = clause.partition(":")
    site = site.strip()
    if not sep or not site:
        raise ReproError(
            f"fault clause {clause!r}: expected SITE:KIND[=ARG]@RATE[*MAX]"
        )
    body, sep, rate_part = rest.partition("@")
    if not sep:
        raise ReproError(f"fault clause {clause!r}: missing @RATE")
    kind, sep, arg_part = body.partition("=")
    kind = kind.strip()
    if kind not in KNOWN_KINDS:
        raise ReproError(
            f"fault clause {clause!r}: unknown kind {kind!r} "
            f"(known: {', '.join(KNOWN_KINDS)})"
        )
    arg: float | None = None
    if sep:
        try:
            arg = float(arg_part)
        except ValueError:
            raise ReproError(
                f"fault clause {clause!r}: bad argument {arg_part!r}"
            ) from None
        if arg < 0:
            raise ReproError(f"fault clause {clause!r}: argument must be >= 0")
    rate_text, sep, max_part = rate_part.partition("*")
    try:
        rate = float(rate_text)
    except ValueError:
        raise ReproError(
            f"fault clause {clause!r}: bad rate {rate_text!r}"
        ) from None
    if not 0.0 < rate <= 1.0:
        raise ReproError(
            f"fault clause {clause!r}: rate must be in (0, 1], got {rate}"
        )
    max_count: int | None = None
    if sep:
        try:
            max_count = int(max_part)
        except ValueError:
            raise ReproError(
                f"fault clause {clause!r}: bad max count {max_part!r}"
            ) from None
        if max_count < 1:
            raise ReproError(f"fault clause {clause!r}: max count must be >= 1")
    return FaultRule(site=site, kind=kind, rate=rate, arg=arg, max_count=max_count)


def parse_spec(text: str) -> tuple[FaultRule, ...]:
    """Compile a fault spec string into a tuple of :class:`FaultRule`.

    Clauses are semicolon-separated; empty clauses are ignored, so
    trailing semicolons are harmless.  An empty/whitespace spec yields
    an empty tuple (no faults).
    """
    rules = []
    for clause in text.split(";"):
        clause = clause.strip()
        if clause:
            rules.append(_parse_clause(clause))
    return tuple(rules)


def format_spec(rules: tuple[FaultRule, ...]) -> str:
    """Render rules back into a spec string (``parse_spec`` inverse)."""
    return ";".join(rule.to_clause() for rule in rules)
