"""Deterministic, seeded fault injection behind named probe points.

The library is sprinkled with cheap probes — ``probe("cache.get")``,
``probe("worker")``, ``decide("http.response")`` — that do nothing
until a :class:`FaultInjector` is installed.  An injector compiles a
spec string (see :mod:`repro.faults.spec`) and, per probe invocation,
draws from a **per-rule seeded RNG** (``random.Random(f"{seed}:{site}:
{kind}")``): the same spec + seed produces the same fault schedule on
every run, which is what makes chaos tests replayable.

Faults *act* where they fire: error kinds raise (``io_error`` →
:class:`OSError`, ``busy`` → ``sqlite3.OperationalError``), ``delay``/
``hang`` sleep, ``kill`` calls ``os._exit(137)`` to simulate a
SIGKILLed worker.  ``truncate`` is a *decision* kind — the probe
answers true/false and the caller (the HTTP server) mutilates its own
output.

Worker processes: fault config travels to pool workers explicitly (the
executor passes ``(spec, seed, state_dir)`` into ``pool_entry``) and
implicitly via ``REPRO_FAULTS``/``REPRO_FAULT_SEED``/
``REPRO_FAULT_STATE`` environment variables, so freshly spawned
processes re-install the schedule before running anything.  Because
each new worker process restarts its RNG streams, lethal rules should
carry a ``*MAX`` cap plus a shared ``state_dir``: fire slots are then
claimed fleet-wide via ``O_EXCL`` marker files, so "at most 2 kills"
holds across every process and every restart — guaranteeing a chaos
run eventually completes.

Every fire is counted in ``repro_faults_injected_total{site,kind}``
(global registry) and appended to ``<state_dir>/faults-<pid>.jsonl``
when a state directory is configured (the CI artifact).
"""

from __future__ import annotations

import json
import os
import random
import sqlite3
import threading
import time
from pathlib import Path

from repro.faults.spec import FaultRule, format_spec, parse_spec
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "ENV_SEED",
    "ENV_SPEC",
    "ENV_STATE",
    "FaultInjector",
    "active",
    "decide",
    "install",
    "install_from_args",
    "observe_faults",
    "probe",
    "uninstall",
]

ENV_SPEC = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULT_SEED"
ENV_STATE = "REPRO_FAULT_STATE"

#: Kinds that raise when they fire, and the exception they raise with.
_RAISERS = {
    "io_error": lambda site: OSError(f"injected io_error at {site}"),
    "busy": lambda site: sqlite3.OperationalError(
        f"database is locked (injected at {site})"
    ),
    "error": lambda site: RuntimeError(f"injected error at {site}"),
}

#: Kinds :meth:`FaultInjector.fire` acts on; ``truncate`` is answered
#: by :meth:`FaultInjector.decide` instead.
_ACTION_KINDS = frozenset(("io_error", "busy", "error", "kill", "hang", "delay"))


class FaultInjector:
    """A compiled fault schedule: seeded draws, caps, and actions."""

    def __init__(
        self,
        rules: tuple[FaultRule, ...],
        seed: int = 0,
        state_dir: str | Path | None = None,
    ) -> None:
        self.rules = tuple(rules)
        self.seed = int(seed)
        self.state_dir = Path(state_dir) if state_dir is not None else None
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._rngs = {
            id(rule): random.Random(f"{self.seed}:{rule.site}:{rule.kind}")
            for rule in self.rules
        }
        self._fired: dict[int, int] = {id(rule): 0 for rule in self.rules}
        self._by_site: dict[str, list[FaultRule]] = {}
        for rule in self.rules:
            self._by_site.setdefault(rule.site, []).append(rule)
        self._pending: list[dict] = []
        self._log_path = (
            self.state_dir / f"faults-{os.getpid()}.jsonl"
            if self.state_dir is not None
            else None
        )

    # -- bookkeeping ---------------------------------------------------

    @property
    def spec(self) -> str:
        """The canonical spec string this injector was compiled from."""
        return format_spec(self.rules)

    def config_args(self) -> tuple[str, int, str | None]:
        """``(spec, seed, state_dir)`` — picklable worker hand-off."""
        return (
            format_spec(self.rules),
            self.seed,
            str(self.state_dir) if self.state_dir is not None else None,
        )

    def _claim_shared_slot(self, rule: FaultRule) -> bool:
        """Claim one fleet-wide fire slot via an O_EXCL marker file.

        Returns False once all ``max_count`` slots are taken by any
        process that shares the state directory — this is what bounds
        lethal faults (kills) across worker restarts.
        """
        assert self.state_dir is not None and rule.max_count is not None
        stem = f"cap-{rule.site}.{rule.kind}"
        for n in range(rule.max_count):
            path = self.state_dir / f"{stem}.{n}"
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def _draw(self, rule: FaultRule) -> bool:
        """One seeded draw for ``rule``; True when the fault fires."""
        with self._lock:
            if self._rngs[id(rule)].random() >= rule.rate:
                return False
            if rule.max_count is not None:
                if self.state_dir is not None:
                    if not self._claim_shared_slot(rule):
                        return False
                elif self._fired[id(rule)] >= rule.max_count:
                    return False
            self._fired[id(rule)] += 1
        self._record(rule)
        return True

    def _record(self, rule: FaultRule) -> None:
        event = {"site": rule.site, "kind": rule.kind, "ts": time.time(),
                 "pid": os.getpid()}
        get_registry().counter(
            "repro_faults_injected_total",
            "Faults fired by the injection harness, by probe site and kind.",
            ("site", "kind"),
        ).inc(site=rule.site, kind=rule.kind)
        with self._lock:
            self._pending.append(event)
            if len(self._pending) > 1000:
                del self._pending[:-1000]
        if self._log_path is not None:
            try:
                with open(self._log_path, "a") as handle:
                    handle.write(json.dumps(event) + "\n")
                    handle.flush()
            except OSError:
                pass  # the fault log is best-effort telemetry

    def drain_events(self) -> list[dict]:
        """Return and clear fire events since the last drain.

        Pool workers ship these back inside the job's observability
        dict; the parent folds them into its own metrics registry via
        :func:`observe_faults` (worker processes' registries are
        invisible to the service).
        """
        with self._lock:
            events, self._pending = self._pending, []
        return events

    def counts(self) -> dict[str, int]:
        """``{"site:kind": fires}`` snapshot for stats surfaces."""
        with self._lock:
            return {
                f"{rule.site}:{rule.kind}": self._fired[id(rule)]
                for rule in self.rules
            }

    # -- the probes ----------------------------------------------------

    def fire(self, site: str) -> None:
        """Evaluate every action rule at ``site`` and act on fires.

        Error kinds raise, ``delay``/``hang`` sleep, ``kill`` exits the
        process with status 137 (after flushing the fault log) — the
        caller never observes a ``kill`` fire.
        """
        for rule in self._by_site.get(site, ()):
            if rule.kind not in _ACTION_KINDS or not self._draw(rule):
                continue
            if rule.kind == "kill":
                os._exit(137)
            if rule.kind in ("hang", "delay"):
                time.sleep(rule.sleep_seconds)
                continue
            raise _RAISERS[rule.kind](site)

    def decide(self, site: str, kind: str = "truncate") -> bool:
        """Answer a decision probe: should the caller fault itself?"""
        for rule in self._by_site.get(site, ()):
            if rule.kind == kind and self._draw(rule):
                return True
        return False


# -- process-wide installation ------------------------------------------

_ACTIVE: FaultInjector | None = None
_ENV_CHECKED = False
_STATE_LOCK = threading.Lock()


def install(
    spec: str | tuple[FaultRule, ...],
    seed: int = 0,
    state_dir: str | Path | None = None,
    propagate: bool = True,
) -> FaultInjector:
    """Compile ``spec`` and make it the process's active injector.

    With ``propagate`` (the default) the config is exported through
    ``REPRO_FAULTS``/``REPRO_FAULT_SEED``/``REPRO_FAULT_STATE`` so
    freshly spawned worker processes inherit the schedule.
    """
    global _ACTIVE, _ENV_CHECKED
    rules = parse_spec(spec) if isinstance(spec, str) else tuple(spec)
    injector = FaultInjector(rules, seed=seed, state_dir=state_dir)
    with _STATE_LOCK:
        _ACTIVE = injector
        _ENV_CHECKED = True
    if propagate:
        os.environ[ENV_SPEC] = format_spec(rules)
        os.environ[ENV_SEED] = str(int(seed))
        if state_dir is not None:
            os.environ[ENV_STATE] = str(state_dir)
        else:
            os.environ.pop(ENV_STATE, None)
    return injector


def uninstall() -> None:
    """Deactivate fault injection and clear the propagation env vars."""
    global _ACTIVE
    with _STATE_LOCK:
        _ACTIVE = None
    for var in (ENV_SPEC, ENV_SEED, ENV_STATE):
        os.environ.pop(var, None)


def active() -> FaultInjector | None:
    """The process's active injector (lazily adopted from the
    environment on first call, so spawned workers pick up the parent's
    schedule without explicit plumbing)."""
    global _ENV_CHECKED
    injector = _ACTIVE
    if injector is not None or _ENV_CHECKED:
        return injector
    with _STATE_LOCK:
        if _ACTIVE is not None or _ENV_CHECKED:
            return _ACTIVE
        _ENV_CHECKED = True
    spec = os.environ.get(ENV_SPEC)
    if not spec:
        return None
    return install(
        spec,
        seed=int(os.environ.get(ENV_SEED) or 0),
        state_dir=os.environ.get(ENV_STATE) or None,
        propagate=False,
    )


def install_from_args(args: tuple[str, int, str | None] | None) -> FaultInjector | None:
    """Worker-side install from :meth:`FaultInjector.config_args`.

    Explicit hand-off for pool workers: environment inheritance fails
    when the forkserver predates ``install`` (its env snapshot is
    taken at forkserver start), so the executor passes the config as a
    plain argument.  Re-installing an identical config is a no-op, so
    a long-lived worker keeps one RNG stream across its jobs.
    """
    if args is None:
        return active()
    current = _ACTIVE
    if current is not None and current.config_args() == tuple(args):
        return current
    spec, seed, state_dir = args
    return install(spec, seed=seed, state_dir=state_dir, propagate=False)


def probe(site: str) -> None:
    """Fire the action probe at ``site`` (no-op without an injector)."""
    injector = _ACTIVE
    if injector is None:
        if _ENV_CHECKED:
            return
        injector = active()
        if injector is None:
            return
    injector.fire(site)


def decide(site: str, kind: str = "truncate") -> bool:
    """Answer a decision probe at ``site`` (False without an injector)."""
    injector = _ACTIVE
    if injector is None:
        if _ENV_CHECKED:
            return False
        injector = active()
        if injector is None:
            return False
    return injector.decide(site, kind)


def observe_faults(registry: MetricsRegistry, events: list[dict] | None) -> None:
    """Fold worker-shipped fire events into ``registry`` — the fault
    analog of :func:`repro.obs.metrics.observe_spans`."""
    if not events:
        return
    counter = registry.counter(
        "repro_faults_injected_total",
        "Faults fired by the injection harness, by probe site and kind.",
        ("site", "kind"),
    )
    for event in events:
        counter.inc(
            site=str(event.get("site") or "?"),
            kind=str(event.get("kind") or "?"),
        )
