"""Exponential-backoff-with-jitter retries for transient failures.

One shared policy object serves every layer that talks to flaky
storage or peers: :class:`~repro.runner.backends.TieredBackend` (shared
cache tier), :class:`~repro.service.queue.WorkQueue` (sqlite lease/
publish under contention), and :class:`~repro.service.client.
ServiceClient` (dropped/truncated HTTP responses).  Delays follow
``base * 2**attempt``, capped at ``max_delay``, with multiplicative
jitter so retrying replicas don't stampede in lockstep.

Every retry increments ``repro_retries_total{site}`` in the global
metrics registry — the chaos CI job asserts these counters move when
faults fire and stay zero when they don't.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.obs.metrics import get_registry

__all__ = ["RetryPolicy", "call_with_retry"]

T = TypeVar("T")


def _retry_counter():
    return get_registry().counter(
        "repro_retries_total",
        "Retries of transient failures, by call site.",
        ("site",),
    )


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry one class of transient failure.

    ``attempts`` counts *total* tries (so ``attempts=3`` means up to
    two retries); ``retryable`` is the exception tuple worth retrying
    — anything else propagates immediately.
    """

    attempts: int = 3
    base_delay: float = 0.02
    max_delay: float = 1.0
    jitter: float = 0.5
    retryable: tuple[type[BaseException], ...] = (OSError,)

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before retry ``attempt`` (0-based): exponential,
        capped, with up to ``jitter`` multiplicative noise."""
        base = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        if self.jitter <= 0:
            return base
        noise = (rng.random() if rng is not None else random.random())
        return base * (1.0 + self.jitter * noise)


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    site: str,
    on_retry: Callable[[BaseException, int], None] | None = None,
) -> T:
    """Run ``fn`` under ``policy``; raise the last error when spent.

    ``site`` labels the ``repro_retries_total`` increments; ``on_retry``
    (if given) observes each retryable failure before the backoff
    sleep — the circuit breaker uses it to count strikes.
    """
    attempts = max(1, policy.attempts)
    for attempt in range(attempts):
        try:
            return fn()
        except policy.retryable as exc:
            if on_retry is not None:
                on_retry(exc, attempt)
            if attempt + 1 >= attempts:
                raise
            _retry_counter().inc(site=site)
            time.sleep(policy.delay(attempt))
    raise AssertionError("unreachable")  # pragma: no cover
