"""Circuit breaker: stop hammering a failing dependency, re-probe later.

Classic three-state machine (Nygard, *Release It!*):

::

            failures >= threshold
    CLOSED ──────────────────────▶ OPEN
      ▲                             │ reset_timeout elapsed
      │ probe succeeds              ▼
      └──────────────────────── HALF_OPEN
                 probe fails ──▶ back to OPEN (timer restarts)

While OPEN, :meth:`CircuitBreaker.allow` answers False and the caller
takes its degraded path immediately (the tiered cache serves L1-only)
instead of eating a timeout per request.  After ``reset_timeout``
seconds the breaker admits **one** trial call (HALF_OPEN); its outcome
decides between closing (dependency recovered) and re-opening.

State is exported as ``repro_breaker_state{name}`` (0 closed / 1 open
/ 2 half-open) in the global metrics registry, and
:meth:`CircuitBreaker.snapshot` feeds ``/v1/stats`` and the degraded
``/v1/healthz`` computation.
"""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import get_registry

__all__ = ["CircuitBreaker"]

_STATE_VALUES = {"closed": 0, "open": 1, "half-open": 2}


class CircuitBreaker:
    """Thread-safe breaker guarding one named dependency."""

    def __init__(
        self,
        name: str,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be > 0")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._trial_in_flight = False
        self._opens = 0
        self._gauge = get_registry().gauge(
            "repro_breaker_state",
            "Circuit breaker state (0 closed, 1 open, 2 half-open).",
            ("name",),
        )
        self._gauge.set(0, name=name)

    # -- state machine -------------------------------------------------

    def _set_state(self, state: str) -> None:
        self._state = state
        self._gauge.set(_STATE_VALUES[state], name=self.name)

    def allow(self) -> bool:
        """May the caller attempt the dependency right now?

        Flips OPEN → HALF_OPEN once the reset timer elapses, and while
        HALF_OPEN admits only the single in-flight trial call.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at < self.reset_timeout:
                    return False
                self._set_state("half-open")
                self._trial_in_flight = True
                return True
            # half-open: one trial at a time
            if self._trial_in_flight:
                return False
            self._trial_in_flight = True
            return True

    def record_success(self) -> None:
        """The attempt succeeded: close (from trial) / stay closed."""
        with self._lock:
            self._failures = 0
            self._trial_in_flight = False
            if self._state != "closed":
                self._set_state("closed")

    def record_failure(self) -> None:
        """The attempt failed: strike, and open at the threshold (a
        failed HALF_OPEN trial re-opens immediately)."""
        with self._lock:
            self._failures += 1
            trial_failed = self._state == "half-open"
            self._trial_in_flight = False
            if trial_failed or (
                self._state == "closed"
                and self._failures >= self.failure_threshold
            ):
                self._set_state("open")
                self._opened_at = self._clock()
                self._opens += 1
                self._failures = 0

    # -- observation ---------------------------------------------------

    @property
    def state(self) -> str:
        """``"closed"`` / ``"open"`` / ``"half-open"``."""
        with self._lock:
            return self._state

    def snapshot(self) -> dict:
        """Stats view: state, consecutive failures, lifetime opens."""
        with self._lock:
            return {
                "name": self.name,
                "state": self._state,
                "failures": self._failures,
                "opens": self._opens,
            }
