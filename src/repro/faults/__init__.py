"""Deterministic fault injection and the hardening it exercises.

Three small pieces that together make failure a first-class, testable
input to the system:

* :mod:`repro.faults.spec` + :mod:`repro.faults.injector` — compile an
  operator-facing spec string (``cache.get:io_error@0.05;worker:kill@
  0.02*2``) into seeded probes wired through the cache backends, work
  queue, pool workers, solver phases, and HTTP server.  Same spec +
  seed ⇒ same fault schedule, so every chaos run replays exactly.
* :mod:`repro.faults.retry` — the shared exponential-backoff-with-
  jitter policy used by the tiered cache, the work queue, and the
  service client.
* :mod:`repro.faults.breaker` — the circuit breaker that lets the
  shared L2 cache tier fail without taking the service down (degrade
  to L1-only, re-probe on a half-open timer).

The recovery oracle is the paper's own determinism guarantee: a run
under faults is correct only if its payloads are **byte-identical**
(via :func:`repro.sizing.serialize.comparable_payload`) to the
fault-free run — see ``tests/test_chaos.py``.
"""

from repro.faults.breaker import CircuitBreaker
from repro.faults.injector import (
    FaultInjector,
    active,
    decide,
    install,
    install_from_args,
    observe_faults,
    probe,
    uninstall,
)
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.faults.spec import FaultRule, format_spec, parse_spec

__all__ = [
    "CircuitBreaker",
    "FaultInjector",
    "FaultRule",
    "RetryPolicy",
    "active",
    "call_with_retry",
    "decide",
    "format_spec",
    "install",
    "install_from_args",
    "observe_faults",
    "parse_spec",
    "probe",
    "uninstall",
]
