"""Trace contexts and spans: who spent the time, across processes.

A *trace* is one request/job's journey through the system; a *span* is
one named, timed phase inside it.  Spans nest: entering a
:class:`span` pushes its id as the current parent, so phases
instrumented deeper in the call stack attach to the right subtree
without any plumbing.

Propagation is explicit at every process boundary, because
:mod:`contextvars` does not cross threads or pickled pool calls:

* **HTTP** — clients send ``X-Repro-Trace: <trace_id>`` (optionally
  ``<trace_id>-<parent_span_id>``); the server resumes the context.
* **Work-queue rows** — the submitting replica allocates the job's
  lifecycle root span and stores ``trace_id-root_id`` in the row; the
  draining replica (possibly another process, days later) parents its
  ``queue.wait`` / execution spans under that root.
* **Process pools** — the parent passes a carrier dict (see
  :func:`current_carrier`) into ``pool_entry``; the worker buffers its
  spans in an in-memory :class:`SpanSink` and ships them back inside
  the result tuple, where the parent re-emits them via
  :func:`emit_obs`.

Finished spans are JSON objects appended to ``trace.jsonl``::

    {"type": "span", "trace": "…", "id": "…", "parent": "…"|null,
     "name": "minflo.d_phase", "ts": <wall start>,
     "duration_s": <monotonic>, "attrs": {…}}

Durations always come from ``time.perf_counter()`` (monotonic); the
``ts`` field is wall-clock and only used for ordering in reports.
Tracing is pay-as-you-go: with no active context, ``span(...)`` still
measures ``duration_s`` (callers like ``minflotransit`` reuse it for
``phase_seconds``) but allocates no ids and emits nothing.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "TRACE_HEADER",
    "SpanSink",
    "TraceContext",
    "current_carrier",
    "current_trace",
    "emit_obs",
    "format_trace_header",
    "new_span_id",
    "new_trace_id",
    "parse_trace_header",
    "span",
    "trace_scope",
]

#: HTTP header carrying ``trace_id`` or ``trace_id-parent_span_id``.
TRACE_HEADER = "X-Repro-Trace"

_MAX_ID_LEN = 64


def new_trace_id() -> str:
    """Return a fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """Return a fresh 8-hex-char span id."""
    return uuid.uuid4().hex[:8]


def format_trace_header(trace_id: str, span_id: str | None = None) -> str:
    """Encode a trace reference for the ``X-Repro-Trace`` header or a
    queue row: ``trace_id`` alone, or ``trace_id-span_id``."""
    if span_id:
        return f"{trace_id}-{span_id}"
    return trace_id


def parse_trace_header(value: str | None) -> tuple[str | None, str | None]:
    """Decode :func:`format_trace_header` output.

    Returns ``(trace_id, parent_span_id)``; malformed or oversized
    values yield ``(None, None)`` so a hostile header can never break
    request handling.
    """
    if not value:
        return None, None
    value = value.strip()
    if not value or len(value) > 2 * _MAX_ID_LEN + 1:
        return None, None
    trace_id, _, parent = value.partition("-")
    if not trace_id.isalnum():
        return None, None
    if parent and not parent.isalnum():
        return None, None
    return trace_id, parent or None


class SpanSink:
    """Append-only destination for finished span records.

    With a ``path``, records are written as JSONL (one handle, locked,
    flushed per batch — safe to share across drain threads).  Without
    one, records buffer in memory; :meth:`drain` hands them off, which
    is how worker processes ship spans back through result tuples.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._handle: Any = None
        self._buffer: list[dict] = []

    def emit(self, record: dict) -> None:
        """Append one span record."""
        self.emit_many((record,))

    def emit_many(self, records: Iterable[dict]) -> None:
        """Append several span records under one lock acquisition."""
        batch = [r for r in records if r]
        if not batch:
            return
        with self._lock:
            if self.path is None:
                self._buffer.extend(batch)
                return
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            for record in batch:
                self._handle.write(json.dumps(record, default=str) + "\n")
            self._handle.flush()

    def drain(self) -> list[dict]:
        """Return and clear the in-memory buffer (file sinks: empty)."""
        with self._lock:
            out, self._buffer = self._buffer, []
            return out

    def close(self) -> None:
        """Close the underlying file handle, if any."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


@dataclass
class TraceContext:
    """The active trace: id, current parent span, and output sink."""

    trace_id: str
    span_id: str | None = None
    sink: SpanSink | None = None


_CONTEXT: ContextVar[TraceContext | None] = ContextVar("repro_trace", default=None)


def current_trace() -> TraceContext | None:
    """Return the active :class:`TraceContext`, or ``None``."""
    return _CONTEXT.get()


def current_carrier() -> dict | None:
    """Snapshot the active context as a pickleable carrier dict
    (``{"trace_id", "parent_id"}``) for handoff into a worker process,
    or ``None`` when no trace is active."""
    ctx = _CONTEXT.get()
    if ctx is None:
        return None
    return {"trace_id": ctx.trace_id, "parent_id": ctx.span_id}


@contextmanager
def trace_scope(
    sink: SpanSink | None = None,
    trace_id: str | None = None,
    parent_id: str | None = None,
) -> Iterator[TraceContext]:
    """Activate a trace context for the dynamic extent of the block.

    Omitting ``trace_id`` starts a new trace; passing one (plus an
    optional ``parent_id``) resumes a propagated trace so spans opened
    inside attach to the remote parent.
    """
    ctx = TraceContext(trace_id=trace_id or new_trace_id(), span_id=parent_id, sink=sink)
    token = _CONTEXT.set(ctx)
    try:
        yield ctx
    finally:
        _CONTEXT.reset(token)


class span:
    """Context manager timing one named phase.

    Always measures a monotonic ``duration_s`` (available after exit
    even with tracing disabled).  When a trace context is active it
    additionally allocates a span id, becomes the current parent for
    the duration of the block, and emits a span record on exit —
    including on exception, with an ``error`` attribute.

    ``sp.set(key=value)`` attaches structured attributes from inside
    the block.
    """

    __slots__ = ("name", "attrs", "duration_s", "_ctx", "_id", "_parent", "_ts", "_start")

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs = attrs
        self.duration_s = 0.0

    def set(self, **attrs: Any) -> None:
        """Merge structured attributes into the span record."""
        self.attrs.update(attrs)

    def __enter__(self) -> "span":
        ctx = _CONTEXT.get()
        self._ctx = ctx
        if ctx is not None:
            self._id = new_span_id()
            self._parent = ctx.span_id
            ctx.span_id = self._id
            self._ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._start
        ctx = self._ctx
        if ctx is not None:
            ctx.span_id = self._parent
            if exc_type is not None:
                self.attrs.setdefault("error", exc_type.__name__)
            record = {
                "type": "span",
                "trace": ctx.trace_id,
                "id": self._id,
                "parent": self._parent,
                "name": self.name,
                "ts": self._ts,
                "duration_s": self.duration_s,
            }
            if self.attrs:
                record["attrs"] = dict(self.attrs)
            if ctx.sink is not None:
                ctx.sink.emit(record)
        return False


def emit_obs(obs: dict | None) -> None:
    """Re-emit a worker's returned observability blob into the current
    context's sink, if one is active.

    Used by in-process callers of ``pool_entry`` so the worker's
    ``{"spans": [...]}`` land in the same ``trace.jsonl`` as local
    spans.
    """
    if not obs:
        return
    ctx = _CONTEXT.get()
    if ctx is None or ctx.sink is None:
        return
    ctx.sink.emit_many(obs.get("spans") or ())
