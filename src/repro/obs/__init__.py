"""Unified observability: traces, metrics, Prometheus exposition.

Three stdlib-only layers shared by the campaign runner, the sizing
service and the solver phases:

* :mod:`repro.obs.trace` — trace ids + span trees.  ``span("name")``
  context managers measure monotonic durations and emit JSON records
  to an append-only ``trace.jsonl``; a trace context propagates across
  HTTP (the ``X-Repro-Trace`` header), work-queue rows and process
  pools, so one request's spans form a single tree no matter how many
  replicas and worker processes touched it.
* :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges and fixed-bucket histograms (every mutation takes the
  family's lock), with Prometheus text exposition for
  ``GET /v1/metrics``.
* :mod:`repro.obs.waterfall` — loads ``trace.jsonl`` files back into
  span trees and renders the per-job waterfall / critical-span report
  behind ``python -m repro trace``.

Trace and metric data are *volatile telemetry*: they never enter cache
keys or stored payloads (see
:data:`repro.sizing.serialize.VOLATILE_PAYLOAD_KEYS`), so instrumented
and uninstrumented runs cache byte-identical results.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    observe_spans,
)
from repro.obs.trace import (
    TRACE_HEADER,
    SpanSink,
    TraceContext,
    current_carrier,
    current_trace,
    emit_obs,
    format_trace_header,
    new_span_id,
    new_trace_id,
    parse_trace_header,
    span,
    trace_scope,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanSink",
    "TRACE_HEADER",
    "TraceContext",
    "current_carrier",
    "current_trace",
    "emit_obs",
    "format_trace_header",
    "get_registry",
    "new_span_id",
    "new_trace_id",
    "observe_spans",
    "parse_trace_header",
    "span",
    "trace_scope",
]
