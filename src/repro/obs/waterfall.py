"""Render ``trace.jsonl`` span trees as waterfall reports.

Backs ``python -m repro trace <trace-id|trace.jsonl>``: loads span
records from one or more trace files, reassembles each trace's span
tree by parent id (spans from different replicas interleave freely —
the tree is keyed purely on ids), and renders an indented waterfall
with per-span durations, duration bars, and the critical path (the
chain of heaviest children from the heaviest root).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ReproError

__all__ = [
    "build_tree",
    "critical_path",
    "group_traces",
    "load_spans",
    "render_waterfall",
    "trace_report",
]


def load_spans(paths: Iterable[str | Path]) -> list[dict]:
    """Read span records from JSONL trace files, skipping malformed
    lines and non-span records."""
    spans: list[dict] = []
    for path in paths:
        path = Path(path)
        if not path.exists():
            raise ReproError(f"trace file not found: {path}")
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and record.get("type") == "span":
                    spans.append(record)
    return spans


def group_traces(spans: Iterable[dict]) -> dict[str, list[dict]]:
    """Group span records by trace id, preserving first-seen order."""
    traces: dict[str, list[dict]] = {}
    for record in spans:
        trace_id = record.get("trace")
        if trace_id:
            traces.setdefault(str(trace_id), []).append(record)
    return traces


def build_tree(spans: Sequence[dict]) -> list[dict]:
    """Assemble one trace's spans into a forest.

    Returns root nodes ``{"span": record, "children": [...]}``; a span
    whose parent id never appears becomes a root (its subtree was
    recorded elsewhere).  Siblings sort by wall-clock start, then by
    appearance order for ties.
    """
    nodes = {}
    for i, record in enumerate(spans):
        sid = record.get("id") or f"anon{i}"
        nodes[sid] = {"span": record, "children": [], "_order": i}
    roots = []
    for node in nodes.values():
        parent = node["span"].get("parent")
        if parent and parent in nodes and parent != node["span"].get("id"):
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)

    def sort_key(node: dict) -> tuple:
        return (float(node["span"].get("ts") or 0.0), node["_order"])

    def sort_rec(items: list[dict]) -> None:
        items.sort(key=sort_key)
        for item in items:
            sort_rec(item["children"])

    sort_rec(roots)
    return roots


def critical_path(root: dict) -> list[dict]:
    """Follow the heaviest child at each level from ``root`` down."""
    path = [root]
    node = root
    while node["children"]:
        node = max(
            node["children"],
            key=lambda child: float(child["span"].get("duration_s") or 0.0),
        )
        path.append(node)
    return path


def _duration(node: dict) -> float:
    return float(node["span"].get("duration_s") or 0.0)


def _label(node: dict) -> str:
    record = node["span"]
    name = str(record.get("name") or "?")
    attrs = record.get("attrs") or {}
    job = attrs.get("job") or attrs.get("label")
    return f"{name} [{job}]" if job else name


def render_waterfall(trace_id: str, spans: Sequence[dict], width: int = 24) -> str:
    """Render one trace as an indented waterfall with duration bars."""
    roots = build_tree(spans)
    total = sum(_duration(r) for r in roots)
    scale = max((_duration(r) for r in roots), default=0.0)
    lines = [
        f"trace {trace_id} — {len(spans)} spans, "
        f"{len(roots)} root(s), {total:.3f}s total"
    ]

    def bar(seconds: float) -> str:
        if scale <= 0:
            return ""
        n = max(1, round(width * seconds / scale)) if seconds > 0 else 0
        return "█" * min(n, width)

    def walk(node: dict, prefix: str, tail: str) -> None:
        d = _duration(node)
        head = f"{prefix}{tail}{_label(node)}"
        lines.append(f"{head:<48} {d:>9.3f}s  {bar(d)}")
        children = node["children"]
        child_prefix = prefix + ("   " if tail in ("", "└─ ") else "│  ")
        for i, child in enumerate(children):
            walk(child, child_prefix, "└─ " if i == len(children) - 1 else "├─ ")

    for root in roots:
        walk(root, "", "")
    if roots:
        heavy = max(roots, key=_duration)
        chain = critical_path(heavy)
        leaf = chain[-1]
        share = 100.0 * _duration(leaf) / _duration(heavy) if _duration(heavy) > 0 else 0.0
        names = " → ".join(_label(n) for n in chain)
        lines.append(
            f"critical path: {names} "
            f"({_duration(leaf):.3f}s leaf, {share:.0f}% of root)"
        )
    return "\n".join(lines)


def _tree_json(node: dict) -> dict:
    return {
        "span": node["span"],
        "children": [_tree_json(child) for child in node["children"]],
    }


def trace_report(
    ref: str,
    files: Sequence[str | Path] = (),
    json_out: bool = False,
) -> str:
    """Build the ``python -m repro trace`` report.

    ``ref`` is either a path to a ``trace.jsonl`` file (the most
    recent trace in it is rendered) or a trace id looked up in
    ``files`` (default ``trace.jsonl`` in the working directory).
    Raises :class:`~repro.errors.ReproError` when nothing matches.
    """
    paths = [Path(f) for f in files]
    ref_path = Path(ref)
    trace_id = None
    if ref_path.exists() or ref.endswith(".jsonl"):
        paths.insert(0, ref_path)
    else:
        trace_id = ref
        if not paths:
            paths = [Path("trace.jsonl")]
    traces = group_traces(load_spans(paths))
    if not traces:
        raise ReproError(f"no spans found in {', '.join(str(p) for p in paths)}")
    if trace_id is None:
        trace_id = max(
            traces,
            key=lambda tid: max(float(s.get("ts") or 0.0) for s in traces[tid]),
        )
    if trace_id not in traces:
        raise ReproError(
            f"trace {trace_id!r} not found "
            f"({len(traces)} trace(s) in {', '.join(str(p) for p in paths)})"
        )
    spans = traces[trace_id]
    if json_out:
        return json.dumps(
            {
                "trace": trace_id,
                "n_spans": len(spans),
                "tree": [_tree_json(r) for r in build_tree(spans)],
            },
            indent=2,
            sort_keys=True,
        )
    report = render_waterfall(trace_id, spans)
    others = len(traces) - 1
    if others:
        report += f"\n({others} other trace(s) in the same file(s))"
    return report
