"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` owns metric *families* (name + help + label
names); each family holds one sample per label-value combination.
Every mutation and read takes the family's lock, so drain threads,
HTTP handler threads and the stats endpoint can hammer the same
counters without torn updates — this registry is what ``/v1/stats``
and ``GET /v1/metrics`` are views over.

No dependencies beyond the stdlib: exposition is hand-rolled
`Prometheus text format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(``# HELP``/``# TYPE`` preambles, ``_total`` counter convention,
cumulative ``_bucket{le=...}`` histogram series ending in ``+Inf``).

Worker processes do not share this registry; their contribution flows
back through result tuples as span lists and is folded in by
:func:`observe_spans` on the parent side.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "observe_spans",
]

#: Default histogram buckets (seconds): microbenchmark latencies
#: through minute-scale solver jobs.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    return "+Inf" if bound == math.inf else _format_value(bound)


class _Family:
    """Shared machinery: label handling, locking, sample storage."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._samples: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def items(self) -> list[tuple[dict, object]]:
        """Snapshot ``(labels_dict, value)`` pairs, sorted by labels."""
        with self._lock:
            pairs = sorted(self._samples.items())
        return [(dict(zip(self.labelnames, key)), value) for key, value in pairs]

    def _series(self, key: tuple[str, ...], suffix: str = "", extra: str = "") -> str:
        labels = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.labelnames, key)
        ]
        if extra:
            labels.append(extra)
        body = "{" + ",".join(labels) + "}" if labels else ""
        return f"{self.name}{suffix}{body}"


class Counter(_Family):
    """Monotonically increasing sum (exposed with a ``_total`` suffix
    unless the name already carries one)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to the labelled sample."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of one labelled sample (0.0 if never touched)."""
        with self._lock:
            return float(self._samples.get(self._key(labels), 0.0))

    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return float(sum(self._samples.values()))

    def expose(self) -> list[str]:
        """Exposition lines (``# HELP``/``# TYPE`` + one per sample)."""
        suffix = "" if self.name.endswith("_total") else "_total"
        lines = [
            f"# HELP {self.name}{suffix} {self.help}",
            f"# TYPE {self.name}{suffix} counter",
        ]
        with self._lock:
            samples = sorted(self._samples.items())
        for key, value in samples:
            lines.append(f"{self._series(key, suffix)} {_format_value(value)}")
        return lines


class Gauge(_Family):
    """Point-in-time value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        """Replace the labelled sample with ``value``."""
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def add(self, amount: float, **labels: str) -> None:
        """Shift the labelled sample by ``amount`` (may be negative)."""
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of one labelled sample (0.0 if never set)."""
        with self._lock:
            return float(self._samples.get(self._key(labels), 0.0))

    def expose(self) -> list[str]:
        """Exposition lines (``# HELP``/``# TYPE`` + one per sample)."""
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} gauge"]
        with self._lock:
            samples = sorted(self._samples.items())
        for key, value in samples:
            lines.append(f"{self._series(key)} {_format_value(value)}")
        return lines


class _HistSample:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Family):
    """Fixed-bucket distribution (cumulative ``le`` series on expose)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if bounds[-1] != math.inf:
            bounds.append(math.inf)
        self.buckets = tuple(bounds)

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the labelled sample."""
        key = self._key(labels)
        value = float(value)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                sample = self._samples[key] = _HistSample(len(self.buckets))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    sample.counts[i] += 1
                    break
            sample.sum += value
            sample.count += 1

    def value(self, **labels: str) -> dict:
        """``{"count", "sum", "buckets": {le: cumulative}}`` snapshot."""
        key = self._key(labels)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                return {"count": 0, "sum": 0.0, "buckets": {}}
            cumulative, out = 0, {}
            for bound, n in zip(self.buckets, sample.counts):
                cumulative += n
                out[_format_le(bound)] = cumulative
            return {"count": sample.count, "sum": sample.sum, "buckets": out}

    def expose(self) -> list[str]:
        """Exposition lines: cumulative ``_bucket`` series then
        ``_sum``/``_count`` per sample."""
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} histogram"]
        with self._lock:
            samples = sorted(self._samples.items())
            snap = [
                (key, list(s.counts), s.sum, s.count) for key, s in samples
            ]
        for key, counts, total, count in snap:
            cumulative = 0
            for bound, n in zip(self.buckets, counts):
                cumulative += n
                extra = f'le="{_format_le(bound)}"'
                lines.append(f"{self._series(key, '_bucket', extra)} {cumulative}")
            lines.append(f"{self._series(key, '_sum')} {_format_value(total)}")
            lines.append(f"{self._series(key, '_count')} {count}")
        return lines


class MetricsRegistry:
    """A set of metric families with idempotent registration.

    ``counter``/``gauge``/``histogram`` return the existing family when
    one with the same name is already registered (and raise if the
    kind or label names disagree), so call sites never need to
    coordinate creation order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _register(self, cls, name: str, help: str, labelnames, **kwargs) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            family = cls(name, help, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        """Get or create a :class:`Counter` family."""
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge` family."""
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a :class:`Histogram` family."""
        return self._register(Histogram, name, help, labelnames, buckets=buckets)

    def families(self) -> Iterator[_Family]:
        """Registered families, sorted by name."""
        with self._lock:
            snapshot = sorted(self._families.items())
        for _, family in snapshot:
            yield family

    def expose(self) -> str:
        """Render every family as Prometheus text exposition."""
        lines: list[str] = []
        for family in self.families():
            lines.extend(family.expose())
        return "\n".join(lines) + "\n" if lines else ""


_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (cache backends and other
    service-agnostic components record here)."""
    return _GLOBAL


def observe_spans(registry: MetricsRegistry, spans: Iterable[dict] | None) -> None:
    """Fold span durations into per-phase counters — this is how
    worker-process time shows up in the parent's ``/v1/metrics``."""
    if not spans:
        return
    seconds = registry.counter(
        "repro_phase_seconds_total",
        "Cumulative seconds spent in each instrumented span name.",
        ("phase",),
    )
    calls = registry.counter(
        "repro_phase_calls_total",
        "Number of completed spans per span name.",
        ("phase",),
    )
    for record in spans:
        name = str(record.get("name") or "?")
        seconds.inc(max(0.0, float(record.get("duration_s") or 0.0)), phase=name)
        calls.inc(1.0, phase=name)
