"""Series-parallel transistor networks.

A static CMOS gate is a pullup network of PMOS devices and a pulldown
network of NMOS devices, each a series-parallel composition of single
transistors controlled by input pins.  The paper's per-gate DAG
(figure 1) is derived from these networks, so they are the ground truth
for transistor-level sizing.

The pullup network of a fully complementary gate is the *dual* of the
pulldown network (series <-> parallel), which :func:`dual` computes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import TechnologyError

__all__ = ["SPNetwork", "leaf", "series", "parallel", "dual"]


@dataclass(frozen=True)
class SPNetwork:
    """A series-parallel network over input pins.

    ``kind`` is one of ``"leaf"``, ``"series"``, ``"parallel"``.  A leaf
    is a single transistor gated by ``pin``.  A series composition
    conducts only if all children conduct; its children are ordered from
    the *output side* down to the *rail side* (ground for pulldown, VDD
    for pullup), which fixes the stacking order used by the Elmore model.
    """

    kind: str
    pin: str | None = None
    children: tuple["SPNetwork", ...] = ()

    def __post_init__(self) -> None:
        if self.kind == "leaf":
            if not self.pin:
                raise TechnologyError("leaf network requires a pin name")
            if self.children:
                raise TechnologyError("leaf network cannot have children")
        elif self.kind in ("series", "parallel"):
            if len(self.children) < 2:
                raise TechnologyError(
                    f"{self.kind} network requires >= 2 children"
                )
            if self.pin is not None:
                raise TechnologyError(f"{self.kind} network cannot name a pin")
        else:
            raise TechnologyError(f"unknown network kind {self.kind!r}")

    # -- queries ---------------------------------------------------------

    def leaves(self) -> Iterator["SPNetwork"]:
        """All transistors in the network, output side first."""
        if self.kind == "leaf":
            yield self
        else:
            for child in self.children:
                yield from child.leaves()

    def pins(self) -> list[str]:
        """Pin of each transistor, in leaf order (repeats allowed)."""
        return [lf.pin for lf in self.leaves()]  # type: ignore[misc]

    @property
    def device_count(self) -> int:
        return sum(1 for _ in self.leaves())

    def paths(self) -> Iterator[tuple[str, ...]]:
        """Conducting root-to-rail paths as tuples of pins.

        For a pulldown network these are the discharging paths of the
        paper's DAG construction, listed output-side first.
        """
        if self.kind == "leaf":
            yield (self.pin,)  # type: ignore[misc]
        elif self.kind == "series":
            # Cartesian concatenation of per-child paths, in stack order.
            partial: list[tuple[str, ...]] = [()]
            for child in self.children:
                partial = [
                    head + tail for head in partial for tail in child.paths()
                ]
            yield from partial
        else:  # parallel
            for child in self.children:
                yield from child.paths()

    @property
    def max_stack_depth(self) -> int:
        """Largest number of series devices on any conducting path."""
        return max(len(path) for path in self.paths())

    def __str__(self) -> str:
        if self.kind == "leaf":
            return str(self.pin)
        joint = " . " if self.kind == "series" else " | "
        return "(" + joint.join(str(child) for child in self.children) + ")"


def leaf(pin: str) -> SPNetwork:
    """A single transistor gated by ``pin``."""
    return SPNetwork("leaf", pin=pin)


def series(*children: SPNetwork) -> SPNetwork:
    """Series composition, output side first."""
    return SPNetwork("series", children=tuple(children))


def parallel(*children: SPNetwork) -> SPNetwork:
    """Parallel composition."""
    return SPNetwork("parallel", children=tuple(children))


def dual(network: SPNetwork) -> SPNetwork:
    """The dual network: series and parallel compositions swapped.

    The pullup network of a fully complementary static CMOS gate is the
    dual of its pulldown network.
    """
    if network.kind == "leaf":
        return network
    swapped = "parallel" if network.kind == "series" else "series"
    return SPNetwork(swapped, children=tuple(dual(c) for c in network.children))
