"""Technology substrate: process parameters, transistor networks, cells."""

from repro.tech.cells import (
    Cell,
    CellLibrary,
    EquivalentInverter,
    default_library,
    shared_default_library,
)
from repro.tech.networks import SPNetwork, dual, leaf, parallel, series
from repro.tech.parameters import Technology, default_technology, scaled_technology

__all__ = [
    "Cell",
    "CellLibrary",
    "EquivalentInverter",
    "SPNetwork",
    "Technology",
    "default_library",
    "default_technology",
    "dual",
    "leaf",
    "parallel",
    "scaled_technology",
    "series",
    "shared_default_library",
]
