"""Technology parameters for delay and area modelling.

The paper takes its 0.13 µm parameters from an SRC technology report [16]
that is not publicly archived.  This module substitutes representative
0.13 µm values (resistance of a unit-width device, gate/diffusion
capacitance per unit width, local wire capacitance).  Every experiment in
the paper is reported as a *ratio* against the minimum-sized circuit, so
results are insensitive to the absolute scale of these constants; what
matters is their relative magnitude (documented per field).

Units are internally consistent:

* size          — unit transistor widths (dimensionless multiples of Wmin)
* resistance    — kilo-ohms (kΩ)
* capacitance   — femtofarads (fF)
* time          — picoseconds (ps); kΩ·fF = ps
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import TechnologyError

__all__ = ["Technology", "default_technology", "scaled_technology"]


@dataclass(frozen=True)
class Technology:
    """Electrical and geometric constants of the target process.

    The defaults approximate a 0.13 µm bulk CMOS process.  The symbols in
    parentheses match the constants of the paper's equation (2)/(3):
    ``A`` (unit NMOS resistance), ``B`` (unit drain cap), ``C`` (unit
    source cap), ``B_p`` (unit PMOS drain cap), ``D``/``E`` (wire caps)
    and ``C_L`` (primary-output load).
    """

    name: str = "generic-0.13um"

    #: On-resistance of a unit-width NMOS device (paper's ``A``), kΩ.
    r_nmos: float = 8.5
    #: On-resistance of a unit-width PMOS device; ~2.2x NMOS for equal
    #: width because of the hole/electron mobility ratio.
    r_pmos: float = 18.7

    #: Gate capacitance per unit width, fF (loads the driving gate).
    c_gate_n: float = 0.90
    c_gate_p: float = 0.90

    #: Drain diffusion capacitance per unit width (paper's ``B``/``B_p``),
    #: fF.  Kept well below the gate capacitance so that the sized
    #: stage-delay floor sits near 0.3x of the minimum-sized stage delay;
    #: that headroom is what makes the paper's 0.4*Dmin targets reachable.
    c_drain_n: float = 0.32
    c_drain_p: float = 0.32
    #: Source diffusion capacitance per unit width (paper's ``C``), fF.
    c_source_n: float = 0.26
    c_source_p: float = 0.26

    #: Capacitance of a local interconnect wire per fanout branch
    #: (paper's ``D``/``E`` constants), fF.
    c_wire: float = 3.2
    #: Fixed capacitance of an internal stack node (transistor mode), fF.
    c_internal: float = 0.3
    #: Default load on every primary output (paper's ``C_L``), fF.
    c_load: float = 25.0

    #: Size bounds of the optimization, in unit widths (paper's
    #: ``minsize``/``maxsize`` in problem statement (1)).
    min_size: float = 1.0
    max_size: float = 128.0

    #: Wire-sizing extension (paper section 2.1).  A net sized ``s``
    #: has resistance ``r_wire / s`` and its area-scaling capacitance
    #: grows with ``s``; the fringe fraction of ``c_wire`` does not
    #: scale.  Wire widths have their own bounds.
    r_wire: float = 1.5
    wire_fringe_fraction: float = 0.4
    wire_min_size: float = 1.0
    wire_max_size: float = 16.0

    def __post_init__(self) -> None:
        positive = {
            "r_nmos": self.r_nmos,
            "r_pmos": self.r_pmos,
            "c_gate_n": self.c_gate_n,
            "c_gate_p": self.c_gate_p,
            "min_size": self.min_size,
            "max_size": self.max_size,
        }
        for attr, value in positive.items():
            if value <= 0.0:
                raise TechnologyError(f"{attr} must be positive, got {value!r}")
        non_negative = {
            "c_drain_n": self.c_drain_n,
            "c_drain_p": self.c_drain_p,
            "c_source_n": self.c_source_n,
            "c_source_p": self.c_source_p,
            "c_wire": self.c_wire,
            "c_internal": self.c_internal,
            "c_load": self.c_load,
        }
        for attr, value in non_negative.items():
            if value < 0.0:
                raise TechnologyError(f"{attr} must be non-negative, got {value!r}")
        if self.max_size < self.min_size:
            raise TechnologyError(
                f"max_size ({self.max_size}) must be >= min_size ({self.min_size})"
            )
        if self.r_wire <= 0:
            raise TechnologyError(f"r_wire must be positive, got {self.r_wire}")
        if not 0.0 <= self.wire_fringe_fraction <= 1.0:
            raise TechnologyError(
                "wire_fringe_fraction must lie in [0, 1], got "
                f"{self.wire_fringe_fraction}"
            )
        if self.wire_max_size < self.wire_min_size:
            raise TechnologyError("wire size bounds inverted")

    # -- convenience ----------------------------------------------------

    @property
    def beta_ratio(self) -> float:
        """PMOS/NMOS resistance ratio (used to balance rise/fall delay)."""
        return self.r_pmos / self.r_nmos

    def with_bounds(self, min_size: float, max_size: float) -> "Technology":
        """Return a copy with different size bounds."""
        return replace(self, min_size=min_size, max_size=max_size)

    def with_load(self, c_load: float) -> "Technology":
        """Return a copy with a different primary-output load."""
        return replace(self, c_load=c_load)


def default_technology() -> Technology:
    """The technology used by all experiments unless overridden."""
    return Technology()


def scaled_technology(scale: float, name: str | None = None) -> Technology:
    """Return a technology with all capacitances scaled by ``scale``.

    Useful for sensitivity studies: scaling every capacitance by a common
    factor scales every delay by the same factor and must leave all sizing
    decisions unchanged (tested property).
    """
    if scale <= 0.0:
        raise TechnologyError(f"scale must be positive, got {scale!r}")
    base = Technology()
    return Technology(
        name=name or f"{base.name}-cap-x{scale:g}",
        r_nmos=base.r_nmos,
        r_pmos=base.r_pmos,
        c_gate_n=base.c_gate_n * scale,
        c_gate_p=base.c_gate_p * scale,
        c_drain_n=base.c_drain_n * scale,
        c_drain_p=base.c_drain_p * scale,
        c_source_n=base.c_source_n * scale,
        c_source_p=base.c_source_p * scale,
        c_wire=base.c_wire * scale,
        c_internal=base.c_internal * scale,
        c_load=base.c_load * scale,
        min_size=base.min_size,
        max_size=base.max_size,
    )
