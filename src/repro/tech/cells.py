"""Standard-cell library.

Two classes of cells exist:

* **Primitive cells** (INV, NANDk, NORk, AOI/OAI) carry explicit
  series-parallel transistor networks; they support both gate sizing and
  true transistor sizing.
* **Macro cells** (BUF, ANDk, ORk, XOR2, XNOR2) are compositions of
  primitives.  They support gate sizing directly through equivalent-
  inverter parameters derived from their composition, and transistor
  sizing after :func:`repro.circuit.mapping.map_to_primitives` expands
  them.

For gate sizing the paper models each gate as an equivalent inverter;
:meth:`CellLibrary.equivalent_inverter` derives those parameters
(drive resistance, per-pin input capacitance, parasitic output
capacitance, area) from the transistor networks and a
:class:`~repro.tech.parameters.Technology`.

All devices within a cell have relative width 1 at unit size, exactly as
in the paper's formulation where a single parameter scales the gate: the
stacking penalty then appears as ``stack_depth * r_unit`` in the drive
resistance, matching the Elmore expression (3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import TechnologyError
from repro.tech.networks import SPNetwork, dual, leaf, parallel, series
from repro.tech.parameters import Technology

__all__ = [
    "Cell",
    "CellLibrary",
    "EquivalentInverter",
    "default_library",
    "PRIMITIVE_FUNCTIONS",
]


# ---------------------------------------------------------------------------
# logic functions
# ---------------------------------------------------------------------------

def _and(*v: bool) -> bool:
    return all(v)


def _or(*v: bool) -> bool:
    return any(v)


def _nand(*v: bool) -> bool:
    return not all(v)


def _nor(*v: bool) -> bool:
    return not any(v)


def _xor(*v: bool) -> bool:
    return sum(map(bool, v)) % 2 == 1


def _xnor(*v: bool) -> bool:
    return sum(map(bool, v)) % 2 == 0


def _not(a: bool) -> bool:
    return not a


def _buf(a: bool) -> bool:
    return bool(a)


def _aoi21(a: bool, b: bool, c: bool) -> bool:
    return not ((a and b) or c)


def _aoi22(a: bool, b: bool, c: bool, d: bool) -> bool:
    return not ((a and b) or (c and d))


def _oai21(a: bool, b: bool, c: bool) -> bool:
    return not ((a or b) and c)


def _oai22(a: bool, b: bool, c: bool, d: bool) -> bool:
    return not ((a or b) and (c or d))


PRIMITIVE_FUNCTIONS: Mapping[str, Callable[..., bool]] = {
    "AND": _and,
    "OR": _or,
    "NAND": _nand,
    "NOR": _nor,
    "XOR": _xor,
    "XNOR": _xnor,
    "NOT": _not,
    "BUF": _buf,
    "AOI21": _aoi21,
    "AOI22": _aoi22,
    "OAI21": _oai21,
    "OAI22": _oai22,
}


# ---------------------------------------------------------------------------
# cell model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EquivalentInverter:
    """Gate-sizing view of a cell at unit size.

    ``delay = intrinsic + (r_eq / x) * (sum of external load caps)``
    where loads scale with the sizes of the driven gates.
    """

    #: Worst-case drive resistance at unit size, kΩ (max of rise/fall).
    r_eq: float
    r_rise: float
    r_fall: float
    #: Input capacitance presented by each pin at unit size, fF.
    cin: float
    #: Parasitic capacitance at the output node at unit size, fF.
    c_par: float
    #: Size-independent delay, ps (self loading + the gate-load part of
    #: internal macro stages, which scales with the cell itself).
    intrinsic: float
    #: Extra constant load-delay numerator, ps*size: internal macro wire
    #: load that does NOT scale with the cell, so it contributes
    #: ``internal_load_delay / x`` to the delay (folds into ``b``).
    internal_load_delay: float
    #: Device area at unit size (sum of relative widths = device count).
    area: float


@dataclass(frozen=True)
class Cell:
    """One library cell.

    ``pulldown`` is ``None`` for macro cells; ``stages`` then describes
    the internal primitive composition used for delay derivation and
    technology mapping.
    """

    name: str
    function: str
    inputs: tuple[str, ...]
    pulldown: SPNetwork | None = None
    pullup: SPNetwork | None = None
    #: Macro composition: (driver primitive, number of driven primitive
    #: pins, fanout branches) for every *internal* stage, input to output.
    stages: tuple[tuple[str, int, int], ...] = ()
    #: Primitive whose pin loading an external input of a macro sees, and
    #: how many copies of that pin it drives.
    pin_load: tuple[str, int] = ("", 1)
    #: Primitive that drives a macro's output.
    driver: str = ""

    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    @property
    def is_primitive(self) -> bool:
        return self.pulldown is not None

    @property
    def device_count(self) -> int:
        if self.is_primitive:
            assert self.pulldown is not None and self.pullup is not None
            return self.pulldown.device_count + self.pullup.device_count
        # Macro device count is recorded by the library at build time.
        raise TechnologyError(
            f"macro cell {self.name} has no direct device count; "
            "ask the CellLibrary"
        )

    def evaluate(self, *values: bool) -> bool:
        """Evaluate the cell's boolean function."""
        if len(values) != self.n_inputs:
            raise TechnologyError(
                f"{self.name} expects {self.n_inputs} inputs, "
                f"got {len(values)}"
            )
        return PRIMITIVE_FUNCTIONS[self.function](*values)


def _primitive(name: str, function: str, pulldown: SPNetwork) -> Cell:
    pins = tuple(dict.fromkeys(pulldown.pins()))
    return Cell(
        name=name,
        function=function,
        inputs=pins,
        pulldown=pulldown,
        pullup=dual(pulldown),
    )


def _nand_cell(k: int) -> Cell:
    pins = [f"in{i}" for i in range(k)]
    # Stack order: in0 at the output side, in{k-1} at the ground side.
    return _primitive(f"NAND{k}", "NAND", series(*(leaf(p) for p in pins)))


def _nor_cell(k: int) -> Cell:
    pins = [f"in{i}" for i in range(k)]
    return _primitive(f"NOR{k}", "NOR", parallel(*(leaf(p) for p in pins)))


def _macro(
    name: str,
    function: str,
    n_inputs: int,
    pin_load: tuple[str, int],
    stages: tuple[tuple[str, int, int], ...],
    driver: str,
) -> Cell:
    return Cell(
        name=name,
        function=function,
        inputs=tuple(f"in{i}" for i in range(n_inputs)),
        stages=stages,
        pin_load=pin_load,
        driver=driver,
    )


# ---------------------------------------------------------------------------
# library
# ---------------------------------------------------------------------------

class CellLibrary:
    """An immutable collection of cells plus derived electrical views."""

    def __init__(self, cells: list[Cell], macro_devices: Mapping[str, int]):
        self._cells = {cell.name: cell for cell in cells}
        if len(self._cells) != len(cells):
            raise TechnologyError("duplicate cell names in library")
        self._macro_devices = dict(macro_devices)
        for cell in cells:
            if not cell.is_primitive and cell.name not in self._macro_devices:
                raise TechnologyError(
                    f"macro cell {cell.name} missing a device count"
                )
        self._eq_cache: dict[tuple[str, int], EquivalentInverter] = {}

    # -- lookup ----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def names(self) -> list[str]:
        return sorted(self._cells)

    def cell(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise TechnologyError(f"unknown cell {name!r}") from None

    def device_count(self, name: str) -> int:
        cell = self.cell(name)
        if cell.is_primitive:
            return cell.device_count
        return self._macro_devices[name]

    def cell_for_function(self, function: str, n_inputs: int) -> Cell:
        """The library cell implementing ``function`` at a given arity."""
        direct = {
            ("NOT", 1): "INV",
            ("BUF", 1): "BUF",
            ("XOR", 2): "XOR2",
            ("XNOR", 2): "XNOR2",
        }
        name = direct.get((function, n_inputs))
        if name is None:
            name = f"{function}{n_inputs}"
        if name not in self._cells:
            raise TechnologyError(
                f"no cell implements {function} with {n_inputs} inputs"
            )
        return self._cells[name]

    # -- equivalent-inverter derivation -----------------------------------

    def equivalent_inverter(
        self, name: str, tech: Technology
    ) -> EquivalentInverter:
        """Gate-sizing parameters of ``name`` under ``tech``.

        Derived once per (cell, technology) pair and cached.
        """
        key = (name, id(tech))
        cached = self._eq_cache.get(key)
        if cached is not None:
            return cached
        cell = self.cell(name)
        if cell.is_primitive:
            result = self._primitive_eq(cell, tech)
        else:
            result = self._macro_eq(cell, tech)
        self._eq_cache[key] = result
        return result

    def _primitive_eq(self, cell: Cell, tech: Technology) -> EquivalentInverter:
        assert cell.pulldown is not None and cell.pullup is not None
        r_fall = tech.r_nmos * cell.pulldown.max_stack_depth
        r_rise = tech.r_pmos * cell.pullup.max_stack_depth
        r_eq = max(r_fall, r_rise)
        # Every pin gates exactly one NMOS and one PMOS device per
        # occurrence in the networks.
        occurrences = max(
            cell.pulldown.pins().count(pin) for pin in cell.inputs
        )
        cin = occurrences * (tech.c_gate_n + tech.c_gate_p)
        # Output node parasitic: drains of devices adjacent to the output
        # in each network (first series child / all parallel branches).
        c_par = (
            _output_devices(cell.pulldown) * tech.c_drain_n
            + _output_devices(cell.pullup) * tech.c_drain_p
        )
        intrinsic = r_eq * c_par
        area = float(cell.device_count)
        return EquivalentInverter(
            r_eq=r_eq,
            r_rise=r_rise,
            r_fall=r_fall,
            cin=cin,
            c_par=c_par,
            intrinsic=intrinsic,
            internal_load_delay=0.0,
            area=area,
        )

    def _macro_eq(self, cell: Cell, tech: Technology) -> EquivalentInverter:
        load_cell, load_copies = cell.pin_load
        cin = load_copies * self.equivalent_inverter(load_cell, tech).cin
        # Internal stage delay splits in two: the gate-load part scales
        # with the cell (driver and driven gates grow together — a size-
        # independent contribution), while the internal wire load does
        # not scale, so its delay falls as 1/x (internal_load_delay).
        internal = 0.0
        internal_wire = 0.0
        for driver_name, n_pins, n_branches in cell.stages:
            drv = self.equivalent_inverter(driver_name, tech)
            # Loads inside a macro are pins of same-family primitives, so
            # using the driver's own cin for them is exact for BUF and a
            # tight approximation for XOR-style macros.
            internal += drv.intrinsic + drv.r_eq * n_pins * drv.cin
            internal_wire += drv.r_eq * n_branches * tech.c_wire
        out = self.equivalent_inverter(cell.driver, tech)
        return EquivalentInverter(
            r_eq=out.r_eq,
            r_rise=out.r_rise,
            r_fall=out.r_fall,
            cin=cin,
            c_par=out.c_par,
            intrinsic=internal + out.intrinsic,
            internal_load_delay=internal_wire,
            area=float(self._macro_devices[cell.name]),
        )


def _output_devices(network: SPNetwork) -> int:
    """Number of devices whose drain touches the network's output node."""
    if network.kind == "leaf":
        return 1
    if network.kind == "series":
        return _output_devices(network.children[0])
    return sum(_output_devices(child) for child in network.children)


def default_library() -> CellLibrary:
    """The cell library used by every generator and experiment."""
    inv = _primitive("INV", "NOT", leaf("in0"))
    aoi21 = _primitive(
        "AOI21",
        "AOI21",
        parallel(series(leaf("in0"), leaf("in1")), leaf("in2")),
    )
    aoi22 = _primitive(
        "AOI22",
        "AOI22",
        parallel(
            series(leaf("in0"), leaf("in1")), series(leaf("in2"), leaf("in3"))
        ),
    )
    oai21 = _primitive(
        "OAI21",
        "OAI21",
        series(parallel(leaf("in0"), leaf("in1")), leaf("in2")),
    )
    oai22 = _primitive(
        "OAI22",
        "OAI22",
        series(
            parallel(leaf("in0"), leaf("in1")), parallel(leaf("in2"), leaf("in3"))
        ),
    )

    cells = [inv, aoi21, aoi22, oai21, oai22]
    cells += [_nand_cell(k) for k in (2, 3, 4)]
    cells += [_nor_cell(k) for k in (2, 3, 4)]

    macro_devices: dict[str, int] = {}

    def add_macro(cell: Cell, devices: int) -> None:
        cells.append(cell)
        macro_devices[cell.name] = devices

    add_macro(
        _macro("BUF", "BUF", 1, ("INV", 1), (("INV", 1, 1),), "INV"), 4
    )
    for k in (2, 3, 4):
        add_macro(
            _macro(
                f"AND{k}", "AND", k,
                (f"NAND{k}", 1), ((f"NAND{k}", 1, 1),), "INV",
            ),
            2 * k + 2,
        )
        add_macro(
            _macro(
                f"OR{k}", "OR", k,
                (f"NOR{k}", 1), ((f"NOR{k}", 1, 1),), "INV",
            ),
            2 * k + 2,
        )
    # 4-NAND XOR: in0 -> {N1, N2}; N1 -> {N2, N3}; N2, N3 -> N4 (driver).
    add_macro(
        _macro(
            "XOR2", "XOR", 2,
            ("NAND2", 2),
            (("NAND2", 2, 2), ("NAND2", 1, 1)),
            "NAND2",
        ),
        16,
    )
    # XNOR as XOR + output inverter.
    add_macro(
        _macro(
            "XNOR2", "XNOR", 2,
            ("NAND2", 2),
            (("NAND2", 2, 2), ("NAND2", 1, 1), ("NAND2", 1, 1)),
            "INV",
        ),
        18,
    )
    return CellLibrary(cells, macro_devices)


# A single shared default library instance (cells are immutable).
_DEFAULT: CellLibrary | None = None


def shared_default_library() -> CellLibrary:
    """Return a process-wide shared default library (cheap accessor)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = default_library()
    return _DEFAULT


def isqrt_area(area: float) -> float:
    """Side of the square with the given area — helper for reports."""
    return math.sqrt(max(area, 0.0))
