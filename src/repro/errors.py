"""Exception hierarchy for the MINFLOTRANSIT reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class NetlistError(ReproError):
    """Raised for structurally invalid circuits (dangling nets, cycles,
    duplicate names, unknown cells, arity mismatches)."""


class BenchFormatError(NetlistError):
    """Raised when an ISCAS ``.bench`` file cannot be parsed."""


class TechnologyError(ReproError):
    """Raised for inconsistent technology parameters (non-positive R/C,
    bad size bounds)."""


class DelayModelError(ReproError):
    """Raised when a delay model violates the simple monotonic
    decomposition requirements (negative coefficients, zero loads)."""


class TimingError(ReproError):
    """Raised by static timing analysis on malformed timing graphs."""


class BalancingError(ReproError):
    """Raised when a delay-balanced configuration cannot be produced or
    fails verification (negative FSDU, unbalanced path)."""


class FlowError(ReproError):
    """Base class for min-cost-flow solver failures."""


class InfeasibleFlowError(FlowError):
    """Raised when a flow instance has no feasible solution."""


class UnboundedFlowError(FlowError):
    """Raised when a flow instance has unbounded optimum (negative-cost
    cycle with infinite capacity)."""


class SizingError(ReproError):
    """Base class for sizing-optimization failures."""


class InfeasibleTimingError(SizingError):
    """Raised when a delay target cannot be met within the size bounds."""


class ConvergenceError(SizingError):
    """Raised when an iterative sizer exceeds its iteration budget without
    satisfying its convergence criterion."""


class RunnerError(ReproError):
    """Raised for malformed campaign specifications or corrupt run
    logs in the sizing-campaign subsystem (:mod:`repro.runner`)."""


class JobTimeoutError(RunnerError):
    """Raised inside a campaign worker when a job exceeds its wall-time
    budget; the executor records the job as timed out and moves on."""


class ServiceError(ReproError):
    """Raised by the sizing service (:mod:`repro.service`) for invalid
    requests or unknown resources.

    Carries the HTTP status the server should answer with (400 for
    malformed request bodies, 404 for unknown jobs/paths, 405 for
    unsupported methods, 429 for admission-control rejections) so
    handler code can translate every failure into one structured JSON
    error response.  ``retry_after`` (seconds) is set on 429s — the
    server renders it as a ``Retry-After`` header and well-behaved
    clients sleep that long before retrying.
    """

    def __init__(
        self,
        message: str,
        status: int = 400,
        retry_after: float | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
