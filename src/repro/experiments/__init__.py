"""Experiment harnesses reproducing the paper's table and figures."""

from repro.experiments.figure7 import (
    DEFAULT_RATIOS,
    default_circuits,
    format_panel,
    run_panel,
)
from repro.experiments.table1 import (
    Table1Row,
    format_table1,
    run_row,
    run_table1,
    select_specs,
)

__all__ = [
    "DEFAULT_RATIOS",
    "Table1Row",
    "default_circuits",
    "format_panel",
    "format_table1",
    "run_panel",
    "run_row",
    "run_table1",
    "select_specs",
]
