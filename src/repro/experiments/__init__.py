"""Experiment harnesses reproducing the paper's table and figures.

All three harnesses (Table 1, Figure 7, the scaling study) build
:class:`repro.runner.CampaignSpec` sweeps and execute them on the
campaign runner — parallel under ``jobs=N``, cacheable, resumable.
"""

from repro.experiments.figure7 import (
    DEFAULT_RATIOS,
    default_circuits,
    format_panel,
    panel_spec,
    run_panel,
)
from repro.experiments.scaling import scaling_spec
from repro.experiments.table1 import (
    Table1Row,
    campaign_spec,
    format_table1,
    run_row,
    run_table1,
    select_specs,
)

__all__ = [
    "DEFAULT_RATIOS",
    "Table1Row",
    "campaign_spec",
    "default_circuits",
    "format_panel",
    "format_table1",
    "panel_spec",
    "run_panel",
    "run_row",
    "run_table1",
    "scaling_spec",
    "select_specs",
]
