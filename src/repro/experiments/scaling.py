"""Runtime-scaling study (the paper's "near linear" claim, section 1).

Times one STA pass, one delay balancing, one W-phase and one D-phase on
ripple-carry adders of doubling width, then fits a log-log slope per
phase.  The paper reports that in practice both phases grow near
linearly with circuit size ("comparable to TILOS"); slopes close to 1.0
reproduce that claim on this implementation.

Each width is one ``phases`` job on :mod:`repro.runner` — the
measurement loops live in the executor, not here.  Timing jobs are
never cached (wall-clock numbers are not content-addressable), and the
default stays serial: concurrent workers would contend for cores and
contaminate each other's measurements, so only pass ``jobs > 1`` on a
machine with enough idle cores.

Run:  python -m repro.experiments.scaling [--widths 8,16,32,64]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.runner import CampaignSpec, run

__all__ = [
    "ScalingPoint",
    "scaling_spec",
    "run_scaling",
    "fit_slopes",
    "format_scaling",
]

DEFAULT_WIDTHS = [8, 16, 32, 64]


@dataclass(frozen=True)
class ScalingPoint:
    width: int
    n_vertices: int
    n_edges: int
    sta_seconds: float
    balance_seconds: float
    w_phase_seconds: float
    d_phase_seconds: float


def scaling_spec(
    widths: list[int] | None = None, spec: float = 0.6
) -> CampaignSpec:
    """The scaling sweep as a campaign of ``phases`` timing jobs."""
    return CampaignSpec(
        name="scaling",
        circuits=tuple(f"rca:{w}" for w in widths or DEFAULT_WIDTHS),
        delay_specs=(spec,),
        kind="phases",
    )


def run_scaling(
    widths: list[int] | None = None, spec: float = 0.6, jobs: int = 1
) -> list[ScalingPoint]:
    result = run(scaling_spec(widths, spec), jobs=jobs, cache=None)
    points = []
    for outcome in result.outcomes:
        if not outcome.completed:
            raise RuntimeError(
                f"job {outcome.job.label()} {outcome.status}: {outcome.error}"
            )
        payload = outcome.payload
        points.append(ScalingPoint(
            width=payload["width"],
            n_vertices=payload["n_vertices"],
            n_edges=payload["n_edges"],
            sta_seconds=payload["sta_seconds"],
            balance_seconds=payload["balance_seconds"],
            w_phase_seconds=payload["w_phase_seconds"],
            d_phase_seconds=payload["d_phase_seconds"],
        ))
    return points


def fit_slopes(points: list[ScalingPoint]) -> dict[str, float]:
    """Log-log slope of runtime vs vertex count, per phase."""
    n = np.log([p.n_vertices for p in points])
    slopes = {}
    for phase in ("sta", "balance", "w_phase", "d_phase"):
        t = np.log([getattr(p, f"{phase}_seconds") for p in points])
        slopes[phase] = float(np.polyfit(n, t, 1)[0])
    return slopes


def format_scaling(points: list[ScalingPoint]) -> str:
    rows = [
        [
            str(p.width),
            str(p.n_vertices),
            str(p.n_edges),
            f"{1e3 * p.sta_seconds:.2f}",
            f"{1e3 * p.balance_seconds:.2f}",
            f"{1e3 * p.w_phase_seconds:.2f}",
            f"{1e3 * p.d_phase_seconds:.2f}",
        ]
        for p in points
    ]
    table = format_table(
        ["width", "|V|", "|E|", "STA ms", "balance ms", "W ms", "D ms"],
        rows,
        title="Phase runtime scaling on ripple-carry adders",
    )
    slopes = fit_slopes(points)
    trend = ", ".join(f"{k}: n^{v:.2f}" for k, v in slopes.items())
    return f"{table}\n\nfitted growth: {trend}"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--widths", default=None)
    args = parser.parse_args()
    widths = (
        [int(tok) for tok in args.widths.split(",")]
        if args.widths
        else DEFAULT_WIDTHS
    )
    print(format_scaling(run_scaling(widths)))


if __name__ == "__main__":
    main()
