"""Runtime-scaling study (the paper's "near linear" claim, section 1).

Times one STA pass, one delay balancing, one W-phase and one D-phase on
ripple-carry adders of doubling width, then fits a log-log slope per
phase.  The paper reports that in practice both phases grow near
linearly with circuit size ("comparable to TILOS"); slopes close to 1.0
reproduce that claim on this implementation.

Run:  python -m repro.experiments.scaling [--widths 8,16,32,64]
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.balancing import balance
from repro.dag import build_sizing_dag
from repro.generators import ripple_carry_adder
from repro.sizing import d_phase, tilos_size, w_phase
from repro.tech import default_technology
from repro.timing import GraphTimer

__all__ = ["ScalingPoint", "run_scaling", "fit_slopes", "format_scaling"]

DEFAULT_WIDTHS = [8, 16, 32, 64]


@dataclass(frozen=True)
class ScalingPoint:
    width: int
    n_vertices: int
    n_edges: int
    sta_seconds: float
    balance_seconds: float
    w_phase_seconds: float
    d_phase_seconds: float


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_scaling(
    widths: list[int] | None = None, spec: float = 0.6
) -> list[ScalingPoint]:
    points = []
    tech = default_technology()
    for width in widths or DEFAULT_WIDTHS:
        circuit = ripple_carry_adder(width, style="nand")
        dag = build_sizing_dag(circuit, tech, mode="gate")
        timer = GraphTimer(dag)
        d_min = timer.analyze(dag.delays(dag.min_sizes())).critical_path_delay
        target = spec * d_min
        seed = tilos_size(dag, target, timer=timer)
        x = seed.x if seed.feasible else dag.min_sizes() * 2
        delays = dag.delays(x)
        horizon = max(
            target, timer.analyze(delays).critical_path_delay
        )
        config = balance(dag, delays, horizon=horizon, timer=timer)
        load = delays - dag.model.intrinsic
        budgets = delays * 1.01

        # Warm up the LP backend once so one-time solver setup does not
        # pollute the smallest instance's measurement.
        d_phase(dag, x, config, -0.2 * load, 0.2 * load)
        points.append(
            ScalingPoint(
                width=width,
                n_vertices=dag.n,
                n_edges=dag.n_edges,
                sta_seconds=_best_of(lambda: timer.analyze(delays)),
                balance_seconds=_best_of(
                    lambda: balance(dag, delays, horizon=horizon, timer=timer)
                ),
                w_phase_seconds=_best_of(lambda: w_phase(dag, budgets)),
                d_phase_seconds=_best_of(
                    lambda: d_phase(
                        dag, x, config, -0.2 * load, 0.2 * load
                    ),
                    repeats=1,
                ),
            )
        )
    return points


def fit_slopes(points: list[ScalingPoint]) -> dict[str, float]:
    """Log-log slope of runtime vs vertex count, per phase."""
    n = np.log([p.n_vertices for p in points])
    slopes = {}
    for phase in ("sta", "balance", "w_phase", "d_phase"):
        t = np.log([getattr(p, f"{phase}_seconds") for p in points])
        slopes[phase] = float(np.polyfit(n, t, 1)[0])
    return slopes


def format_scaling(points: list[ScalingPoint]) -> str:
    rows = [
        [
            str(p.width),
            str(p.n_vertices),
            str(p.n_edges),
            f"{1e3 * p.sta_seconds:.2f}",
            f"{1e3 * p.balance_seconds:.2f}",
            f"{1e3 * p.w_phase_seconds:.2f}",
            f"{1e3 * p.d_phase_seconds:.2f}",
        ]
        for p in points
    ]
    table = format_table(
        ["width", "|V|", "|E|", "STA ms", "balance ms", "W ms", "D ms"],
        rows,
        title="Phase runtime scaling on ripple-carry adders",
    )
    slopes = fit_slopes(points)
    trend = ", ".join(f"{k}: n^{v:.2f}" for k, v in slopes.items())
    return f"{table}\n\nfitted growth: {trend}"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--widths", default=None)
    args = parser.parse_args()
    widths = (
        [int(tok) for tok in args.widths.split(",")]
        if args.widths
        else DEFAULT_WIDTHS
    )
    print(format_scaling(run_scaling(widths)))


if __name__ == "__main__":
    main()
