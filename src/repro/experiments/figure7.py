"""Figure 7 harness: comparative area-delay curves.

The paper plots normalized area (vs. the minimum-sized circuit) against
normalized delay for c432 and c6288, TILOS vs MINFLOTRANSIT.  This
harness sweeps the same delay ratios on the equivalent circuits and
renders an ASCII version of each panel plus the underlying series.

Run as a module::

    python -m repro.experiments.figure7 [--circuits c432eq,c6288eq]
                                        [--ratios 0.4,0.5,...]

The c6288 panel is heavy (a 16x16 multiplier swept over many targets);
the default circuit list honours the ``REPRO_BENCH_TIER`` environment
variable: the smoke tier substitutes the small c499eq panel.
"""

from __future__ import annotations

import argparse
import os

from repro.analysis.reporting import ascii_plot, format_table
from repro.analysis.tradeoff import TradeoffCurve, area_delay_curve
from repro.dag import build_sizing_dag
from repro.generators.iscas import build_circuit
from repro.tech import default_technology

__all__ = ["run_panel", "format_panel", "default_circuits", "DEFAULT_RATIOS"]

DEFAULT_RATIOS = [0.4, 0.45, 0.5, 0.55, 0.6, 0.7, 0.8, 0.9, 1.0]


def default_circuits(tier: str | None = None) -> list[str]:
    tier = tier or os.environ.get("REPRO_BENCH_TIER", "smoke")
    if tier == "paper":
        return ["c432eq", "c6288eq"]
    return ["c432eq", "c499eq"]


def run_panel(
    name: str, ratios: list[float] | None = None
) -> TradeoffCurve:
    """Sweep one circuit; returns the trade-off curve."""
    circuit = build_circuit(name)
    dag = build_sizing_dag(circuit, default_technology(), mode="gate")
    return area_delay_curve(dag, ratios or DEFAULT_RATIOS)


def format_panel(curve: TradeoffCurve) -> str:
    """One figure-7 panel: ASCII plot plus the numeric series."""
    plot = ascii_plot(
        [
            (f"{curve.name} (TILOS)", curve.series("tilos")),
            (f"{curve.name} (MINFLOTRANSIT)", curve.series("minflo")),
        ],
        x_label="(Delay of Ckt)/(Delay of minimum size Ckt)",
        y_label="(Area of Ckt)/(Area of minimum size Ckt)",
        title=f"Figure 7 panel — {curve.name}",
    )
    rows = []
    for p in curve.points:
        rows.append(
            [
                f"{p.delay_ratio:.2f}",
                "--" if p.tilos_area_ratio is None else f"{p.tilos_area_ratio:.3f}",
                "--" if p.minflo_area_ratio is None else f"{p.minflo_area_ratio:.3f}",
                "--" if p.saving_percent is None else f"{p.saving_percent:.1f}%",
            ]
        )
    table = format_table(
        ["T/Dmin", "TILOS area", "MINFLO area", "saving"],
        rows,
    )
    return plot + "\n\n" + table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", default=None)
    parser.add_argument("--ratios", default=None)
    args = parser.parse_args()
    names = (
        args.circuits.split(",") if args.circuits else default_circuits()
    )
    ratios = (
        [float(tok) for tok in args.ratios.split(",")]
        if args.ratios
        else DEFAULT_RATIOS
    )
    for name in names:
        curve = run_panel(name, ratios)
        print(format_panel(curve))
        print()


if __name__ == "__main__":
    main()
