"""Figure 7 harness: comparative area-delay curves.

The paper plots normalized area (vs. the minimum-sized circuit) against
normalized delay for c432 and c6288, TILOS vs MINFLOTRANSIT.  This
harness sweeps the same delay ratios on the equivalent circuits and
renders an ASCII version of each panel plus the underlying series.

Each (circuit, ratio) point is one :mod:`repro.runner` sizing job, so a
panel is an ordinary campaign: points size in parallel under
``--jobs N`` and, with ``--cache-dir``, replay from the result cache
on repeat runs.

Run as a module::

    python -m repro.experiments.figure7 [--circuits c432eq,c6288eq]
                                        [--ratios 0.4,0.5,...] [--jobs N]
                                        [--cache-dir DIR]

The c6288 panel is heavy (a 16x16 multiplier swept over many targets);
the default circuit list honours the ``REPRO_BENCH_TIER`` environment
variable: the smoke tier substitutes the small c499eq panel.
"""

from __future__ import annotations

import argparse
import os

from repro.analysis.reporting import ascii_plot, format_table
from repro.analysis.tradeoff import CurvePoint, TradeoffCurve
from repro.runner import CampaignSpec, run

__all__ = [
    "run_panel",
    "panel_spec",
    "format_panel",
    "default_circuits",
    "DEFAULT_RATIOS",
]

DEFAULT_RATIOS = [0.4, 0.45, 0.5, 0.55, 0.6, 0.7, 0.8, 0.9, 1.0]


def default_circuits(tier: str | None = None) -> list[str]:
    tier = tier or os.environ.get("REPRO_BENCH_TIER", "smoke")
    if tier == "paper":
        return ["c432eq", "c6288eq"]
    return ["c432eq", "c499eq"]


def panel_spec(name: str, ratios: list[float] | None = None) -> CampaignSpec:
    """One figure-7 panel as a campaign (one job per delay ratio)."""
    return CampaignSpec(
        name=f"figure7-{name}",
        circuits=(name,),
        delay_specs=tuple(ratios or DEFAULT_RATIOS),
    )


def run_panel(
    name: str,
    ratios: list[float] | None = None,
    jobs: int = 1,
    cache=None,
) -> TradeoffCurve:
    """Sweep one circuit; returns the trade-off curve."""
    result = run(panel_spec(name, ratios), jobs=jobs, cache=cache)
    curve: TradeoffCurve | None = None
    points: list[CurvePoint] = []
    for outcome in result.outcomes:
        if not outcome.completed:
            raise RuntimeError(
                f"job {outcome.job.label()} {outcome.status}: {outcome.error}"
            )
        payload = outcome.payload
        if curve is None:
            curve = TradeoffCurve(
                name=payload["name"],
                d_min=payload["d_min"],
                min_area=payload["min_area"],
            )
        seed = payload["seed"]
        sized = payload["result"]
        if sized is None:
            points.append(CurvePoint(
                delay_ratio=payload["delay_spec"],
                target=payload["target"],
                tilos_area_ratio=None,
                minflo_area_ratio=None,
                tilos_seconds=seed["runtime_seconds"],
                minflo_seconds=0.0,
                saving_percent=None,
            ))
            continue
        points.append(CurvePoint(
            delay_ratio=payload["delay_spec"],
            target=payload["target"],
            tilos_area_ratio=seed["area"] / payload["min_area"],
            minflo_area_ratio=sized["area"] / payload["min_area"],
            tilos_seconds=seed["runtime_seconds"],
            minflo_seconds=sized["runtime_seconds"],
            saving_percent=100.0 * (1.0 - sized["area"] / seed["area"]),
        ))
    assert curve is not None  # specs always expand to >= 1 job
    curve.points = sorted(points, key=lambda p: p.delay_ratio)
    return curve


def format_panel(curve: TradeoffCurve) -> str:
    """One figure-7 panel: ASCII plot plus the numeric series."""
    plot = ascii_plot(
        [
            (f"{curve.name} (TILOS)", curve.series("tilos")),
            (f"{curve.name} (MINFLOTRANSIT)", curve.series("minflo")),
        ],
        x_label="(Delay of Ckt)/(Delay of minimum size Ckt)",
        y_label="(Area of Ckt)/(Area of minimum size Ckt)",
        title=f"Figure 7 panel — {curve.name}",
    )
    rows = []
    for p in curve.points:
        rows.append(
            [
                f"{p.delay_ratio:.2f}",
                "--" if p.tilos_area_ratio is None else f"{p.tilos_area_ratio:.3f}",
                "--" if p.minflo_area_ratio is None else f"{p.minflo_area_ratio:.3f}",
                "--" if p.saving_percent is None else f"{p.saving_percent:.1f}%",
            ]
        )
    table = format_table(
        ["T/Dmin", "TILOS area", "MINFLO area", "saving"],
        rows,
    )
    return plot + "\n\n" + table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", default=None)
    parser.add_argument("--ratios", default=None)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache-dir", default=None,
                        help="replay/store points in a campaign result cache")
    args = parser.parse_args()
    names = (
        args.circuits.split(",") if args.circuits else default_circuits()
    )
    ratios = (
        [float(tok) for tok in args.ratios.split(",")]
        if args.ratios
        else DEFAULT_RATIOS
    )
    for name in names:
        curve = run_panel(name, ratios, jobs=args.jobs, cache=args.cache_dir)
        print(format_panel(curve))
        print()


if __name__ == "__main__":
    main()
