"""Table 1 harness: area savings of MINFLOTRANSIT over TILOS.

Reproduces the paper's Table 1 row by row: circuit, gate count, delay
specification (fraction of the minimum-sized circuit's delay), the area
saving of MINFLOTRANSIT over the TILOS seed, TILOS CPU time and the
extra time MINFLOTRANSIT needs on top (the paper reports both columns).

Run as a module::

    python -m repro.experiments.table1 [--tier smoke|paper] [--backend auto]

or through the pytest-benchmark wrapper in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import os
import time
from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.dag import build_sizing_dag
from repro.generators.iscas import SUITE, BenchmarkSpec
from repro.sizing import MinfloOptions, minflotransit, tilos_size
from repro.tech import default_technology
from repro.timing import GraphTimer

__all__ = ["Table1Row", "run_row", "run_table1", "format_table1", "select_specs"]

#: Environment variable choosing the benchmark tier.
TIER_ENV = "REPRO_BENCH_TIER"


@dataclass(frozen=True)
class Table1Row:
    """One measured row next to the paper's reference numbers."""

    name: str
    n_gates: int
    paper_gates: int
    delay_spec: float
    feasible: bool
    area_saving_percent: float
    paper_saving_percent: float
    tilos_seconds: float
    minflo_extra_seconds: float
    minflo_iterations: int
    area_ratio_vs_min: float


def select_specs(tier: str | None = None) -> list[BenchmarkSpec]:
    """Suite subset for a tier ('smoke' default, 'paper' = all rows)."""
    tier = tier or os.environ.get(TIER_ENV, "smoke")
    if tier == "paper":
        return list(SUITE)
    if tier == "smoke":
        return [spec for spec in SUITE if spec.tier == "smoke"]
    raise ValueError(f"unknown tier {tier!r} (use 'smoke' or 'paper')")


def run_row(
    spec: BenchmarkSpec,
    flow_backend: str = "auto",
) -> Table1Row:
    """Build, seed with TILOS and refine with MINFLOTRANSIT."""
    circuit = spec.builder()
    tech = default_technology()
    dag = build_sizing_dag(circuit, tech, mode="gate")
    timer = GraphTimer(dag)
    x_min = dag.min_sizes()
    d_min = timer.analyze(dag.delays(x_min)).critical_path_delay
    target = spec.delay_spec * d_min

    start = time.perf_counter()
    seed = tilos_size(dag, target, timer=timer)
    tilos_seconds = time.perf_counter() - start
    if not seed.feasible:
        return Table1Row(
            name=spec.name,
            n_gates=circuit.n_gates,
            paper_gates=spec.paper_gates,
            delay_spec=spec.delay_spec,
            feasible=False,
            area_saving_percent=float("nan"),
            paper_saving_percent=spec.paper_area_saving_percent,
            tilos_seconds=tilos_seconds,
            minflo_extra_seconds=float("nan"),
            minflo_iterations=0,
            area_ratio_vs_min=float("nan"),
        )

    start = time.perf_counter()
    result = minflotransit(
        dag,
        target,
        options=MinfloOptions(flow_backend=flow_backend),
        x0=seed.x,
    )
    minflo_seconds = time.perf_counter() - start
    return Table1Row(
        name=spec.name,
        n_gates=circuit.n_gates,
        paper_gates=spec.paper_gates,
        delay_spec=spec.delay_spec,
        feasible=True,
        area_saving_percent=100.0 * (1.0 - result.area / seed.area),
        paper_saving_percent=spec.paper_area_saving_percent,
        tilos_seconds=tilos_seconds,
        minflo_extra_seconds=minflo_seconds,
        minflo_iterations=result.n_iterations,
        area_ratio_vs_min=result.area / dag.area(x_min),
    )


def run_table1(
    tier: str | None = None, flow_backend: str = "auto"
) -> list[Table1Row]:
    return [run_row(spec, flow_backend) for spec in select_specs(tier)]


def format_table1(rows: list[Table1Row]) -> str:
    headers = [
        "Circuit",
        "Gates",
        "(paper)",
        "Spec",
        "Saving%",
        "(paper%)",
        "CPU TILOS",
        "CPU extra (OURS)",
        "Iters",
        "Area/min",
    ]
    body = []
    for row in rows:
        body.append(
            [
                row.name,
                str(row.n_gates),
                str(row.paper_gates),
                f"{row.delay_spec:.2f}·Dmin",
                "--" if not row.feasible else f"{row.area_saving_percent:.1f}",
                f"{row.paper_saving_percent:.1f}",
                f"{row.tilos_seconds:.2f}s",
                "--" if not row.feasible else f"{row.minflo_extra_seconds:.2f}s",
                str(row.minflo_iterations),
                "--" if not row.feasible else f"{row.area_ratio_vs_min:.2f}",
            ]
        )
    return format_table(
        headers,
        body,
        title="Table 1 — area savings of MINFLOTRANSIT over TILOS",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tier", default=None, choices=["smoke", "paper"])
    parser.add_argument("--flow-backend", "--backend", dest="backend",
                        default="auto")
    args = parser.parse_args()
    rows = run_table1(tier=args.tier, flow_backend=args.backend)
    print(format_table1(rows))


if __name__ == "__main__":
    main()
