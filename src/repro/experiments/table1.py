"""Table 1 harness: area savings of MINFLOTRANSIT over TILOS.

Reproduces the paper's Table 1 row by row: circuit, gate count, delay
specification (fraction of the minimum-sized circuit's delay), the area
saving of MINFLOTRANSIT over the TILOS seed, TILOS CPU time and the
extra time MINFLOTRANSIT needs on top (the paper reports both columns).

The rows are one campaign on :mod:`repro.runner`: ``--jobs N`` sizes
rows in parallel, and with ``--cache-dir`` each (circuit, spec) job
replays from the content-addressed store, so re-running the table
against a warm cache is free.

Run as a module::

    python -m repro.experiments.table1 [--tier smoke|paper]
                                       [--backend auto] [--jobs N]
                                       [--cache-dir DIR]

or through the pytest-benchmark wrapper in ``benchmarks/``, or as
``python -m repro campaign run --tier smoke``.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.generators.iscas import SUITE, BenchmarkSpec
from repro.runner import CampaignSpec, Job, JobOutcome, run, tier_preset
from repro.runner.executor import execute_job

__all__ = [
    "Table1Row",
    "campaign_spec",
    "row_from_outcome",
    "run_row",
    "run_table1",
    "format_table1",
    "select_specs",
]

#: Environment variable choosing the benchmark tier.
TIER_ENV = "REPRO_BENCH_TIER"

_PAPER_ROWS = {spec.name: spec for spec in SUITE}


@dataclass(frozen=True)
class Table1Row:
    """One measured row next to the paper's reference numbers."""

    name: str
    n_gates: int
    paper_gates: int
    delay_spec: float
    feasible: bool
    area_saving_percent: float
    paper_saving_percent: float
    tilos_seconds: float
    minflo_extra_seconds: float
    minflo_iterations: int
    area_ratio_vs_min: float


def select_specs(tier: str | None = None) -> list[BenchmarkSpec]:
    """Suite subset for a tier ('smoke' default, 'paper' = all rows)."""
    tier = tier or os.environ.get(TIER_ENV, "smoke")
    if tier == "paper":
        return list(SUITE)
    if tier == "smoke":
        return [spec for spec in SUITE if spec.tier == "smoke"]
    raise ValueError(f"unknown tier {tier!r} (use 'smoke' or 'paper')")


def campaign_spec(
    tier: str | None = None, flow_backend: str = "auto"
) -> CampaignSpec:
    """The Table 1 sweep as a runner campaign (one job per row)."""
    return tier_preset(tier, flow_backend=flow_backend)


def row_from_outcome(outcome: JobOutcome) -> Table1Row:
    """Convert one sizing-job outcome into a table row."""
    if not outcome.completed:
        raise RuntimeError(
            f"job {outcome.job.label()} {outcome.status}: {outcome.error}"
        )
    payload = outcome.payload
    paper = _PAPER_ROWS.get(payload["name"])
    seed = payload["seed"]
    result = payload["result"]
    if result is None:
        return Table1Row(
            name=payload["name"],
            n_gates=payload["n_gates"],
            paper_gates=paper.paper_gates if paper else 0,
            delay_spec=payload["delay_spec"],
            feasible=False,
            area_saving_percent=float("nan"),
            paper_saving_percent=(
                paper.paper_area_saving_percent if paper else float("nan")
            ),
            tilos_seconds=seed["runtime_seconds"],
            minflo_extra_seconds=float("nan"),
            minflo_iterations=0,
            area_ratio_vs_min=float("nan"),
        )
    return Table1Row(
        name=payload["name"],
        n_gates=payload["n_gates"],
        paper_gates=paper.paper_gates if paper else 0,
        delay_spec=payload["delay_spec"],
        feasible=True,
        area_saving_percent=100.0 * (1.0 - result["area"] / seed["area"]),
        paper_saving_percent=(
            paper.paper_area_saving_percent if paper else float("nan")
        ),
        tilos_seconds=seed["runtime_seconds"],
        minflo_extra_seconds=result["runtime_seconds"],
        minflo_iterations=len(result["iterations"]),
        area_ratio_vs_min=result["area"] / payload["min_area"],
    )


def run_row(
    spec: BenchmarkSpec,
    flow_backend: str = "auto",
) -> Table1Row:
    """Build, seed with TILOS and refine with MINFLOTRANSIT (one row)."""
    job = Job(
        circuit=spec.name,
        delay_spec=spec.delay_spec,
        flow_backend=flow_backend,
    )
    status, payload = execute_job(job)
    return row_from_outcome(JobOutcome(
        index=0,
        job=job,
        key=None,
        status=status,
        cached=False,
        wall_seconds=0.0,
        payload=payload,
    ))


def run_table1(
    tier: str | None = None,
    flow_backend: str = "auto",
    jobs: int = 1,
    cache=None,
) -> list[Table1Row]:
    """All rows of a tier, as one (cacheable, parallelizable) campaign."""
    result = run(
        campaign_spec(tier, flow_backend), jobs=jobs, cache=cache
    )
    return [row_from_outcome(outcome) for outcome in result.outcomes]


def format_table1(rows: list[Table1Row]) -> str:
    headers = [
        "Circuit",
        "Gates",
        "(paper)",
        "Spec",
        "Saving%",
        "(paper%)",
        "CPU TILOS",
        "CPU extra (OURS)",
        "Iters",
        "Area/min",
    ]
    body = []
    for row in rows:
        body.append(
            [
                row.name,
                str(row.n_gates),
                str(row.paper_gates),
                f"{row.delay_spec:.2f}·Dmin",
                "--" if not row.feasible else f"{row.area_saving_percent:.1f}",
                f"{row.paper_saving_percent:.1f}",
                f"{row.tilos_seconds:.2f}s",
                "--" if not row.feasible else f"{row.minflo_extra_seconds:.2f}s",
                str(row.minflo_iterations),
                "--" if not row.feasible else f"{row.area_ratio_vs_min:.2f}",
            ]
        )
    return format_table(
        headers,
        body,
        title="Table 1 — area savings of MINFLOTRANSIT over TILOS",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tier", default=None, choices=["smoke", "paper"])
    parser.add_argument("--flow-backend", "--backend", dest="backend",
                        default="auto")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = run in-process)")
    parser.add_argument("--cache-dir", default=None,
                        help="replay/store rows in a campaign result cache")
    args = parser.parse_args()
    rows = run_table1(tier=args.tier, flow_backend=args.backend,
                      jobs=args.jobs, cache=args.cache_dir)
    print(format_table1(rows))


if __name__ == "__main__":
    main()
