"""Tests for the netlist model, builder, validation and stats."""

import pytest

from repro.circuit import (
    Circuit,
    CircuitBuilder,
    circuit_stats,
    validate_circuit,
)
from repro.circuit.validate import require_clean
from repro.errors import NetlistError


class TestCircuit:
    def test_duplicate_gate_name(self):
        circuit = Circuit("t")
        circuit.add_input("a")
        circuit.add_gate("g", "INV", ["a"], "x")
        with pytest.raises(NetlistError, match="duplicate"):
            circuit.add_gate("g", "INV", ["x"], "y")

    def test_double_driver(self):
        circuit = Circuit("t")
        circuit.add_input("a")
        circuit.add_gate("g1", "INV", ["a"], "x")
        with pytest.raises(NetlistError, match="already driven"):
            circuit.add_gate("g2", "INV", ["a"], "x")

    def test_input_collision(self):
        circuit = Circuit("t")
        circuit.add_input("a")
        with pytest.raises(NetlistError):
            circuit.add_input("a")

    def test_arity_check(self):
        circuit = Circuit("t")
        circuit.add_input("a")
        with pytest.raises(NetlistError, match="2 inputs"):
            circuit.add_gate("g", "NAND2", ["a"], "x")

    def test_undriven_net_detected_at_freeze(self):
        circuit = Circuit("t")
        circuit.add_input("a")
        circuit.add_gate("g", "NAND2", ["a", "ghost"], "x")
        circuit.mark_output("x")
        with pytest.raises(NetlistError, match="undriven"):
            circuit.freeze()

    def test_cycle_detected(self):
        circuit = Circuit("t")
        circuit.add_input("a")
        circuit.add_gate("g1", "NAND2", ["a", "y"], "x")
        circuit.add_gate("g2", "INV", ["x"], "y")
        circuit.mark_output("x")
        with pytest.raises(NetlistError, match="cycle"):
            circuit.freeze()

    def test_frozen_circuit_rejects_mutation(self):
        circuit = Circuit("t")
        circuit.add_input("a")
        circuit.add_gate("g", "INV", ["a"], "x")
        circuit.mark_output("x")
        circuit.freeze()
        with pytest.raises(NetlistError, match="frozen"):
            circuit.add_input("b")

    def test_topological_order_respects_dependencies(self, c17):
        seen = set(c17.inputs)
        for gate in c17.topological_gates():
            assert all(net in seen for net in gate.inputs)
            seen.add(gate.output)

    def test_fanout_count_includes_po(self):
        circuit = Circuit("t")
        circuit.add_input("a")
        circuit.add_gate("g", "INV", ["a"], "x")
        circuit.add_gate("h", "INV", ["x"], "y")
        circuit.mark_output("x")
        circuit.mark_output("y")
        circuit.freeze()
        assert circuit.fanout_count("x") == 2  # one gate + PO

    def test_evaluate_c17(self, c17):
        # c17: 22 = NAND(NAND(1,3), NAND(2, NAND(3,6)))
        values = c17.evaluate({"1": 1, "2": 1, "3": 1, "6": 1, "7": 1})
        assert values["22"] is False or values["22"] is True
        # exhaustive truth check of output 22 against the formula
        for bits in range(32):
            ins = {
                name: bool(bits >> i & 1)
                for i, name in enumerate(["1", "2", "3", "6", "7"])
            }
            values = c17.evaluate(ins)
            n10 = not (ins["1"] and ins["3"])
            n11 = not (ins["3"] and ins["6"])
            n16 = not (ins["2"] and n11)
            n19 = not (n11 and ins["7"])
            assert values["22"] == (not (n10 and n16))
            assert values["23"] == (not (n16 and n19))

    def test_evaluate_requires_all_inputs(self, c17):
        with pytest.raises(NetlistError, match="missing value"):
            c17.evaluate({"1": True})


class TestBuilder:
    def test_wide_and_becomes_tree(self):
        builder = CircuitBuilder("t")
        nets = builder.inputs([f"i{k}" for k in range(10)])
        out = builder.and_(*nets)
        builder.output(out)
        circuit = builder.build()
        stats = circuit_stats(circuit)
        # 10 inputs: 2 AND4 + 1 AND2 feeding a final AND3.
        assert stats.n_gates == 4
        values = circuit.evaluate({f"i{k}": True for k in range(10)})
        assert values[out] is True
        values = circuit.evaluate(
            {f"i{k}": k != 5 for k in range(10)}
        )
        assert values[out] is False

    def test_wide_nand_inverts_once(self):
        builder = CircuitBuilder("t")
        nets = builder.inputs([f"i{k}" for k in range(6)])
        out = builder.nand(*nets)
        builder.output(out)
        circuit = builder.build()
        assert circuit.evaluate({f"i{k}": True for k in range(6)})[out] is False
        assert circuit.evaluate(
            {f"i{k}": k != 2 for k in range(6)}
        )[out] is True

    def test_mux(self):
        builder = CircuitBuilder("t")
        s, a, b = builder.inputs(["s", "a", "b"])
        out = builder.mux(s, a, b)
        builder.output(out)
        circuit = builder.build()
        for sv in (False, True):
            for av in (False, True):
                for bv in (False, True):
                    got = circuit.evaluate({"s": sv, "a": av, "b": bv})[out]
                    assert got == (bv if sv else av)

    def test_full_adder_macro(self):
        builder = CircuitBuilder("t")
        a, b, c = builder.inputs(["a", "b", "c"])
        s, cout = builder.full_adder(a, b, c)
        builder.output(s)
        builder.output(cout)
        circuit = builder.build()
        for bits in range(8):
            av, bv, cv = bits & 1, bits >> 1 & 1, bits >> 2 & 1
            values = circuit.evaluate({"a": av, "b": bv, "c": cv})
            total = av + bv + cv
            assert values[s] == bool(total & 1)
            assert values[cout] == (total >= 2)

    def test_output_alias_inserts_buffer(self):
        builder = CircuitBuilder("t")
        a = builder.input("a")
        x = builder.not_(a)
        builder.output(x, name="y")
        circuit = builder.build()
        assert "y" in circuit.outputs
        assert circuit.n_gates == 2  # INV + alias BUF


class TestValidate:
    def test_dangling_output_lint(self):
        builder = CircuitBuilder("t")
        a = builder.input("a")
        builder.not_(a)  # drives nothing
        b = builder.not_(a)
        builder.output(b)
        circuit = builder.build()
        lints = validate_circuit(circuit)
        assert any(lint.kind == "dangling-output" for lint in lints)
        with pytest.raises(NetlistError, match="lint"):
            require_clean(circuit)

    def test_unused_input_lint(self):
        builder = CircuitBuilder("t")
        builder.input("unused")
        a = builder.input("a")
        builder.output(builder.not_(a))
        lints = validate_circuit(builder.build())
        assert any(lint.kind == "unused-input" for lint in lints)

    def test_clean_circuit_no_lints(self, c17):
        assert validate_circuit(c17) == []


class TestStats:
    def test_c17_stats(self, c17):
        stats = circuit_stats(c17)
        assert stats.n_gates == 6
        assert stats.n_inputs == 5
        assert stats.n_outputs == 2
        assert stats.logic_depth == 3
        assert stats.n_devices == 24
        assert stats.cells == {"NAND2": 6}

    def test_mean_fanout_positive(self, adder8):
        stats = circuit_stats(adder8)
        assert stats.mean_fanout > 1.0
